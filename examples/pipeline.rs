//! The paper's §6 outlook, reproduced: "a front-end for Vault in Vault …
//! a multi-stage pipeline where each stage's results are stored in its own
//! region."
//!
//! First the staged-region discipline is checked statically on Vault
//! source (corpus experiment X1); then the same staging runs dynamically
//! on the region allocator — including what happens when a stage is freed
//! too early.
//!
//! Run with: `cargo run --example pipeline`

use vault::core::{check_source, Verdict};
use vault::corpus::programs_for;
use vault::runtime::{RegionError, RegionHeap};

fn main() {
    println!("── static: the X1 corpus (pipeline with per-stage regions) ──");
    for p in programs_for("X1") {
        let r = check_source(p.id, &p.source);
        println!(
            "  {:32} {:8} {}",
            p.id,
            r.verdict().to_string(),
            r.error_codes()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        match p.expect {
            vault::corpus::Expectation::Accept => assert_eq!(r.verdict(), Verdict::Accepted),
            vault::corpus::Expectation::Reject(_) => assert_eq!(r.verdict(), Verdict::Rejected),
        }
    }

    println!("\n── dynamic: the same staging on the region allocator ──");
    // Each stage's results live in their own region; a stage's region is
    // freed as soon as the next stage has consumed its input.
    let mut heap: RegionHeap<String> = RegionHeap::new();

    let lex_stage = heap.create();
    let tokens = heap
        .alloc(lex_stage, "IDENT(okay) LPAREN RPAREN".to_string())
        .unwrap();

    let parse_stage = heap.create();
    let tree = {
        let toks = heap.get(tokens).unwrap().clone();
        heap.alloc(parse_stage, format!("Call({toks})")).unwrap()
    };
    heap.delete(lex_stage).unwrap();
    println!("  lexer region freed after parsing");

    let type_stage = heap.create();
    let typed = {
        let t = heap.get(tree).unwrap().clone();
        heap.alloc(type_stage, format!("Typed({t}) : void"))
            .unwrap()
    };
    heap.delete(parse_stage).unwrap();
    println!("  parser region freed after type checking");

    let emitted = heap.get(typed).unwrap().clone();
    heap.delete(type_stage).unwrap();
    println!("  emitted: {emitted}");

    // The bug X1 rejects statically, at run time: read a stage after
    // freeing its region.
    let early = heap.create();
    let stale = heap.alloc(early, "tokens".to_string()).unwrap();
    heap.delete(early).unwrap();
    assert_eq!(heap.get(stale), Err(RegionError::UseAfterDelete));
    println!("  early-freed stage read back → UseAfterDelete (as the checker predicted)");

    assert_eq!(heap.leaked(), 0);
    println!(
        "\n  no regions leaked; {} allocations total",
        heap.stats().allocations
    );
}
