//! Quickstart: check the paper's Fig. 2 programs (`okay`, `dangling`,
//! `leaky`) and print the diagnostics the Vault checker produces.
//!
//! Run with: `cargo run --example quickstart`

use vault::core::{check_source, Verdict};

const REGION_IFACE: &str = r#"
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
struct point { int x; int y; }
"#;

fn main() {
    let programs = [
        (
            "okay",
            "void okay() {
               tracked(R) region rgn = Region.create();
               R:point pt = new(rgn) point {x=1; y=2;};
               pt.x++;
               Region.delete(rgn);
             }",
        ),
        (
            "dangling",
            "void dangling() {
               tracked(R) region rgn = Region.create();
               R:point pt = new(rgn) point {x=1; y=2;};
               Region.delete(rgn);
               pt.x++;
             }",
        ),
        (
            "leaky",
            "void leaky() {
               tracked(R) region rgn = Region.create();
               R:point pt = new(rgn) point {x=1; y=2;};
               pt.x++;
             }",
        ),
    ];

    println!("Vault checker on the paper's Fig. 2 programs\n");
    for (name, body) in programs {
        let source = format!("{REGION_IFACE}\n{body}");
        let result = check_source(&format!("{name}.vlt"), &source);
        println!("── {name} ──────────────────────────────────");
        match result.verdict() {
            Verdict::Accepted => println!("accepted: every key is accounted for\n"),
            _ => {
                print!("{}", result.render_diagnostics());
                println!();
            }
        }
    }
    println!(
        "The paper's verdicts: okay accepted, dangling rejected (key not held),\n\
         leaky rejected (extra key at exit) — reproduced above."
    );
}
