//! The §4 case study, static side: check the floppy driver written in
//! Vault against the Windows 2000 kernel interface, then check every
//! seeded-bug mutant and show each is rejected with the right diagnostic.
//!
//! Run with: `cargo run --example driver_check`

use vault::core::{check_source, Verdict};
use vault::corpus::{count_loc, floppy, programs_for, Expectation};

fn main() {
    // The clean driver.
    let driver = floppy::driver_source();
    let result = check_source("floppy.vlt", &driver);
    println!("floppy driver: {} Vault LoC", count_loc(&driver));
    match result.verdict() {
        Verdict::Accepted => println!("verdict: accepted — all kernel protocols respected\n"),
        _ => {
            print!("{}", result.render_diagnostics());
            panic!("the clean driver must check");
        }
    }

    // The mutants (experiment E12's static half).
    println!("seeded-bug mutants:");
    for p in programs_for("E12") {
        let r = check_source(p.id, &p.source);
        let expected = match &p.expect {
            Expectation::Reject(codes) => codes
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
            Expectation::Accept => "accept".into(),
        };
        let caught = r.verdict() == Verdict::Rejected;
        println!(
            "  {:32} expected {:6} → {:8}  ({})",
            p.id,
            expected,
            if caught { "rejected" } else { "ACCEPTED" },
            p.description
        );
        assert!(caught, "mutant escaped the checker");
    }
    println!("\nall mutants rejected — every seeded protocol bug is caught at compile time");

    // Checker effort on the driver (paper: a single compilation unit).
    println!(
        "\nchecker effort: {} statements, {} calls, {} joins, {} keys",
        result.stats.statements,
        result.stats.calls,
        result.stats.joins,
        result.stats.keys_allocated
    );
}
