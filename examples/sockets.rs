//! The socket-server workload, statically and dynamically.
//!
//! First the Vault checker runs the socket corpus family (experiments
//! E14/E15): the capability-annotated accept-loop server is accepted and
//! every seeded mutant — double close, use after close, leaked
//! connection key, accept before listen, plus the V7xx capability bugs —
//! is rejected with its recorded code. Then the same server shape runs
//! on the in-memory socket simulator: an accept loop dispatches each
//! connection to a per-connection handler that owns the connection and
//! must close it, mirroring the `-C@ready` key transfer the checker
//! enforces statically.
//!
//! Run with: `cargo run --example sockets`

use vault::core::{check_source, Verdict};
use vault::corpus::programs_for;
use vault::runtime::{CommStyle, Domain, Network, SockId, SocketError};

/// The dynamic analogue of the corpus `handle_echo`: takes ownership of
/// the connection (the `-C@ready` transfer), echoes one message, closes.
fn handle_echo(net: &mut Network, conn: SockId) -> Result<(), SocketError> {
    let msg = net.receive(conn)?;
    net.send(conn, &msg)?;
    net.close(conn)
}

/// The dynamic `handle_drain`: consume everything pending, then close.
fn handle_drain(net: &mut Network, conn: SockId) -> Result<(), SocketError> {
    while let Ok(msg) = net.receive(conn) {
        drop(msg);
    }
    net.close(conn)
}

fn main() {
    println!("── static: the socket-server corpus (experiments E14/E15) ──");
    for p in programs_for("E14").into_iter().chain(programs_for("E15")) {
        let r = check_source(p.id, &p.source);
        println!(
            "  {:28} {:8} — {}",
            p.id,
            r.verdict().to_string(),
            p.description
        );
    }

    println!("\n── dynamic: the same server on the socket simulator ──");
    let mut net = Network::new();

    // Listener setup: socket → bind → listen (raw → named → listening).
    let listener = net.socket(Domain::Unix, CommStyle::Stream);
    net.bind(listener, 8080).expect("bind");
    net.listen(listener, 8).expect("listen");

    // A few clients connect; the backlog queues them in order.
    let mut clients = Vec::new();
    for _ in 0..4 {
        let c = net.socket(Domain::Unix, CommStyle::Stream);
        net.connect(c, 8080).expect("connect");
        clients.push(c);
    }

    // The accept loop: each accepted connection's "key" is handed to a
    // handler which must close it — exactly the corpus `serve_one`.
    let mut served = 0;
    loop {
        let conn = match net.accept(listener) {
            Ok(conn) => conn,
            Err(SocketError::WouldBlock) => break,
            Err(e) => panic!("accept: {e}"),
        };
        // The backlog is FIFO, so connection `served` is clients[served];
        // once accepted, the peer link is live and the client can speak.
        net.send(clients[served], format!("hello {served}").as_bytes())
            .expect("send");
        if served % 2 == 0 {
            handle_echo(&mut net, conn).expect("handle_echo");
        } else {
            handle_drain(&mut net, conn).expect("handle_drain");
        }
        served += 1;
    }
    println!("  served {served} connections through per-connection handlers");

    // Echoed replies arrive back at the even-numbered clients.
    for (i, &c) in clients.iter().enumerate() {
        if let Ok(msg) = net.receive(c) {
            println!("  client {i} got echo {:?}", String::from_utf8_lossy(&msg));
        }
        net.close(c).expect("client close");
    }
    net.close(listener).expect("listener close");

    // The misuse the corpus mutant `sock_mut_double_close` seeds
    // statically, observed dynamically: closing a connection twice.
    let stray = net.socket(Domain::Inet, CommStyle::Stream);
    net.close(stray).unwrap();
    match net.close(stray) {
        Err(SocketError::WrongState { expected, actual }) => {
            println!("  double close → runtime protocol error: needs `{expected}`, was `{actual}`")
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }

    println!(
        "  leaked sockets: {}, violations observed: {}",
        net.leaked(),
        net.stats().violations
    );
    assert_eq!(net.leaked(), 0, "handler lifecycle leaked a socket");

    // Cross-check: the static family and the dynamic run agree on what
    // is and is not a protocol violation.
    let rejected = programs_for("E15")
        .iter()
        .filter(|p| check_source(p.id, &p.source).verdict() == Verdict::Rejected)
        .count();
    println!(
        "\n  {} of {} seeded socket mutants rejected statically; the one dynamic\n  \
         misuse above was caught at run time — same protocol, two enforcers.",
        rejected,
        programs_for("E15").len()
    );
}
