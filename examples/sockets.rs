//! The Fig. 3 socket protocol, statically and dynamically.
//!
//! First the Vault checker enforces raw → named → listening → ready on
//! source programs; then the same scenarios run on the in-memory socket
//! simulator, showing the dynamic oracle agrees with the static verdicts.
//!
//! Run with: `cargo run --example sockets`

use vault::core::{check_source, Verdict};
use vault::corpus::programs_for;
use vault::runtime::{CommStyle, Domain, Network, SocketError};

fn main() {
    println!("── static: the Fig. 3 corpus (experiment E2) ──");
    for p in programs_for("E2") {
        let r = check_source(p.id, &p.source);
        println!(
            "  {:24} {:8} — {}",
            p.id,
            r.verdict().to_string(),
            p.description
        );
    }

    println!("\n── dynamic: the same protocol on the socket simulator ──");
    let mut net = Network::new();

    // The correct sequence.
    let server = net.socket(Domain::Unix, CommStyle::Stream);
    net.bind(server, 8080).expect("bind");
    net.listen(server, 4).expect("listen");
    let client = net.socket(Domain::Unix, CommStyle::Stream);
    net.connect(client, 8080).expect("connect");
    let conn = net.accept(server).expect("accept");
    net.send(client, b"GET /").expect("send");
    let msg = net.receive(conn).expect("receive");
    println!("  server received {:?}", String::from_utf8_lossy(&msg));

    // The misuse Fig. 3 prevents statically: listen before bind.
    let raw = net.socket(Domain::Inet, CommStyle::Stream);
    match net.listen(raw, 4) {
        Err(SocketError::WrongState { expected, actual }) => println!(
            "  listen on a raw socket → runtime protocol error: needs `{expected}`, was `{actual}`"
        ),
        other => panic!("expected a protocol error, got {other:?}"),
    }

    net.close(conn).unwrap();
    net.close(client).unwrap();
    net.close(server).unwrap();
    net.close(raw).unwrap();
    println!(
        "  leaked sockets: {}, violations observed: {}",
        net.leaked(),
        net.stats().violations
    );

    // Cross-check: the static corpus and this dynamic run agree on what
    // is and is not a protocol violation.
    let statically_rejected = programs_for("E2")
        .iter()
        .map(|p| (check_source(p.id, &p.source).verdict() == Verdict::Rejected) as u32)
        .sum::<u32>();
    println!(
        "\n  {} of {} E2 corpus programs rejected statically; the one dynamic\n  \
         misuse above was caught at run time — same protocol, two enforcers.",
        statically_rejected,
        programs_for("E2").len()
    );
}
