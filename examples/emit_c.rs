//! The Vault → C back end: keys and guards are compile-time-only and
//! erase completely (paper §2.1). Checks the §2.1 `opt_key` example and
//! prints the generated C.
//!
//! Run with: `cargo run --example emit_c`

use vault::core::{check_source, codegen, Verdict};

const SOURCE: &str = r#"
stateset FILE_STATE = [ open < closed ];
type FILE;
tracked(F) FILE fopen(string path) [new F@open];
void fclose(tracked(F) FILE f) [-F];
variant opt_key<key K> [ 'NoKey | 'SomeKey {K} ];

void foo(tracked(F) FILE f, bool close_early) [-F] {
  tracked opt_key<F> flag;
  if (close_early) {
    fclose(f);
    flag = 'NoKey;
  } else {
    flag = 'SomeKey{F};
  }
  switch (flag) {
    case 'NoKey:
      return;
    case 'SomeKey:
      fclose(f);
  }
}
"#;

fn main() {
    let result = check_source("optkey.vlt", SOURCE);
    assert_eq!(
        result.verdict(),
        Verdict::Accepted,
        "{}",
        result.render_diagnostics()
    );
    println!("// checked: the opt_key protocol holds; emitting guard-free C\n");
    let c = codegen::emit_c(&result.program, &result.elaborated);
    println!("{c}");
    // The erasure property, visibly: no Vault-only syntax survives.
    for forbidden in ["tracked", "stateset", "[-", "@open"] {
        assert!(
            !c.contains(forbidden),
            "erasure failed: `{forbidden}` survived into the C output"
        );
    }
    println!("// note: no `tracked`, no guards, no effect clauses — erased.");
}
