//! Run Vault programs: the same Fig. 2 sources the checker judges are
//! executed by the reference interpreter, and the dynamic outcomes line up
//! with the static verdicts — including the conservative cases.
//!
//! Run with: `cargo run --example interpret`

use vault::core::{check_source, Verdict};
use vault::eval::{ExternTable, Machine};
use vault::syntax::{parse_program, DiagSink};

fn run(src: &str, entry: &str) -> (Verdict, String) {
    let verdict = check_source(entry, src).verdict();
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    let mut m = Machine::new(&program, ExternTable::with_regions());
    let out = m.run(entry, vec![]);
    let dynamic = match &out.result {
        Ok(_) if out.leaked_regions == 0 => "ran clean".to_string(),
        Ok(_) => format!("ran, but leaked {} region(s)", out.leaked_regions),
        Err(e) => format!("faulted: {e}"),
    };
    (verdict, dynamic)
}

const IFACE: &str = r#"
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
struct point { int x; int y; }
"#;

fn main() {
    let programs = [
        (
            "okay",
            "void okay() {
               tracked(R) region rgn = Region.create();
               R:point pt = new(rgn) point {x=1; y=2;};
               pt.x++;
               Region.delete(rgn);
             }",
        ),
        (
            "dangling",
            "void dangling() {
               tracked(R) region rgn = Region.create();
               R:point pt = new(rgn) point {x=1; y=2;};
               Region.delete(rgn);
               pt.x++;
             }",
        ),
        (
            "leaky",
            "void leaky() {
               tracked(R) region rgn = Region.create();
               R:point pt = new(rgn) point {x=1; y=2;};
               pt.x++;
             }",
        ),
    ];
    println!("{:10} {:>9}   dynamic outcome", "program", "static");
    println!("{}", "─".repeat(58));
    for (entry, body) in programs {
        let src = format!("{IFACE}\n{body}");
        let (verdict, dynamic) = run(&src, entry);
        println!("{entry:10} {:>9}   {dynamic}", verdict.to_string());
    }
    println!(
        "\nThe static verdicts predict the dynamic outcomes: the accepted\n\
         program runs clean; the rejected ones fault or leak at exactly the\n\
         operations the diagnostics pointed at."
    );
}
