//! The §4 case study, dynamic side: run the floppy driver on the
//! simulated Windows 2000 kernel — the paper's "the driver … runs
//! successfully under Windows 2000" — then run every buggy variant and
//! show the runtime oracle catches the same bug classes the checker does.
//!
//! Run with: `cargo run --example driver_run`

use vault::kernel::{detection_matrix, run_floppy_workload, FloppyBugs, WorkloadConfig};

fn main() {
    // The clean driver under a mixed workload.
    let report = run_floppy_workload(&WorkloadConfig {
        ops: 250,
        seed: 2001, // the paper's year
        bugs: FloppyBugs::none(),
    });
    println!("clean floppy driver, 250-op workload:");
    println!(
        "  {} requests succeeded, {} failed (invalid params), {} DPCs",
        report.succeeded, report.failed, report.stats.dpcs
    );
    println!("  protocol violations: {}", report.violations.len());
    assert!(report.clean(), "{:?}", report.violations);

    // The detection matrix (experiment E12's dynamic half).
    println!("\nseeded-bug variants under the same workload:");
    for (name, bugs, expected) in detection_matrix() {
        let r = run_floppy_workload(&WorkloadConfig {
            ops: 250,
            seed: 2001,
            bugs,
        });
        let first = r
            .violations
            .first()
            .map(|v| v.to_string())
            .unwrap_or_default();
        println!(
            "  {:20} → {:3} violation(s), category {:?}: {}",
            name,
            r.violations.len(),
            expected,
            first
        );
        assert!(!r.clean(), "bug `{name}` escaped the runtime oracle");
        assert!(r.kinds.contains(&expected));
    }
    println!("\nevery seeded bug manifests at run time — and the static checker");
    println!("rejects the same bugs at compile time (see `driver_check`).");
}
