//! Differential testing: the static checker and the runtime oracles must
//! agree on what is a protocol violation.
//!
//! * E1/E2: region and socket scenarios are run both as Vault source
//!   (static) and against the runtime substrates (dynamic).
//! * E12: each floppy mutant is rejected statically with a diagnostic
//!   whose category matches the violation category the kernel oracle
//!   observes when the equivalent buggy driver runs.

use std::collections::BTreeSet;
use vault::core::{check_source, Verdict};
use vault::kernel::{run_floppy_workload, FloppyBugs, ViolationKind, WorkloadConfig};
use vault::runtime::{CommStyle, Domain, Network, RegionError, RegionHeap, SocketError};
use vault::syntax::Code;

#[test]
fn regions_static_and_dynamic_agree() {
    // Scenario 1: okay — accepted statically, clean dynamically.
    let okay = vault::corpus::programs_for("E1")
        .into_iter()
        .find(|p| p.id == "fig2_okay")
        .unwrap();
    assert_eq!(check_source("t", &okay.source).verdict(), Verdict::Accepted);
    let mut heap = RegionHeap::new();
    let rgn = heap.create();
    let pt = heap.alloc(rgn, (1, 2)).unwrap();
    heap.get_mut(pt).unwrap().0 += 1;
    heap.delete(rgn).unwrap();
    assert_eq!(heap.stats().violations, 0);
    assert_eq!(heap.leaked(), 0);

    // Scenario 2: dangling — rejected statically, faults dynamically.
    let dangling = vault::corpus::programs_for("E1")
        .into_iter()
        .find(|p| p.id == "fig2_dangling")
        .unwrap();
    let r = check_source("t", &dangling.source);
    assert!(r.has_code(Code::KeyNotHeld));
    let mut heap = RegionHeap::new();
    let rgn = heap.create();
    let pt = heap.alloc(rgn, (1, 2)).unwrap();
    heap.delete(rgn).unwrap();
    assert_eq!(heap.get_mut(pt), Err(RegionError::UseAfterDelete));

    // Scenario 3: leaky — rejected statically, leaks dynamically.
    let leaky = vault::corpus::programs_for("E1")
        .into_iter()
        .find(|p| p.id == "fig2_leaky")
        .unwrap();
    assert!(check_source("t", &leaky.source).has_code(Code::KeyLeak));
    let mut heap = RegionHeap::new();
    let rgn = heap.create();
    heap.alloc(rgn, (1, 2)).unwrap();
    assert_eq!(heap.leaked(), 1);
}

#[test]
fn sockets_static_and_dynamic_agree() {
    // skip-bind rejected statically; the simulator faults on the same op.
    let skip = vault::corpus::programs_for("E2")
        .into_iter()
        .find(|p| p.id == "sock_skip_bind")
        .unwrap();
    assert!(check_source("t", &skip.source).has_code(Code::WrongKeyState));
    let mut net = Network::new();
    let s = net.socket(Domain::Unix, CommStyle::Stream);
    assert!(matches!(
        net.listen(s, 4),
        Err(SocketError::WrongState { .. })
    ));

    // The full correct sequence is accepted statically and runs cleanly.
    let ok = vault::corpus::programs_for("E2")
        .into_iter()
        .find(|p| p.id == "sock_server_ok")
        .unwrap();
    assert_eq!(check_source("t", &ok.source).verdict(), Verdict::Accepted);
    let mut net = Network::new();
    let server = net.socket(Domain::Unix, CommStyle::Stream);
    net.bind(server, 1).unwrap();
    net.listen(server, 4).unwrap();
    let client = net.socket(Domain::Unix, CommStyle::Stream);
    net.connect(client, 1).unwrap();
    let conn = net.accept(server).unwrap();
    net.send(client, b"x").unwrap();
    net.receive(conn).unwrap();
    net.close(conn).unwrap();
    net.close(client).unwrap();
    net.close(server).unwrap();
    assert_eq!(net.stats().violations, 0);
}

/// Map a static diagnostic code to the runtime violation category it
/// corresponds to in the driver setting.
fn static_category(codes: &[Code]) -> BTreeSet<ViolationKind> {
    let mut out = BTreeSet::new();
    for c in codes {
        match c {
            Code::KeyNotHeld | Code::DuplicateKey => {
                // Could be IRP ownership or lock misuse; the mutant name
                // disambiguates below — we accept either category here.
                out.insert(ViolationKind::IrpOwnership);
                out.insert(ViolationKind::SpinLock);
            }
            Code::KeyLeak | Code::MissingKeyAtExit => {
                out.insert(ViolationKind::IrpOwnership);
                out.insert(ViolationKind::SpinLock);
                out.insert(ViolationKind::Device);
            }
            Code::StateBound => {
                out.insert(ViolationKind::IrqlPaging);
            }
            Code::WrongKeyState => {
                out.insert(ViolationKind::IrqlPaging);
                out.insert(ViolationKind::Device);
            }
            _ => {}
        }
    }
    out
}

#[test]
fn e12_detection_matrix_static_matches_dynamic() {
    // Pair each corpus mutant with its runtime bug flag.
    let pairs: Vec<(&str, FloppyBugs)> = vec![
        (
            "floppy_mut_missing_release",
            FloppyBugs {
                skip_release: true,
                ..FloppyBugs::none()
            },
        ),
        (
            "floppy_mut_irp_dropped",
            FloppyBugs {
                drop_irp: true,
                ..FloppyBugs::none()
            },
        ),
        (
            "floppy_mut_use_after_pass",
            FloppyBugs {
                use_after_pass: true,
                ..FloppyBugs::none()
            },
        ),
        (
            "floppy_mut_no_wait",
            FloppyBugs {
                no_wait: true,
                ..FloppyBugs::none()
            },
        ),
        (
            "floppy_mut_paged_under_lock",
            FloppyBugs {
                paged_under_lock: true,
                ..FloppyBugs::none()
            },
        ),
        (
            "floppy_mut_double_complete",
            FloppyBugs {
                double_complete: true,
                ..FloppyBugs::none()
            },
        ),
        (
            "floppy_mut_motor_not_started",
            FloppyBugs {
                motor_not_started: true,
                ..FloppyBugs::none()
            },
        ),
        (
            "floppy_mut_motor_leaked",
            FloppyBugs {
                motor_leaked: true,
                ..FloppyBugs::none()
            },
        ),
    ];
    let corpus = vault::corpus::programs_for("E12");
    assert_eq!(corpus.len(), pairs.len(), "mutant sets out of sync");
    for (id, bugs) in pairs {
        // Static half.
        let program = corpus.iter().find(|p| p.id == id).expect("mutant exists");
        let sres = check_source(id, &program.source);
        assert_eq!(
            sres.verdict(),
            Verdict::Rejected,
            "{id} accepted statically"
        );
        let static_kinds = static_category(&sres.error_codes());

        // Dynamic half.
        let dres = run_floppy_workload(&WorkloadConfig {
            ops: 150,
            seed: 4,
            bugs,
        });
        assert!(!dres.clean(), "{id}: runtime oracle saw nothing");

        // Agreement: at least one category detected dynamically is one the
        // static diagnostics predict.
        assert!(
            dres.kinds.iter().any(|k| static_kinds.contains(k)),
            "{id}: static {static_kinds:?} vs dynamic {:?}",
            dres.kinds
        );
    }
}

#[test]
fn clean_driver_agrees_everywhere() {
    // Statically accepted...
    let driver = vault::corpus::floppy::driver_source();
    assert_eq!(check_source("floppy", &driver).verdict(), Verdict::Accepted);
    // ...and dynamically clean across several seeds.
    for seed in [10u64, 20, 30] {
        let r = run_floppy_workload(&WorkloadConfig {
            ops: 150,
            seed,
            bugs: FloppyBugs::none(),
        });
        assert!(r.clean(), "seed {seed}: {:?}", r.violations);
    }
}
