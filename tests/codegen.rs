//! Structural tests of the C back end: erasure (no keys/guards survive),
//! variant lowering to tagged unions, and function preservation.

use vault::core::{check_source, codegen::emit_c, Verdict};
use vault::corpus::{all_programs, Expectation};

/// Vault-only surface syntax that must never survive into C.
const VAULT_ONLY: &[&str] = &[
    "tracked",
    "stateset ",
    "@raw",
    "@open",
    "[S@",
    "[-",
    "[+",
    "[new ",
];

#[test]
fn erasure_on_every_accepted_corpus_program() {
    for p in all_programs() {
        if p.expect != Expectation::Accept {
            continue;
        }
        let r = check_source(p.id, &p.source);
        assert_eq!(r.verdict(), Verdict::Accepted, "{}", p.id);
        let c = emit_c(&r.program, &r.elaborated);
        for forbidden in VAULT_ONLY {
            assert!(
                !c.contains(forbidden),
                "{}: `{forbidden}` survived erasure:\n{c}",
                p.id
            );
        }
    }
}

#[test]
fn variants_lower_to_tagged_unions() {
    let src = "variant opt [ 'None | 'Some(int) ];
               int get(opt o, int dflt) {
                 switch (o) {
                   case 'None:
                     return dflt;
                   case 'Some(v):
                     return v;
                 }
                 return dflt;
               }";
    let r = check_source("v", src);
    assert_eq!(r.verdict(), Verdict::Accepted, "{}", r.render_diagnostics());
    let c = emit_c(&r.program, &r.elaborated);
    assert!(c.contains("enum opt_tag_e"), "{c}");
    assert!(c.contains("opt_None_tag"), "{c}");
    assert!(c.contains("opt_Some_tag"), "{c}");
    assert!(c.contains("switch ((o)->tag)"), "{c}");
    assert!(c.contains("case opt_Some_tag"), "{c}");
    // The binder is extracted from the union payload.
    assert!(c.contains("int v = (o)->u.Some.f0;"), "{c}");
    // Constructor helpers exist.
    assert!(c.contains("opt_Some(int a0)"), "{c}");
}

#[test]
fn functions_and_structs_preserved() {
    let p = vault::corpus::programs_for("E1")
        .into_iter()
        .find(|p| p.id == "fig2_okay")
        .unwrap();
    let r = check_source(p.id, &p.source);
    let c = emit_c(&r.program, &r.elaborated);
    assert!(c.contains("struct point {"), "{c}");
    assert!(c.contains("void okay()"), "{c}");
    // Region allocation goes through the runtime extern.
    assert!(c.contains("vault_region_alloc"), "{c}");
    // Qualified calls flatten to the bare function name.
    assert!(c.contains("delete(rgn)"), "{c}");
}

#[test]
fn effects_become_comments() {
    let src = "type FILE;
               stateset FS = [ open < closed ];
               tracked(F) FILE fopen(string p) [new F@open];
               void fclose(tracked(F) FILE f) [-F];";
    let r = check_source("f", src);
    let c = emit_c(&r.program, &r.elaborated);
    assert!(c.contains("effect erased"), "{c}");
    assert!(c.contains("FILE* fopen(const char* p)"), "{c}");
    assert!(c.contains("void fclose(FILE* f)"), "{c}");
}

/// The paper compiled Vault to C and built it. Verify our generated C is
/// real C: every accepted corpus program must pass `cc -fsyntax-only`.
#[test]
fn generated_c_passes_cc_syntax_check() {
    use std::process::Command;
    if Command::new("cc").arg("--version").output().is_err() {
        eprintln!("cc not available; skipping C syntax check");
        return;
    }
    let dir = std::env::temp_dir().join(format!("vault_cc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("vault_rt.h"), vault::core::codegen::RUNTIME_HEADER).unwrap();
    let mut checked = 0;
    for p in all_programs() {
        if p.expect != Expectation::Accept {
            continue;
        }
        let r = check_source(p.id, &p.source);
        let c = emit_c(&r.program, &r.elaborated);
        let path = dir.join(format!("{}.c", p.id));
        std::fs::write(&path, &c).unwrap();
        let out = Command::new("cc")
            .args(["-fsyntax-only", "-std=gnu11", "-I"])
            .arg(&dir)
            .arg(&path)
            .output()
            .expect("cc runs");
        assert!(
            out.status.success(),
            "{}: generated C rejected by cc:\n{}\n--- source ---\n{c}",
            p.id,
            String::from_utf8_lossy(&out.stderr)
        );
        checked += 1;
    }
    assert!(checked > 10, "too few programs syntax-checked: {checked}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Beyond syntax: the generated C for Fig. 2's `okay` links against a
/// small region runtime and runs to completion (the paper: "the driver
/// linked with the wrapper runs successfully").
#[test]
fn generated_c_for_fig2_links_and_runs() {
    use std::process::Command;
    if Command::new("cc").arg("--version").output().is_err() {
        eprintln!("cc not available; skipping C run test");
        return;
    }
    let p = vault::corpus::programs_for("E1")
        .into_iter()
        .find(|p| p.id == "fig2_okay")
        .unwrap();
    let r = check_source(p.id, &p.source);
    let c = emit_c(&r.program, &r.elaborated);

    let dir = std::env::temp_dir().join(format!("vault_run_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("vault_rt.h"), vault::core::codegen::RUNTIME_HEADER).unwrap();
    std::fs::write(dir.join("okay.c"), &c).unwrap();
    // The "thin wrapper in C" of paper §4: a region runtime plus main().
    std::fs::write(
        dir.join("support.c"),
        r#"
#include <stdlib.h>
#include "vault_rt.h"

struct vault_region { void **ptrs; size_t n, cap; };

vault_region *vault_region_create(void) {
    return calloc(1, sizeof(vault_region));
}

void *vault_region_alloc(vault_region *rgn, size_t size) {
    if (rgn->n == rgn->cap) {
        rgn->cap = rgn->cap ? rgn->cap * 2 : 8;
        rgn->ptrs = realloc(rgn->ptrs, rgn->cap * sizeof(void *));
    }
    void *p = calloc(1, size);
    rgn->ptrs[rgn->n++] = p;
    return p;
}

void vault_region_delete(vault_region *rgn) {
    for (size_t i = 0; i < rgn->n; i++) free(rgn->ptrs[i]);
    free(rgn->ptrs);
    free(rgn);
}

/* The REGION interface externs of the generated unit. */
typedef struct region region;
struct region { struct vault_region rt; };
region *create(void) { return (region *)vault_region_create(); }
void delete(region *r) { vault_region_delete((vault_region *)r); }

extern void okay(void);
int main(void) { okay(); return 0; }
"#,
    )
    .unwrap();
    let exe = dir.join("okay_bin");
    let out = Command::new("cc")
        .args(["-std=gnu11", "-Wno-incompatible-pointer-types", "-o"])
        .arg(&exe)
        .arg(dir.join("okay.c"))
        .arg(dir.join("support.c"))
        .output()
        .expect("cc runs");
    assert!(
        out.status.success(),
        "link failed:\n{}\n--- generated ---\n{c}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = Command::new(&exe).output().expect("binary runs");
    assert!(run.status.success(), "generated program crashed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn driver_emits_substantial_c() {
    let driver = vault::corpus::floppy::driver_source();
    let r = check_source("floppy", &driver);
    assert_eq!(r.verdict(), Verdict::Accepted);
    let c = emit_c(&r.program, &r.elaborated);
    // The paper reports 4900 C lines from 5200 Vault lines; our driver is
    // smaller but the C/Vault ratio direction matches: C is no larger
    // than the annotated Vault source.
    let c_loc = c.lines().filter(|l| !l.trim().is_empty()).count();
    assert!(c_loc > 150, "suspiciously small C output: {c_loc} lines");
    assert!(c.contains("FloppyDispatch"), "dispatch missing");
    assert!(c.contains("DriverEntry"), "entry missing");
    // The nested Fig. 7 routine is hoisted, its captures via statics.
    assert!(c.contains("hoisted nested routine"), "{c_loc} lines");
    assert!(c.contains("captured by a nested routine"), "{c_loc} lines");
}
