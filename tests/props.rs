//! Whole-pipeline property tests: for randomly generated programs with
//! known ground truth, the checker's verdict is exactly right.

// Requires the real `proptest` crate, unavailable in the offline build
// environment; enable the `proptests` feature after vendoring it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use vault::core::{check_source, Verdict};
use vault::corpus::synth::{generate, SeededBug, Shape, SynthConfig};
use vault::syntax::Code;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean generated programs are always accepted; buggy ones are
    /// always rejected with a diagnostic matching the seeded class.
    #[test]
    fn checker_matches_ground_truth(
        functions in 1usize..6,
        stmts in 4usize..16,
        seed in any::<u64>(),
        bug_rate in prop_oneof![Just(0.0f64), Just(0.5), Just(1.0)],
    ) {
        let p = generate(&SynthConfig {
            functions,
            stmts_per_fn: stmts,
            seed,
            bug_rate,
            shape: Shape::Mixed,
        });
        let r = check_source("synth", &p.source);
        if p.expect_accept() {
            prop_assert_eq!(
                r.verdict(),
                Verdict::Accepted,
                "false positive on clean program:\n{}\n{}",
                p.source,
                r.render_diagnostics()
            );
        } else {
            prop_assert_eq!(r.verdict(), Verdict::Rejected, "missed seeded bug {:?}", p.seeded);
            if p.seeded.iter().any(|(_, b)| *b == SeededBug::Leak) {
                prop_assert!(r.has_code(Code::KeyLeak));
            }
            if p.seeded.iter().any(|(_, b)| *b == SeededBug::Dangling) {
                prop_assert!(r.has_code(Code::KeyNotHeld));
            }
        }
    }

    /// Checking is deterministic: same source, same diagnostics.
    #[test]
    fn checking_is_deterministic(seed in any::<u64>()) {
        let p = generate(&SynthConfig {
            functions: 3,
            stmts_per_fn: 10,
            seed,
            bug_rate: 0.3,
            shape: Shape::Mixed,
        });
        let a = check_source("a", &p.source);
        let b = check_source("b", &p.source);
        prop_assert_eq!(a.error_codes(), b.error_codes());
        prop_assert_eq!(a.stats, b.stats);
    }

    /// The kernel workload is clean for every seed when the driver is
    /// clean (no flaky false positives in the oracle).
    #[test]
    fn clean_workloads_never_report(seed in any::<u64>()) {
        let r = vault::kernel::run_floppy_workload(&vault::kernel::WorkloadConfig {
            ops: 40,
            seed,
            bugs: vault::kernel::FloppyBugs::none(),
        });
        prop_assert!(r.clean(), "seed {seed}: {:?}", r.violations);
    }
}
