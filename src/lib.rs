//! # vault
//!
//! A comprehensive Rust reproduction of **“Enforcing High-Level Protocols
//! in Low-Level Software”** (Robert DeLine and Manuel Fähndrich,
//! PLDI 2001) — the Vault programming language, whose type system
//! statically enforces resource management protocols through *keys* and
//! *type guards*.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`syntax`] — lexer, parser, AST, diagnostics for the Vault surface
//!   language;
//! * [`types`] — the internal type language (paper Fig. 6): keys, key
//!   states, statesets, held-key sets, singleton/guarded/existential
//!   types;
//! * [`core`] — **the protocol checker** (the paper's contribution) and
//!   the guard-erasing C back end;
//! * [`runtime`] — executable substrates with dynamic oracles: the region
//!   allocator (Figs. 1–2) and the socket simulator (Fig. 3);
//! * [`kernel`] — the simulated Windows 2000 I/O substrate and floppy
//!   driver of the §4 case study;
//! * [`corpus`] — every program from the paper, the kernel interface in
//!   Vault, the floppy driver, seeded-bug mutants, and a synthetic
//!   program generator;
//! * [`vm`] — the register-bytecode execution backend: an AST→bytecode
//!   compiler and dispatch-loop VM, differentially proven
//!   outcome-identical to the interpreter over the whole corpus;
//! * [`server`] — `vaultd`, the persistent parallel checking service:
//!   a JSON-lines wire protocol over Unix sockets or stdio, a worker
//!   thread pool, and a content-hash LRU verdict cache.
//!
//! ## Quickstart
//!
//! ```
//! use vault::core::{check_source, Verdict};
//!
//! let result = check_source(
//!     "leak.vlt",
//!     "stateset FILE_STATE = [ open < closed ];
//!      type FILE;
//!      tracked(F) FILE fopen(string path) [new F@open];
//!      void fclose(tracked(F) FILE f) [-F];
//!      void forgot_to_close() {
//!        tracked(F) FILE f = fopen(\"data\");
//!      }",
//! );
//! assert_eq!(result.verdict(), Verdict::Rejected); // V304: key leak
//! ```

pub use vault_core as core;
pub use vault_corpus as corpus;
pub use vault_eval as eval;
pub use vault_kernel as kernel;
pub use vault_runtime as runtime;
pub use vault_server as server;
pub use vault_syntax as syntax;
pub use vault_types as types;
pub use vault_vm as vm;
