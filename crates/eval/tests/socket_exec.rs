//! Execute the Fig. 3 socket corpus through the interpreter, backed by
//! the in-memory network simulator: the E2 differential, operational.

use std::cell::RefCell;
use std::rc::Rc;
use vault_core::{check_source, Verdict};
use vault_eval::{EvalError, ExternTable, Host, Machine, Value};
use vault_runtime::{CommStyle, Domain, Network, SockId, SocketError};
use vault_syntax::{parse_program, DiagSink};

/// The socket world an interpreted program runs against: the simulator
/// plus a friendly environment that connects a client (and sends one
/// message) whenever the program starts listening, so `accept` and
/// `receive` have work to do.
struct SocketWorld {
    net: Network,
    /// Sockets created by the environment, excluded from leak counting.
    harness: Vec<SockId>,
    /// id ↔ SockId mapping (handles are plain u64s).
    socks: Vec<SockId>,
}

impl SocketWorld {
    fn handle(&mut self, s: SockId) -> Value {
        self.socks.push(s);
        Value::Handle {
            kind: "sock".into(),
            id: self.socks.len() as u64 - 1,
        }
    }

    fn resolve(&self, v: &Value) -> Result<SockId, EvalError> {
        match v {
            Value::Handle { kind, id } if kind == "sock" => self
                .socks
                .get(*id as usize)
                .copied()
                .ok_or_else(|| EvalError::Extern("bad socket handle".into())),
            other => Err(EvalError::Type(format!(
                "expected a socket, got {}",
                other.describe()
            ))),
        }
    }

    fn program_leaks(&self) -> usize {
        let harness_live = self
            .harness
            .iter()
            .filter(|s| {
                self.net
                    .state(**s)
                    .map(|st| st != vault_runtime::SockState::Closed)
                    .unwrap_or(false)
            })
            .count();
        self.net.leaked() - harness_live
    }
}

fn map_err(e: SocketError) -> EvalError {
    EvalError::Extern(e.to_string())
}

fn socket_externs(world: Rc<RefCell<SocketWorld>>) -> ExternTable {
    let mut t = ExternTable::new();
    {
        let w = world.clone();
        t.insert("socket", move |_m, _args| {
            let mut w = w.borrow_mut();
            let s = w.net.socket(Domain::Unix, CommStyle::Stream);
            Ok(w.handle(s))
        });
    }
    {
        let w = world.clone();
        t.insert("bind", move |m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            m.touch_object(&args[1])?;
            w.net.bind(s, 4242).map_err(map_err)?;
            Ok(Value::Unit)
        });
    }
    {
        let w = world.clone();
        t.insert("listen", move |_m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            w.net.listen(s, 8).map_err(map_err)?;
            // The environment: a client connects, so the program's accept
            // has something to do (it says hello once accepted).
            let client = w.net.socket(Domain::Unix, CommStyle::Stream);
            w.harness.push(client);
            w.net.connect(client, 4242).map_err(map_err)?;
            Ok(Value::Unit)
        });
    }
    {
        let w = world.clone();
        t.insert("accept", move |m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            m.touch_object(&args[1])?;
            let conn = w.net.accept(s).map_err(map_err)?;
            // The connected environment client greets the server so a
            // following `receive` has a message waiting.
            if let Some(&client) = w.harness.last() {
                w.net.send(client, b"hello").map_err(map_err)?;
            }
            Ok(w.handle(conn))
        });
    }
    {
        let w = world.clone();
        t.insert("receive", move |_m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            w.net.receive(s).map_err(map_err)?;
            Ok(Value::Unit)
        });
    }
    {
        let w = world.clone();
        t.insert("close", move |_m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            w.net.close(s).map_err(map_err)?;
            Ok(Value::Unit)
        });
    }
    t
}

struct SockRun {
    result: Result<Value, EvalError>,
    program_leaks: usize,
    violations: u64,
}

fn run_socket_program(src: &str, entry: &str, args: Vec<Value>) -> SockRun {
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    assert!(!diags.has_errors(), "{:?}", diags.diagnostics());
    let world = Rc::new(RefCell::new(SocketWorld {
        net: Network::new(),
        harness: Vec::new(),
        socks: Vec::new(),
    }));
    let mut m = Machine::new(&program, socket_externs(world.clone()));
    let out = m.run(entry, args);
    let w = world.borrow();
    SockRun {
        result: out.result,
        program_leaks: w.program_leaks(),
        violations: w.net.stats().violations,
    }
}

fn corpus(id: &str) -> vault_corpus::CorpusProgram {
    vault_corpus::programs_for("E2")
        .into_iter()
        .find(|p| p.id == id)
        .unwrap()
}

fn entry_args(m: &mut Machine<'_>, addr_count: usize, with_buf: bool) -> Vec<Value> {
    let mut args = Vec::new();
    for _ in 0..addr_count {
        let mut fields = vault_eval::value::Fields::new();
        fields.insert("addr".into(), Value::Int(1));
        fields.insert("port".into(), Value::Int(4242));
        args.push(m.alloc_ambient(fields));
    }
    if with_buf {
        args.push(Value::Array(Rc::new(RefCell::new(vec![Value::Int(0); 16]))));
    }
    args
}

fn run_with_fresh_args(id: &str, entry: &str, addrs: usize, buf: bool) -> SockRun {
    let p = corpus(id);
    let mut diags = DiagSink::new();
    let program = parse_program(&p.source, &mut diags);
    assert!(!diags.has_errors());
    let world = Rc::new(RefCell::new(SocketWorld {
        net: Network::new(),
        harness: Vec::new(),
        socks: Vec::new(),
    }));
    let mut m = Machine::new(&program, socket_externs(world.clone()));
    let args = entry_args(&mut m, addrs, buf);
    let out = m.run(entry, args);
    let w = world.borrow();
    SockRun {
        result: out.result,
        program_leaks: w.program_leaks(),
        violations: w.net.stats().violations,
    }
}

#[test]
fn sock_server_ok_accepted_and_runs_clean() {
    let p = corpus("sock_server_ok");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Accepted);
    let run = run_with_fresh_args("sock_server_ok", "server", 1, true);
    assert_eq!(run.result, Ok(Value::Unit), "{:?}", run.result);
    assert_eq!(run.program_leaks, 0);
    assert_eq!(run.violations, 0);
}

#[test]
fn sock_skip_bind_rejected_and_faults() {
    let p = corpus("sock_skip_bind");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Rejected);
    let run = run_with_fresh_args("sock_skip_bind", "bad", 1, false);
    assert!(
        matches!(&run.result, Err(EvalError::Extern(m)) if m.contains("named")),
        "{:?}",
        run.result
    );
    assert!(run.violations >= 1);
}

#[test]
fn sock_recv_unready_rejected_and_faults() {
    let run = run_with_fresh_args("sock_recv_unready", "bad", 1, true);
    assert!(
        matches!(&run.result, Err(EvalError::Extern(m)) if m.contains("ready")),
        "{:?}",
        run.result
    );
}

#[test]
fn sock_leak_rejected_and_leaks() {
    let run = run_with_fresh_args("sock_leak", "bad", 1, false);
    assert_eq!(run.result, Ok(Value::Unit));
    assert_eq!(run.program_leaks, 1, "the raw socket must leak");
}

#[test]
fn run_socket_program_helper_smoke() {
    // Direct use of the lower-level helper for a minimal program.
    let run = run_socket_program(
        "type sock;
         tracked(S) sock socket_raw() [new S];
         void close(tracked(S) sock s) [-S];
         tracked(S) sock socket(int a, int b, int c) [new S];
         void noop() { }",
        "noop",
        vec![],
    );
    assert_eq!(run.result, Ok(Value::Unit));
    assert_eq!(run.program_leaks, 0);
}
