//! Execute the region-family corpus programs and compare the dynamic
//! outcome with the static verdict — the paper's soundness story, run.
//!
//! * Every statically **accepted** program runs clean (no faults, no
//!   leaks).
//! * `fig2_dangling` faults with use-after-delete, `fig2_leaky` leaks,
//!   `region_double_delete` double-deletes — exactly what `V301`/`V304`
//!   predicted.
//! * `fig4_anonymized` and `fig5_join_reject` run **clean** dynamically:
//!   they are the paper's conservative rejections (Fig. 5: "this program
//!   is, in fact, memory-safe"; §2.4: the checker merely *loses track* of
//!   which key guards which region).

use vault_core::{check_source, Verdict};

use vault_eval::{EvalError, ExternTable, Host, Machine, Value};
use vault_syntax::{parse_program, DiagSink};

fn run_region_program(src: &str, entry: &str) -> vault_eval::EvalOutcome {
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    assert!(!diags.has_errors(), "{:?}", diags.diagnostics());
    let mut m = Machine::new(&program, ExternTable::with_regions());
    m.run(entry, vec![])
}

fn corpus(id: &str) -> vault_corpus::CorpusProgram {
    vault_corpus::all_programs()
        .into_iter()
        .find(|p| p.id == id)
        .unwrap_or_else(|| panic!("no corpus program `{id}`"))
}

#[test]
fn fig2_okay_accepted_and_runs_clean() {
    let p = corpus("fig2_okay");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Accepted);
    let out = run_region_program(&p.source, "okay");
    assert_eq!(out.result, Ok(Value::Unit));
    assert!(out.clean(), "leaked {}", out.leaked_regions);
}

#[test]
fn fig2_dangling_rejected_and_faults() {
    let p = corpus("fig2_dangling");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Rejected);
    let out = run_region_program(&p.source, "dangling");
    assert_eq!(out.result, Err(EvalError::UseAfterDelete));
}

#[test]
fn fig2_leaky_rejected_and_leaks() {
    let p = corpus("fig2_leaky");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Rejected);
    let out = run_region_program(&p.source, "leaky");
    assert_eq!(out.result, Ok(Value::Unit));
    assert_eq!(out.leaked_regions, 1, "the region must leak");
}

#[test]
fn double_delete_rejected_and_faults() {
    let p = corpus("region_double_delete");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Rejected);
    let out = run_region_program(&p.source, "twice");
    assert_eq!(out.result, Err(EvalError::DoubleDelete));
}

#[test]
fn alias_delete_rejected_and_faults() {
    let p = corpus("region_alias_delete");
    let out = run_region_program(&p.source, "alias");
    assert_eq!(out.result, Err(EvalError::UseAfterDelete));
}

#[test]
fn fig4_roundtrip_accepted_and_runs_clean() {
    let p = corpus("fig4_roundtrip_consume");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Accepted);
    let out = run_region_program(&p.source, "main");
    assert_eq!(out.result, Ok(Value::Unit));
    assert!(out.clean());
}

#[test]
fn fig4_fix_accepted_and_runs_clean() {
    let p = corpus("fig4_fix_pairs");
    let out = run_region_program(&p.source, "main");
    assert_eq!(out.result, Ok(Value::Unit));
    assert!(out.clean());
}

#[test]
fn fig4_anonymized_is_a_conservative_rejection() {
    // §2.4: the program is dynamically safe — the checker rejects it only
    // because the key identity was lost through the collection.
    let p = corpus("fig4_anonymized");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Rejected);
    let out = run_region_program(&p.source, "main");
    assert_eq!(out.result, Ok(Value::Unit));
    assert!(out.clean(), "dynamically safe, as the paper says");
}

#[test]
fn fig5_join_reject_faults_under_a_strict_oracle() {
    // The paper calls Fig. 5 "in fact, memory-safe", but its second test
    // re-reads `pt.x` *after* the then-branch deleted the region. Under
    // our generation-checked oracle that read is a use-after-delete — the
    // static rejection is not even conservative here.
    let p = corpus("fig5_join_reject");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Rejected);
    let out = run_region_program(&p.source, "main");
    assert_eq!(out.result, Err(EvalError::UseAfterDelete));
}

#[test]
fn fig5_cached_variant_is_the_true_conservative_rejection() {
    // The memory-safe version the paper intends: the correlated value is
    // cached in a local before the region may be deleted. Dynamically
    // clean — yet still rejected at the join point, because the held-key
    // sets disagree (the paper's actual point).
    let src = "
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
struct point { int x; int y; }
void main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  int cached = pt.x;
  if (cached > 0) {
    pt.y = 0;
    Region.delete(rgn);
  } else {
    pt.y = cached;
  }
  if (cached <= 0)
    Region.delete(rgn);
}";
    let r = check_source("fig5_cached", src);
    assert_eq!(r.verdict(), Verdict::Rejected);
    assert!(r.has_code(vault_syntax::Code::JoinMismatch));
    let out = run_region_program(src, "main");
    assert_eq!(out.result, Ok(Value::Unit));
    assert!(out.clean(), "memory-safe, exactly as the paper states");
}

#[test]
fn fig5_variant_fix_accepted_and_runs_clean() {
    let p = corpus("fig5_variant_fix");
    let out = run_region_program(&p.source, "main");
    assert_eq!(out.result, Ok(Value::Unit));
    assert!(out.clean());
}

// ---------------------------------------------------------------------
// X1: the staged pipeline, executed
// ---------------------------------------------------------------------

fn pipeline_externs() -> ExternTable {
    let mut t = ExternTable::with_regions();
    // Each stage reads its guarded input (faulting if the stage region is
    // gone) and allocates its output in the given stage region.
    let stage_fn = |name: &'static str| {
        move |m: &mut dyn Host, args: Vec<Value>| {
            // args[0] is the stage region; later args are guarded inputs.
            for input in &args[1..] {
                m.touch_object(input)?;
            }
            match &args[0] {
                Value::Region(r) => {
                    let mut fields = vault_eval::value::Fields::new();
                    fields.insert("stage".into(), Value::Str(name.into()));
                    m.alloc_in(*r, fields)
                }
                other => Err(EvalError::Type(format!(
                    "{name} expects a region, got {}",
                    other.describe()
                ))),
            }
        }
    };
    t.insert("lex", stage_fn("lex"));
    t.insert("parse", stage_fn("parse"));
    t.insert("typecheck", stage_fn("typecheck"));
    t.insert("emit", stage_fn("emit"));
    t.insert("write_output", |m: &mut dyn Host, args: Vec<Value>| {
        m.touch_object(&args[0])?;
        Ok(Value::Unit)
    });
    t
}

fn run_pipeline(src: &str) -> vault_eval::EvalOutcome {
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    assert!(!diags.has_errors());
    let mut m = Machine::new(&program, pipeline_externs());
    m.run("compile", vec![Value::Str("void f() {}".into())])
}

#[test]
fn pipeline_staged_regions_runs_clean() {
    let p = corpus("pipeline_staged_regions");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Accepted);
    let out = run_pipeline(&p.source);
    assert_eq!(out.result, Ok(Value::Unit));
    assert!(out.clean(), "leaked {}", out.leaked_regions);
}

#[test]
fn pipeline_freed_too_early_faults_dynamically() {
    let p = corpus("pipeline_stage_freed_too_early");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Rejected);
    let out = run_pipeline(&p.source);
    assert_eq!(out.result, Err(EvalError::UseAfterDelete));
}

#[test]
fn pipeline_leak_leaks_dynamically() {
    let p = corpus("pipeline_stage_leaked");
    let out = run_pipeline(&p.source);
    assert_eq!(out.result, Ok(Value::Unit));
    assert!(out.leaked_regions >= 1);
}

// ---------------------------------------------------------------------
// X2: failure-aware allocation, executed on both extern behaviours
// ---------------------------------------------------------------------

fn allocfail_externs(succeed: bool) -> ExternTable {
    let mut t = ExternTable::with_regions();
    t.insert(
        "try_new_point",
        move |m: &mut dyn Host, args: Vec<Value>| match &args[0] {
            Value::Region(r) if succeed => {
                let mut fields = vault_eval::value::Fields::new();
                fields.insert("x".into(), args[1].clone());
                fields.insert("y".into(), args[2].clone());
                let obj = m.alloc_in(*r, fields)?;
                Ok(Value::Variant {
                    ctor: "Alloc".into(),
                    args: vec![obj],
                })
            }
            Value::Region(_) => Ok(Value::Variant {
                ctor: "OutOfMemory".into(),
                args: vec![],
            }),
            other => Err(EvalError::Type(format!(
                "try_new_point expects a region, got {}",
                other.describe()
            ))),
        },
    );
    t
}

#[test]
fn allocfail_checked_runs_clean_on_both_outcomes() {
    let p = corpus("allocfail_checked");
    assert_eq!(check_source(p.id, &p.source).verdict(), Verdict::Accepted);
    for succeed in [true, false] {
        let mut diags = DiagSink::new();
        let program = parse_program(&p.source, &mut diags);
        assert!(!diags.has_errors());
        let mut m = Machine::new(&program, allocfail_externs(succeed));
        let out = m.run("robust", vec![]);
        assert_eq!(out.result, Ok(Value::Unit), "succeed={succeed}");
        assert!(out.clean(), "succeed={succeed}");
    }
}
