//! The shared execution substrate: everything both engines — the
//! tree-walking interpreter ([`crate::Machine`]) and the `vault-vm`
//! bytecode backend — must agree on. Fault vocabulary, extern dispatch,
//! outcome shape, and the [`Host`] interface that externs program
//! against all live here, so a single [`ExternTable`] can drive either
//! engine and the differential suite can compare [`EvalOutcome`]s
//! byte-for-byte.

use crate::value::{Fields, Value};
use std::collections::BTreeMap;
use std::fmt;
use vault_runtime::{RegionError, RegionId};

/// Default execution budget (statements + expressions).
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// Default bound on nested Vault-level calls. The interpreter consumes
/// Rust stack per Vault frame, so runaway recursion must become a
/// structured [`EvalError::StackOverflow`] before it aborts the process;
/// the VM enforces the same bound on its (heap-allocated) frame stack so
/// the two engines fault identically.
pub const DEFAULT_CALL_DEPTH: usize = 128;

/// Evaluation errors. `UseAfterDelete`/`DoubleDelete` are the dynamic
/// resource faults that the static checker's `V301` rejections predict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A region object was accessed after its region was deleted.
    UseAfterDelete,
    /// A region was deleted twice.
    DoubleDelete,
    /// No function or extern with this name.
    UnknownFunction(String),
    /// An extern reported a failure.
    Extern(String),
    /// Dynamic type confusion (cannot happen for checked programs).
    Type(String),
    /// Integer division by zero.
    DivideByZero,
    /// The fuel budget was exhausted (runaway loop).
    OutOfFuel,
    /// The call-depth bound was exceeded (runaway recursion).
    StackOverflow,
    /// A construct the engine does not model.
    Unsupported(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UseAfterDelete => f.write_str("use after region delete"),
            EvalError::DoubleDelete => f.write_str("region deleted twice"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EvalError::Extern(m) => write!(f, "extern failure: {m}"),
            EvalError::Type(m) => write!(f, "dynamic type error: {m}"),
            EvalError::DivideByZero => f.write_str("division by zero"),
            EvalError::OutOfFuel => f.write_str("out of fuel"),
            EvalError::StackOverflow => f.write_str("call depth limit exceeded"),
            EvalError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<RegionError> for EvalError {
    fn from(e: RegionError) -> Self {
        match e {
            RegionError::UseAfterDelete | RegionError::InvalidHandle => EvalError::UseAfterDelete,
            RegionError::DoubleDelete => EvalError::DoubleDelete,
        }
    }
}

/// The machine-independent surface an extern programs against: region
/// creation/deletion and object allocation, backed by whichever engine
/// is running. Both the interpreter and the VM implement this over the
/// same `vault_runtime::RegionHeap` oracle, which is what makes a single
/// extern table usable — and comparable — across engines.
pub trait Host {
    /// Create a region.
    fn create_region(&mut self) -> RegionId;

    /// Delete a region.
    fn delete_region(&mut self, r: RegionId) -> Result<(), EvalError>;

    /// Allocate an object in a region.
    fn alloc_in(&mut self, r: RegionId, fields: Fields) -> Result<Value, EvalError>;

    /// Verify an object value is still reachable (externs use this to
    /// model *reading* their guarded inputs — a deleted backing region
    /// faults, exactly like a dereference would).
    fn touch_object(&self, v: &Value) -> Result<(), EvalError>;

    /// Allocate a harness-owned object (parameters, fixtures); its
    /// backing region does not count as a leak.
    fn alloc_ambient(&mut self, fields: Fields) -> Value;

    /// Create a harness-owned region, excluded from leak accounting.
    fn create_ambient_region(&mut self) -> RegionId;
}

/// An external function provided by the embedding. It receives the
/// running engine through the [`Host`] interface, so the same closure
/// serves the interpreter and the VM.
pub type ExternFn = Box<dyn FnMut(&mut dyn Host, Vec<Value>) -> Result<Value, EvalError>>;

/// Named external functions (the implementations behind signature-only
/// declarations such as the `REGION` interface).
#[derive(Default)]
pub struct ExternTable {
    map: BTreeMap<String, ExternFn>,
}

impl ExternTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an extern.
    pub fn insert(
        &mut self,
        name: &str,
        f: impl FnMut(&mut dyn Host, Vec<Value>) -> Result<Value, EvalError> + 'static,
    ) -> &mut Self {
        self.map.insert(name.to_string(), Box::new(f));
        self
    }

    /// Dispatch a call to the named extern, or fault with
    /// [`EvalError::UnknownFunction`]. Both engines route signature-only
    /// calls through here so the miss behaviour is shared too.
    pub fn dispatch(
        &mut self,
        host: &mut dyn Host,
        name: &str,
        args: Vec<Value>,
    ) -> Result<Value, EvalError> {
        match self.map.get_mut(name) {
            Some(f) => f(host, args),
            None => Err(EvalError::UnknownFunction(name.to_string())),
        }
    }

    /// A table implementing the paper's `REGION` interface (`create`,
    /// `delete`) against the engine's region heap.
    pub fn with_regions() -> Self {
        let mut t = Self::new();
        t.insert("create", |h, _args| Ok(Value::Region(h.create_region())));
        t.insert("delete", |h, mut args| match args.pop() {
            Some(Value::Region(r)) => {
                h.delete_region(r)?;
                Ok(Value::Unit)
            }
            other => Err(EvalError::Type(format!(
                "delete expects a region, got {:?}",
                other.map(|v| v.describe())
            ))),
        });
        t
    }
}

/// The result of a run, with resource accounting. `PartialEq` so the
/// differential harness can assert two engines produced the *same*
/// outcome — result, leaks, and fuel.
#[derive(Debug, PartialEq)]
pub struct EvalOutcome {
    /// The entry function's return value, or the fault.
    pub result: Result<Value, EvalError>,
    /// Regions still live when the entry function finished (leaks) —
    /// ambient objects created by the harness are not counted.
    pub leaked_regions: usize,
    /// Fuel consumed so far by this engine (cumulative across runs on
    /// the same engine instance). Asserted identical across engines.
    pub fuel_used: u64,
}

impl EvalOutcome {
    /// Ran to completion with no faults and no leaks.
    pub fn clean(&self) -> bool {
        self.result.is_ok() && self.leaked_regions == 0
    }
}
