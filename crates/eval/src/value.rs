//! Runtime values. Keys have no representation (paper §2.1): a tracked
//! object is just a handle into the region heap, a keyed variant is just a
//! tag plus payload.

use std::collections::BTreeMap;
use std::fmt;
use vault_runtime::{RegionId, RegionPtr};

/// A struct object's fields.
pub type Fields = BTreeMap<String, Value>;

/// A runtime value.
#[derive(Debug, PartialEq)]
pub enum Value {
    /// `void` / no value.
    Unit,
    /// Integers (also `byte`).
    Int(i64),
    /// Booleans.
    Bool(bool),
    /// Strings.
    Str(String),
    /// Arrays (shared, mutable).
    Array(std::rc::Rc<std::cell::RefCell<Vec<Value>>>),
    /// A heap/region object: fields live in the region heap.
    Obj {
        /// The region holding the object.
        region: RegionId,
        /// Handle to its field map.
        ptr: RegionPtr<Fields>,
    },
    /// A region handle itself (the `region` abstract type).
    Region(RegionId),
    /// A variant value: constructor tag plus payload (keys erased).
    Variant {
        /// Constructor name, without the tick.
        ctor: String,
        /// Component values.
        args: Vec<Value>,
    },
    /// An opaque token produced by an extern (abstract types).
    Opaque(String),
    /// A numbered handle into an extern-managed substrate (e.g. a socket
    /// id in the network simulator).
    Handle {
        /// What kind of handle (diagnostics + extern-side checking).
        kind: String,
        /// The substrate-side identifier.
        id: u64,
    },
    /// A function value (named function or nested routine).
    Fn(String),
}

// Hand-written so it carries `#[inline]`: both engines clone values on
// every variable read, and the VM's dispatch loop lives in another
// crate — without the attribute each `Move` pays a function call.
impl Clone for Value {
    #[inline]
    fn clone(&self) -> Value {
        match self {
            Value::Unit => Value::Unit,
            Value::Int(n) => Value::Int(*n),
            Value::Bool(b) => Value::Bool(*b),
            Value::Str(s) => Value::Str(s.clone()),
            Value::Array(a) => Value::Array(a.clone()),
            Value::Obj { region, ptr } => Value::Obj {
                region: *region,
                ptr: *ptr,
            },
            Value::Region(r) => Value::Region(*r),
            Value::Variant { ctor, args } => Value::Variant {
                ctor: ctor.clone(),
                args: args.clone(),
            },
            Value::Opaque(s) => Value::Opaque(s.clone()),
            Value::Handle { kind, id } => Value::Handle {
                kind: kind.clone(),
                id: *id,
            },
            Value::Fn(name) => Value::Fn(name.clone()),
        }
    }
}

impl Value {
    /// The integer inside, if any.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Short type-ish description for error messages.
    pub fn describe(&self) -> &'static str {
        match self {
            Value::Unit => "void",
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Obj { .. } => "object",
            Value::Region(_) => "region",
            Value::Variant { .. } => "variant",
            Value::Opaque(_) => "opaque",
            Value::Handle { .. } => "handle",
            Value::Fn(_) => "function",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(a) => write!(f, "[{} elements]", a.borrow().len()),
            Value::Obj { .. } => f.write_str("<object>"),
            Value::Region(_) => f.write_str("<region>"),
            Value::Variant { ctor, args } => {
                write!(f, "'{ctor}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Value::Opaque(tag) => write!(f, "<{tag}>"),
            Value::Handle { kind, id } => write!(f, "<{kind} #{id}>"),
            Value::Fn(name) => write!(f, "<fn {name}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_bool(), None);
        assert_eq!(Value::Unit.describe(), "void");
    }

    #[test]
    fn display_forms() {
        let v = Value::Variant {
            ctor: "Some".into(),
            args: vec![Value::Int(3)],
        };
        assert_eq!(v.to_string(), "'Some(3)");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
    }
}
