//! # vault-eval
//!
//! A reference interpreter for Vault programs. Keys and guards are
//! compile-time only (paper §2.1), so evaluation ignores them entirely —
//! what remains is C-like execution over the runtime substrates. Running
//! the corpus through this interpreter demonstrates the paper's soundness
//! story operationally:
//!
//! * statically **accepted** programs run to completion with no resource
//!   faults and no leaks;
//! * the statically **rejected** programs fault (use-after-delete, double
//!   delete) or leak at run time — exactly where the checker pointed.
//!
//! Regions are backed by [`vault_runtime::RegionHeap`]; `new tracked`
//! objects get a private region each, so `free` and dangling accesses are
//! caught by the same generation-checked oracle. External functions
//! (interfaces like `REGION` or `SOCKET`) are provided by the embedding
//! through an [`ExternTable`].

#![warn(missing_docs)]

pub mod host;
pub mod machine;
pub mod ops;
pub mod value;

pub use host::{
    EvalError, EvalOutcome, ExternFn, ExternTable, Host, DEFAULT_CALL_DEPTH, DEFAULT_FUEL,
};
pub use machine::Machine;
pub use value::Value;
