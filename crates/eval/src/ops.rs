//! Shared operator semantics and fault messages.
//!
//! The differential suite asserts the interpreter and the bytecode VM
//! produce byte-for-byte identical [`EvalError`]s, so every dynamic
//! fault message and every operator's edge behaviour (wrapping
//! arithmetic, division by zero, comparison rules) is defined exactly
//! once, here, and called from both engines. Adding a message inline in
//! one engine is how the two drift apart — don't.

use crate::host::EvalError;
use crate::value::Value;
use vault_syntax::ast::{BinOp, UnOp};

/// Apply a non-short-circuit binary operator. Arithmetic wraps (the
/// paper's target is C; overflow is not a protocol fault), division and
/// remainder by zero fault, `==`/`!=` use structural value equality, and
/// ordered comparisons are integer-only.
pub fn binop(op: BinOp, l: Value, r: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    if op.is_arith() {
        let (a, b) = match (l.as_int(), r.as_int()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(EvalError::Type("arithmetic on non-integers".into())),
        };
        return Ok(Value::Int(match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    return Err(EvalError::DivideByZero);
                }
                a.wrapping_div(b)
            }
            Rem => {
                if b == 0 {
                    return Err(EvalError::DivideByZero);
                }
                a.wrapping_rem(b)
            }
            _ => unreachable!(),
        }));
    }
    let result = match (op, &l, &r) {
        (Eq, a, b) => a == b,
        (Ne, a, b) => a != b,
        (Lt, Value::Int(a), Value::Int(b)) => a < b,
        (Le, Value::Int(a), Value::Int(b)) => a <= b,
        (Gt, Value::Int(a), Value::Int(b)) => a > b,
        (Ge, Value::Int(a), Value::Int(b)) => a >= b,
        _ => return Err(err_cannot_compare(&l, &r)),
    };
    Ok(Value::Bool(result))
}

/// Apply a unary operator. Negation wraps (`-i64::MIN` is `i64::MIN`,
/// not a process abort).
pub fn unop(op: UnOp, v: Value) -> Result<Value, EvalError> {
    match op {
        UnOp::Not => v
            .as_bool()
            .map(|b| Value::Bool(!b))
            .ok_or_else(|| EvalError::Type("! on non-bool".into())),
        UnOp::Neg => v
            .as_int()
            .map(|n| Value::Int(n.wrapping_neg()))
            .ok_or_else(|| EvalError::Type("- on non-int".into())),
    }
}

/// `x++` / `x--`: the current value must be an integer; the step wraps.
/// (Both directions report the same historical `++` message.)
pub fn incr(cur: &Value, delta: i64) -> Result<Value, EvalError> {
    let n = cur.as_int().ok_or_else(err_incr_non_int)?;
    Ok(Value::Int(n.wrapping_add(delta)))
}

/// Arity mismatch at a call.
pub fn err_arity(fname: &str, expect: usize, got: usize) -> EvalError {
    EvalError::Type(format!("`{fname}` expects {expect} argument(s), got {got}"))
}

/// Read or write of a name with no binding in scope.
pub fn err_unknown_var(name: &str) -> EvalError {
    EvalError::Type(format!("unknown variable `{name}`"))
}

/// `++`/`--` on a non-integer current value.
pub fn err_incr_non_int() -> EvalError {
    EvalError::Type("++ on a non-integer".into())
}

/// `if`/`while` condition that is not a boolean.
pub fn err_non_bool_cond() -> EvalError {
    EvalError::Type("non-bool condition".into())
}

/// `&&`/`||` operand that is not a boolean.
pub fn err_logic_non_bool() -> EvalError {
    EvalError::Type("logic on non-bool".into())
}

/// `switch` scrutinee that is not a variant value.
pub fn err_switch_non_variant(v: &Value) -> EvalError {
    EvalError::Type(format!("switch on a non-variant ({})", v.describe()))
}

/// `free` of a value kind that owns nothing.
pub fn err_free_on(v: &Value) -> EvalError {
    EvalError::Type(format!("free on {}", v.describe()))
}

/// Field write through a non-object base.
pub fn err_field_assign_on(v: &Value) -> EvalError {
    EvalError::Type(format!("field assignment on {}", v.describe()))
}

/// Field read through a non-object base.
pub fn err_field_access_on(v: &Value) -> EvalError {
    EvalError::Type(format!("field access on {}", v.describe()))
}

/// Index expression that is not an integer.
pub fn err_non_int_index() -> EvalError {
    EvalError::Type("non-integer index".into())
}

/// Out-of-bounds read (arrays and strings).
pub fn err_index_oob_read(i: i64) -> EvalError {
    EvalError::Type(format!("index {i} out of bounds"))
}

/// Out-of-bounds array write (the write path also reports the length).
pub fn err_index_oob_write(i: i64, len: usize) -> EvalError {
    EvalError::Type(format!("index {i} out of bounds ({len})"))
}

/// Index write through a non-array base.
pub fn err_index_assign_on(v: &Value) -> EvalError {
    EvalError::Type(format!("index assignment on {}", v.describe()))
}

/// Index read through a non-indexable base.
pub fn err_indexing(v: &Value) -> EvalError {
    EvalError::Type(format!("indexing {}", v.describe()))
}

/// `new(e)` where `e` is not a region.
pub fn err_alloc_from(v: &Value) -> EvalError {
    EvalError::Type(format!("allocation from {}", v.describe()))
}

/// Assignment whose left-hand side is not a place expression.
pub fn err_assign_non_place() -> EvalError {
    EvalError::Type("assignment to a non-place".into())
}

/// Call through anything but a (possibly module-qualified) name.
pub fn err_computed_call() -> EvalError {
    EvalError::Unsupported("computed call targets".into())
}

/// Ordered comparison on unsupported operand kinds.
pub fn err_cannot_compare(l: &Value, r: &Value) -> EvalError {
    EvalError::Type(format!(
        "cannot compare {} with {}",
        l.describe(),
        r.describe()
    ))
}
