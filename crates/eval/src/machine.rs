//! The interpreter proper: an environment machine over the AST, with
//! regions backed by the generation-checked [`RegionHeap`].
//!
//! Fault vocabulary, extern dispatch, and operator semantics live in
//! [`crate::host`] and [`crate::ops`], shared with the `vault-vm`
//! bytecode backend; this module is only the tree-walking control flow.

use crate::host::{EvalError, EvalOutcome, ExternTable, Host, DEFAULT_CALL_DEPTH, DEFAULT_FUEL};
use crate::ops;
use crate::value::{Fields, Value};
use std::collections::BTreeMap;
use vault_runtime::{RegionHeap, RegionId};
use vault_syntax::ast::{self, BinOp, Expr, ExprKind, PatBinder, Program, Stmt, StmtKind};

enum Flow {
    Normal,
    Return(Value),
}

/// The interpreter.
pub struct Machine<'p> {
    fns: BTreeMap<String, &'p ast::FunDecl>,
    heap: RegionHeap<Fields>,
    /// Regions created by the harness (excluded from leak accounting).
    ambient: std::collections::BTreeSet<RegionId>,
    externs: Option<ExternTable>,
    fuel: u64,
    budget: u64,
    depth: usize,
    depth_limit: usize,
}

impl<'p> Machine<'p> {
    /// Build a machine over a parsed program and an extern table.
    pub fn new(program: &'p Program, externs: ExternTable) -> Self {
        let mut fns = BTreeMap::new();
        for f in program.functions() {
            fns.insert(f.name.name.to_string(), f);
        }
        Machine {
            fns,
            heap: RegionHeap::new(),
            ambient: std::collections::BTreeSet::new(),
            externs: Some(externs),
            fuel: DEFAULT_FUEL,
            budget: DEFAULT_FUEL,
            depth: 0,
            depth_limit: DEFAULT_CALL_DEPTH,
        }
    }

    /// Override the fuel budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
        self.budget = fuel;
    }

    /// Override the call-depth bound.
    pub fn set_call_depth_limit(&mut self, limit: usize) {
        self.depth_limit = limit;
    }

    /// Fuel consumed so far (cumulative across runs).
    pub fn fuel_used(&self) -> u64 {
        self.budget - self.fuel
    }

    fn leaked(&self) -> usize {
        let ambient_live = self
            .ambient
            .iter()
            .filter(|r| self.heap.is_live(**r))
            .count();
        self.heap.leaked() - ambient_live
    }

    /// Run a parameterless-or-supplied-args entry function to completion.
    pub fn run(&mut self, entry: &str, args: Vec<Value>) -> EvalOutcome {
        let result = self.call(entry, args);
        EvalOutcome {
            result,
            leaked_regions: self.leaked(),
            fuel_used: self.fuel_used(),
        }
    }

    fn burn(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Call a function or extern by name.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        self.burn()?;
        if let Some(f) = self.fns.get(name).copied() {
            if f.body.is_some() {
                return self.call_decl(f, args);
            }
        }
        // Signature-only: dispatch to the extern table (taken out during
        // the call so the extern can use the machine as a `Host`). The
        // `Host` interface cannot re-enter `call`, so the table is always
        // present here; a structured fault keeps even a broken embedding
        // from aborting the process.
        let Some(mut table) = self.externs.take() else {
            return Err(EvalError::Extern("extern table re-entered".into()));
        };
        let r = table.dispatch(self, name, args);
        self.externs = Some(table);
        r
    }

    fn call_decl(&mut self, f: &'p ast::FunDecl, args: Vec<Value>) -> Result<Value, EvalError> {
        let mut env: Vec<BTreeMap<String, Value>> = vec![BTreeMap::new()];
        let named: Vec<&ast::FunParam> = f.params.iter().collect();
        if args.len() != named.len() {
            return Err(ops::err_arity(&f.name.name, named.len(), args.len()));
        }
        if self.depth >= self.depth_limit {
            return Err(EvalError::StackOverflow);
        }
        for (p, v) in named.iter().zip(args) {
            if let Some(n) = &p.name {
                env[0].insert(n.name.to_string(), v);
            }
        }
        let body = f.body.as_ref().expect("checked by caller");
        self.depth += 1;
        let flow = self.exec_block(body, &mut env);
        self.depth -= 1;
        match flow? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(Value::Unit),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn exec_block(
        &mut self,
        b: &'p ast::Block,
        env: &mut Vec<BTreeMap<String, Value>>,
    ) -> Result<Flow, EvalError> {
        env.push(BTreeMap::new());
        let mut flow = Flow::Normal;
        for s in &b.stmts {
            flow = self.exec_stmt(s, env)?;
            if matches!(flow, Flow::Return(_)) {
                break;
            }
        }
        env.pop();
        Ok(flow)
    }

    fn exec_stmt(
        &mut self,
        s: &'p Stmt,
        env: &mut Vec<BTreeMap<String, Value>>,
    ) -> Result<Flow, EvalError> {
        self.burn()?;
        match &s.kind {
            StmtKind::Local { name, init, .. } => {
                let v = match init {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Unit,
                };
                env.last_mut()
                    .expect("scope")
                    .insert(name.name.to_string(), v);
                Ok(Flow::Normal)
            }
            StmtKind::NestedFun(f) => {
                // Nested routines are registered by name; their captures
                // resolve against the host environment at call time is not
                // modelled — the kernel simulator is the execution story
                // for Fig. 7. Calling one here is unsupported.
                env.last_mut()
                    .expect("scope")
                    .insert(f.name.name.to_string(), Value::Fn(f.name.name.to_string()));
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::Assign { lhs, rhs } => {
                let v = self.eval(rhs, env)?;
                self.assign(lhs, v, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::Incr(e) | StmtKind::Decr(e) => {
                let delta = if matches!(s.kind, StmtKind::Incr(_)) {
                    1
                } else {
                    -1
                };
                let cur = self.eval(e, env)?;
                let next = ops::incr(&cur, delta)?;
                self.assign(e, next, env)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self
                    .eval(cond, env)?
                    .as_bool()
                    .ok_or_else(ops::err_non_bool_cond)?;
                if c {
                    self.exec_stmt(then_branch, env)
                } else if let Some(e) = else_branch {
                    self.exec_stmt(e, env)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                loop {
                    self.burn()?;
                    let c = self
                        .eval(cond, env)?
                        .as_bool()
                        .ok_or_else(ops::err_non_bool_cond)?;
                    if !c {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_stmt(body, env)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Switch { scrutinee, arms } => {
                let v = self.eval(scrutinee, env)?;
                let Value::Variant { ctor, args } = v else {
                    return Err(ops::err_switch_non_variant(&v));
                };
                for arm in arms {
                    if arm.ctor.name == ctor {
                        env.push(BTreeMap::new());
                        for (i, b) in arm.binders.iter().enumerate() {
                            if let PatBinder::Name(n) = b {
                                let component = args.get(i).cloned().unwrap_or(Value::Unit);
                                env.last_mut()
                                    .expect("scope")
                                    .insert(n.name.to_string(), component);
                            }
                        }
                        let mut flow = Flow::Normal;
                        for st in &arm.body {
                            flow = self.exec_stmt(st, env)?;
                            if matches!(flow, Flow::Return(_)) {
                                break;
                            }
                        }
                        env.pop();
                        return Ok(flow);
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Free(e) => {
                let v = self.eval(e, env)?;
                match v {
                    // `new tracked` objects own their private region.
                    Value::Obj { region, .. } => {
                        self.heap.delete(region)?;
                    }
                    // Heap variants and opaque handles free trivially.
                    Value::Variant { .. } | Value::Opaque(_) => {}
                    Value::Region(r) => {
                        self.heap.delete(r)?;
                    }
                    other => return Err(ops::err_free_on(&other)),
                }
                Ok(Flow::Normal)
            }
            StmtKind::Block(b) => self.exec_block(b, env),
        }
    }

    fn assign(
        &mut self,
        lhs: &'p Expr,
        v: Value,
        env: &mut Vec<BTreeMap<String, Value>>,
    ) -> Result<(), EvalError> {
        match &lhs.kind {
            ExprKind::Var(name) => {
                for frame in env.iter_mut().rev() {
                    if let Some(slot) = frame.get_mut(name.name.as_str()) {
                        *slot = v;
                        return Ok(());
                    }
                }
                Err(ops::err_unknown_var(&name.name))
            }
            ExprKind::Field(base, field) => {
                let b = self.eval(base, env)?;
                match b {
                    Value::Obj { ptr, .. } => {
                        let fields = self.heap.get_mut(ptr)?;
                        fields.insert(field.name.to_string(), v);
                        Ok(())
                    }
                    other => Err(ops::err_field_assign_on(&other)),
                }
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(base, env)?;
                let i = self
                    .eval(idx, env)?
                    .as_int()
                    .ok_or_else(ops::err_non_int_index)?;
                match b {
                    Value::Array(a) => {
                        let mut a = a.borrow_mut();
                        let len = a.len();
                        let slot = a
                            .get_mut(i as usize)
                            .ok_or_else(|| ops::err_index_oob_write(i, len))?;
                        *slot = v;
                        Ok(())
                    }
                    other => Err(ops::err_index_assign_on(&other)),
                }
            }
            _ => Err(ops::err_assign_non_place()),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn eval(
        &mut self,
        e: &'p Expr,
        env: &mut Vec<BTreeMap<String, Value>>,
    ) -> Result<Value, EvalError> {
        self.burn()?;
        match &e.kind {
            ExprKind::IntLit(n) => Ok(Value::Int(*n)),
            ExprKind::BoolLit(b) => Ok(Value::Bool(*b)),
            ExprKind::StrLit(s) => Ok(Value::Str(s.clone())),
            ExprKind::Var(name) => {
                for frame in env.iter().rev() {
                    if let Some(v) = frame.get(name.name.as_str()) {
                        return Ok(v.clone());
                    }
                }
                if self.fns.contains_key(name.name.as_str()) {
                    return Ok(Value::Fn(name.name.to_string()));
                }
                Err(ops::err_unknown_var(&name.name))
            }
            ExprKind::Field(base, field) => {
                let b = self.eval(base, env)?;
                match b {
                    Value::Obj { ptr, .. } => {
                        let fields = self.heap.get(ptr)?;
                        Ok(fields
                            .get(field.name.as_str())
                            .cloned()
                            .unwrap_or(Value::Unit))
                    }
                    other => Err(ops::err_field_access_on(&other)),
                }
            }
            ExprKind::Index(base, idx) => {
                let b = self.eval(base, env)?;
                let i = self
                    .eval(idx, env)?
                    .as_int()
                    .ok_or_else(ops::err_non_int_index)?;
                match b {
                    Value::Array(a) => a
                        .borrow()
                        .get(i as usize)
                        .cloned()
                        .ok_or_else(|| ops::err_index_oob_read(i)),
                    Value::Str(s) => s
                        .as_bytes()
                        .get(i as usize)
                        .map(|b| Value::Int(*b as i64))
                        .ok_or_else(|| ops::err_index_oob_read(i)),
                    other => Err(ops::err_indexing(&other)),
                }
            }
            ExprKind::Call { callee, args, .. } => {
                let name = match &callee.kind {
                    ExprKind::Var(n) => n.name.clone(),
                    // Module-qualified: `Region.create`.
                    ExprKind::Field(base, f)
                        if matches!(&base.kind, ExprKind::Var(q)
                            if !env.iter().any(|fr| fr.contains_key(q.name.as_str()))) =>
                    {
                        f.name.clone()
                    }
                    _ => return Err(ops::err_computed_call()),
                };
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env)?);
                }
                self.call(&name, argv)
            }
            ExprKind::Ctor { name, args, .. } => {
                // Keys are erased: a constructor is tag + payload.
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval(a, env)?);
                }
                Ok(Value::Variant {
                    ctor: name.name.to_string(),
                    args: argv,
                })
            }
            ExprKind::New { region, inits, .. } => {
                let mut fields = Fields::new();
                for init in inits {
                    let v = self.eval(&init.value, env)?;
                    fields.insert(init.name.name.to_string(), v);
                }
                match region {
                    // `new tracked`: a private region per object so `free`
                    // and dangling accesses hit the same oracle.
                    None => {
                        let r = self.heap.create();
                        self.alloc_in(r, fields)
                    }
                    Some(rexpr) => {
                        let rv = self.eval(rexpr, env)?;
                        match rv {
                            Value::Region(r) => self.alloc_in(r, fields),
                            other => Err(ops::err_alloc_from(&other)),
                        }
                    }
                }
            }
            ExprKind::Unary(op, inner) => {
                let v = self.eval(inner, env)?;
                ops::unop(*op, v)
            }
            ExprKind::Binary(op, l, r) => {
                // Short-circuit logic first.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let lv = self
                        .eval(l, env)?
                        .as_bool()
                        .ok_or_else(ops::err_logic_non_bool)?;
                    return Ok(Value::Bool(match op {
                        BinOp::And if !lv => false,
                        BinOp::Or if lv => true,
                        _ => self
                            .eval(r, env)?
                            .as_bool()
                            .ok_or_else(ops::err_logic_non_bool)?,
                    }));
                }
                let lv = self.eval(l, env)?;
                let rv = self.eval(r, env)?;
                ops::binop(*op, lv, rv)
            }
        }
    }
}

impl<'p> Host for Machine<'p> {
    fn create_region(&mut self) -> RegionId {
        self.heap.create()
    }

    fn delete_region(&mut self, r: RegionId) -> Result<(), EvalError> {
        self.heap.delete(r)?;
        Ok(())
    }

    fn alloc_in(&mut self, r: RegionId, fields: Fields) -> Result<Value, EvalError> {
        let ptr = self.heap.alloc(r, fields)?;
        Ok(Value::Obj { region: r, ptr })
    }

    fn touch_object(&self, v: &Value) -> Result<(), EvalError> {
        match v {
            Value::Obj { ptr, .. } => {
                self.heap.get(*ptr)?;
                Ok(())
            }
            Value::Region(r) => {
                if self.heap.is_live(*r) {
                    Ok(())
                } else {
                    Err(EvalError::UseAfterDelete)
                }
            }
            _ => Ok(()),
        }
    }

    fn alloc_ambient(&mut self, fields: Fields) -> Value {
        let r = self.create_ambient_region();
        let ptr = self.heap.alloc(r, fields).expect("fresh region");
        Value::Obj { region: r, ptr }
    }

    fn create_ambient_region(&mut self) -> RegionId {
        let r = self.heap.create();
        self.ambient.insert(r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vault_syntax::{parse_program, DiagSink};

    fn machine_for(src: &str, externs: ExternTable) -> (Program, ExternTable) {
        let mut diags = DiagSink::new();
        let p = parse_program(src, &mut diags);
        assert!(!diags.has_errors(), "{:?}", diags.diagnostics());
        (p, externs)
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (p, ext) = machine_for(
            "int fib(int n) {
               if (n <= 1) { return n; }
               return fib(n - 1) + fib(n - 2);
             }",
            ExternTable::new(),
        );
        let mut m = Machine::new(&p, ext);
        let out = m.run("fib", vec![Value::Int(10)]);
        assert_eq!(out.result, Ok(Value::Int(55)));
        assert!(out.clean());
    }

    #[test]
    fn while_loop_and_assignment() {
        let (p, ext) = machine_for(
            "int sum_to(int n) {
               int acc = 0;
               while (n > 0) {
                 acc = acc + n;
                 n = n - 1;
               }
               return acc;
             }",
            ExternTable::new(),
        );
        let mut m = Machine::new(&p, ext);
        assert_eq!(
            m.run("sum_to", vec![Value::Int(100)]).result,
            Ok(Value::Int(5050))
        );
    }

    #[test]
    fn structs_and_free() {
        let (p, ext) = machine_for(
            "struct point { int x; int y; }
             int f() {
               tracked(K) point p = new tracked point {x=3; y=4;};
               p.x++;
               int r = p.x * p.y;
               free(p);
               return r;
             }",
            ExternTable::new(),
        );
        let mut m = Machine::new(&p, ext);
        let out = m.run("f", vec![]);
        assert_eq!(out.result, Ok(Value::Int(16)));
        assert_eq!(out.leaked_regions, 0);
    }

    #[test]
    fn use_after_free_faults() {
        let (p, ext) = machine_for(
            "struct point { int x; int y; }
             int f() {
               tracked(K) point p = new tracked point {x=3; y=4;};
               free(p);
               return p.x;
             }",
            ExternTable::new(),
        );
        let mut m = Machine::new(&p, ext);
        assert_eq!(m.run("f", vec![]).result, Err(EvalError::UseAfterDelete));
    }

    #[test]
    fn leak_is_counted() {
        let (p, ext) = machine_for(
            "struct point { int x; int y; }
             void f() {
               tracked(K) point p = new tracked point {x=1; y=1;};
             }",
            ExternTable::new(),
        );
        let mut m = Machine::new(&p, ext);
        let out = m.run("f", vec![]);
        assert_eq!(out.result, Ok(Value::Unit));
        assert_eq!(out.leaked_regions, 1);
        assert!(!out.clean());
    }

    #[test]
    fn variants_and_switch() {
        let (p, ext) = machine_for(
            "variant opt [ 'None | 'Some(int) ];
             int get(opt o, int dflt) {
               switch (o) {
                 case 'None:
                   return dflt;
                 case 'Some(v):
                   return v + 1;
               }
               return dflt;
             }
             int main_like() {
               return get('Some(41), 0) + get('None, 7);
             }",
            ExternTable::new(),
        );
        let mut m = Machine::new(&p, ext);
        assert_eq!(m.run("main_like", vec![]).result, Ok(Value::Int(49)));
    }

    #[test]
    fn externs_are_dispatched() {
        let (p, mut ext) = machine_for(
            "int triple(int x);
             int f() { return triple(14); }",
            ExternTable::new(),
        );
        ext.insert("triple", |_h, args| {
            Ok(Value::Int(args[0].as_int().unwrap() * 3))
        });
        let mut m = Machine::new(&p, ext);
        assert_eq!(m.run("f", vec![]).result, Ok(Value::Int(42)));
    }

    #[test]
    fn fuel_stops_runaway_loops() {
        let (p, ext) = machine_for("void spin(bool b) { while (b) { } }", ExternTable::new());
        let mut m = Machine::new(&p, ext);
        m.set_fuel(10_000);
        let out = m.run("spin", vec![Value::Bool(true)]);
        assert_eq!(out.result, Err(EvalError::OutOfFuel));
        assert_eq!(out.fuel_used, 10_000, "exhaustion consumes the budget");
    }

    #[test]
    fn fuel_accounting_is_deterministic() {
        let src = "int fib(int n) {
                     if (n <= 1) { return n; }
                     return fib(n - 1) + fib(n - 2);
                   }";
        let used: Vec<u64> = (0..2)
            .map(|_| {
                let (p, ext) = machine_for(src, ExternTable::new());
                let mut m = Machine::new(&p, ext);
                let out = m.run("fib", vec![Value::Int(10)]);
                assert!(out.result.is_ok());
                out.fuel_used
            })
            .collect();
        assert!(used[0] > 0);
        assert_eq!(used[0], used[1]);
    }

    #[test]
    fn deep_recursion_is_a_structured_fault() {
        // Regression: unbounded Vault recursion used to exhaust the Rust
        // stack and abort the process; now it is a reportable outcome.
        let (p, ext) = machine_for(
            "int down(int n) {
               if (n <= 0) { return 0; }
               return down(n - 1);
             }",
            ExternTable::new(),
        );
        let mut m = Machine::new(&p, ext);
        assert_eq!(
            m.run("down", vec![Value::Int(1_000_000)]).result,
            Err(EvalError::StackOverflow)
        );
    }

    #[test]
    fn increment_wraps_instead_of_panicking() {
        // Regression: `n + 1` overflowed (debug abort) on i64::MAX.
        let (p, ext) = machine_for("int f(int n) { n++; return n; }", ExternTable::new());
        let mut m = Machine::new(&p, ext);
        assert_eq!(
            m.run("f", vec![Value::Int(i64::MAX)]).result,
            Ok(Value::Int(i64::MIN))
        );
    }

    #[test]
    fn decrement_wraps_instead_of_panicking() {
        let (p, ext) = machine_for("int f(int n) { n--; return n; }", ExternTable::new());
        let mut m = Machine::new(&p, ext);
        assert_eq!(
            m.run("f", vec![Value::Int(i64::MIN)]).result,
            Ok(Value::Int(i64::MAX))
        );
    }

    #[test]
    fn negation_wraps_instead_of_panicking() {
        // Regression: `-n` overflowed (debug abort) on i64::MIN.
        let (p, ext) = machine_for("int f(int n) { return -n; }", ExternTable::new());
        let mut m = Machine::new(&p, ext);
        assert_eq!(
            m.run("f", vec![Value::Int(i64::MIN)]).result,
            Ok(Value::Int(i64::MIN))
        );
    }

    #[test]
    fn short_circuit_logic() {
        let (p, ext) = machine_for(
            "bool f(bool a) { return a || boom(); }
             bool boom();",
            ExternTable::new(),
        );
        let mut m = Machine::new(&p, ext);
        // `boom` is an unknown extern, but short-circuiting avoids it.
        assert_eq!(
            m.run("f", vec![Value::Bool(true)]).result,
            Ok(Value::Bool(true))
        );
        assert_eq!(
            m.run("f", vec![Value::Bool(false)]).result,
            Err(EvalError::UnknownFunction("boom".into()))
        );
    }

    #[test]
    fn division_by_zero_faults() {
        let (p, ext) = machine_for("int f(int a) { return a / 0; }", ExternTable::new());
        let mut m = Machine::new(&p, ext);
        assert_eq!(
            m.run("f", vec![Value::Int(5)]).result,
            Err(EvalError::DivideByZero)
        );
    }
}
