//! Model-based property tests for the kernel's synchronization objects:
//! random operation sequences against simple reference models.

// Requires the real `proptest` crate, unavailable in the offline build
// environment; enable the `proptests` feature after vendoring it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use vault_kernel::{Irql, Kernel, Violation};

#[derive(Clone, Copy, Debug)]
enum LockOp {
    Acquire,
    Release,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Spin locks against a boolean model: the kernel flags exactly the
    /// off-model operations and tracks IRQL like a stack of one.
    #[test]
    fn spinlock_matches_reference_model(
        ops in proptest::collection::vec(
            prop_oneof![Just(LockOp::Acquire), Just(LockOp::Release)],
            1..40,
        )
    ) {
        let mut k = Kernel::new(1);
        let lock = k.create_spinlock();
        let mut model_held = false;
        let mut expected_violations = 0usize;
        let mut saved = Irql::Passive;
        for op in ops {
            match op {
                LockOp::Acquire => {
                    if model_held {
                        expected_violations += 1;
                    }
                    saved = k.irql();
                    let prev = k.acquire_spinlock(lock);
                    if !model_held {
                        prop_assert_eq!(prev, saved);
                    }
                    model_held = true;
                    prop_assert_eq!(k.irql(), Irql::Dispatch);
                }
                LockOp::Release => {
                    if !model_held {
                        expected_violations += 1;
                        k.release_spinlock(lock, saved);
                    } else {
                        k.release_spinlock(lock, saved);
                        model_held = false;
                        prop_assert_eq!(k.irql(), saved);
                    }
                }
            }
        }
        k.audit_locks();
        if model_held {
            expected_violations += 1; // leak at audit
        }
        prop_assert_eq!(
            k.violations().len(),
            expected_violations,
            "{:?}",
            k.violations()
        );
    }

    /// Events: waiting with no pending work that can signal is always a
    /// deadlock; signal-then-wait never is.
    #[test]
    fn event_wait_discipline(signal_first in any::<bool>()) {
        let mut k = Kernel::new(2);
        let e = k.create_event();
        if signal_first {
            k.signal_event(e);
            k.wait_event(e);
            prop_assert!(k.violations().is_empty());
        } else {
            k.wait_event(e);
            prop_assert!(k
                .violations()
                .iter()
                .any(|v| matches!(v, Violation::Deadlock(_))));
        }
    }

    /// Paged memory: below DISPATCH_LEVEL the page fault is always
    /// serviced and the value survives; at DISPATCH_LEVEL a paged-out
    /// access always deadlocks, a resident one never does.
    #[test]
    fn paged_memory_model(value in any::<i64>(), paged_out in any::<bool>()) {
        let mut k = Kernel::new(3);
        let cell = k.alloc_paged(value);
        if paged_out {
            k.page_out(cell);
        }
        // Passive access always fine.
        prop_assert_eq!(k.read_paged(cell), value);
        prop_assert!(k.violations().is_empty());
        // Raise to dispatch via a lock.
        let lock = k.create_spinlock();
        let prev = k.acquire_spinlock(lock);
        if paged_out {
            k.page_out(cell);
            let _ = k.read_paged(cell);
            let deadlocked = k
                .violations()
                .iter()
                .any(|v| matches!(v, Violation::PagedAccessAtHighIrql { .. }));
            prop_assert!(deadlocked);
        } else {
            let _ = k.read_paged(cell);
            prop_assert!(k.violations().is_empty());
        }
        k.release_spinlock(lock, prev);
    }
}
