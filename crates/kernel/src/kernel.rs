//! The simulated Windows 2000 kernel I/O substrate.
//!
//! A deterministic, single-threaded model of the kernel services the
//! paper's case study (§4) checks statically: IRPs with the ownership
//! protocol, driver stacks, events, spin locks with IRQL raising, paged
//! memory, and deferred (asynchronous) completion. Every protocol
//! violation the Vault checker rejects at compile time is detected here at
//! run time and recorded as a [`Violation`] — this is the differential
//! oracle for experiment E12.

use crate::irql::Irql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// Identifies a device object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DeviceId(pub usize);

/// Identifies an I/O request packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct IrpId(pub usize);

/// Identifies a kernel event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventId(pub usize);

/// Identifies a spin lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpinLockId(pub usize);

/// Identifies a cell of paged pool memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PagedId(pub usize);

/// IRP major function codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Major {
    /// Open a handle.
    Create,
    /// Close a handle.
    Close,
    /// Read from the device.
    Read,
    /// Write to the device.
    Write,
    /// Device-specific control.
    DeviceControl,
    /// Plug-and-play (start/stop/remove).
    Pnp,
    /// Power management.
    Power,
}

/// Request parameters carried by an IRP.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IrpParams {
    /// Byte offset (sector-granular for the floppy).
    pub offset: i64,
    /// Transfer length in sectors.
    pub length: usize,
    /// IOCTL code for `DeviceControl`.
    pub ioctl: u32,
    /// Data for writes.
    pub data: Vec<u8>,
}

/// Completion status of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NtStatus {
    /// Success.
    Success,
    /// Queued for later completion.
    Pending,
    /// Generic failure.
    Unsuccessful,
    /// Bad request parameters.
    InvalidParameter,
    /// No disk in the drive.
    NoMedia,
}

/// Who currently owns an IRP (paper §4.1's ownership model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Owner {
    /// The kernel (before dispatch or after completion).
    Kernel,
    /// The driver of this device.
    Device(DeviceId),
}

/// What a dispatch routine reports back to the I/O manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverStatus {
    /// The IRP was completed.
    Complete,
    /// The IRP was marked pending and queued by the driver.
    Pending,
    /// The IRP was passed to the next lower driver.
    PassedDown,
}

/// What a completion routine reports (paper §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompletionDisposition {
    /// The driver reclaims ownership of the IRP.
    MoreProcessingRequired,
    /// Completion continues up the stack.
    Finished,
}

/// A runtime protocol violation — the dynamic analogue of a checker
/// diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// An IRP was touched by a driver that does not own it (V301).
    IrpAccessWithoutOwnership {
        /// The request.
        irp: IrpId,
        /// The trespasser.
        by: DeviceId,
    },
    /// An IRP was completed twice (V301/V303 family).
    IrpDoubleComplete(IrpId),
    /// A dispatch routine returned without completing, passing, or
    /// pending its IRP (V304 — the lost-IRP leak).
    IrpLost(IrpId),
    /// A spin lock was still held at the end of the workload (V304).
    SpinLockLeaked(SpinLockId),
    /// A held spin lock was acquired again (V303).
    SpinLockDoubleAcquire(SpinLockId),
    /// A free spin lock was released (V301).
    SpinLockReleaseUnheld(SpinLockId),
    /// Paged memory was touched at DISPATCH_LEVEL or above while paged
    /// out: the kernel deadlocks (V308, paper §4.4).
    PagedAccessAtHighIrql {
        /// The level at the access.
        irql: Irql,
    },
    /// A kernel service was called above its maximum IRQL (V302/V308).
    IrqlTooHigh {
        /// The service.
        service: &'static str,
        /// The level it was called at.
        actual: Irql,
    },
    /// Waiting would block forever (no pending deferred work can signal
    /// the event) — e.g. Fig. 7 with the wait and signal mismatched.
    Deadlock(&'static str),
    /// A device-internal protocol was broken (e.g. floppy motor).
    DeviceProtocol(&'static str),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::IrpAccessWithoutOwnership { irp, by } => {
                write!(f, "device {by:?} accessed {irp:?} without owning it")
            }
            Violation::IrpDoubleComplete(i) => write!(f, "{i:?} completed twice"),
            Violation::IrpLost(i) => write!(f, "{i:?} neither completed, passed, nor pended"),
            Violation::SpinLockLeaked(l) => write!(f, "{l:?} still held at workload end"),
            Violation::SpinLockDoubleAcquire(l) => write!(f, "{l:?} acquired while held"),
            Violation::SpinLockReleaseUnheld(l) => write!(f, "{l:?} released while free"),
            Violation::PagedAccessAtHighIrql { irql } => {
                write!(f, "paged memory touched at {irql} while paged out")
            }
            Violation::IrqlTooHigh { service, actual } => {
                write!(f, "{service} called at {actual}")
            }
            Violation::Deadlock(why) => write!(f, "deadlock: {why}"),
            Violation::DeviceProtocol(why) => write!(f, "device protocol: {why}"),
        }
    }
}

/// The category a violation belongs to, for the E12 detection matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// IRP ownership (access, double complete, lost).
    IrpOwnership,
    /// Spin lock discipline.
    SpinLock,
    /// IRQL / paged memory.
    IrqlPaging,
    /// Event / wait discipline.
    EventWait,
    /// Device-internal protocol (motor).
    Device,
}

impl Violation {
    /// Classify into a detection-matrix category.
    pub fn kind(&self) -> ViolationKind {
        match self {
            Violation::IrpAccessWithoutOwnership { .. }
            | Violation::IrpDoubleComplete(_)
            | Violation::IrpLost(_) => ViolationKind::IrpOwnership,
            Violation::SpinLockLeaked(_)
            | Violation::SpinLockDoubleAcquire(_)
            | Violation::SpinLockReleaseUnheld(_) => ViolationKind::SpinLock,
            Violation::PagedAccessAtHighIrql { .. } | Violation::IrqlTooHigh { .. } => {
                ViolationKind::IrqlPaging
            }
            Violation::Deadlock(_) => ViolationKind::EventWait,
            Violation::DeviceProtocol(_) => ViolationKind::Device,
        }
    }
}

/// A driver's entry points. Drivers are registered per device object; the
/// kernel calls `dispatch` when an IRP reaches the device. Completion
/// routines are registered per IRP as closures (mirroring the paper's
/// Fig. 7, where the routine is a nested function capturing the event).
pub trait Driver {
    /// Driver name (diagnostics).
    fn name(&self) -> &str;
    /// Handle an IRP the device now owns.
    fn dispatch(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus;
}

/// A completion routine: invoked when a lower driver completes the IRP.
pub type CompletionRoutine = Box<dyn FnMut(&mut Kernel, IrpId) -> CompletionDisposition>;

struct Device {
    driver: Option<Box<dyn Driver>>,
    lower: Option<DeviceId>,
    name: String,
}

struct Irp {
    major: Major,
    params: IrpParams,
    owner: Owner,
    completed: bool,
    pending: bool,
    status: Option<NtStatus>,
    information: i64,
    completion: Option<(DeviceId, CompletionRoutine)>,
}

struct Event {
    signaled: bool,
}

struct Lock {
    held: bool,
    saved_irql: Irql,
}

struct PagedCell {
    value: i64,
    resident: bool,
}

struct Deferred {
    irp: IrpId,
    by: DeviceId,
    status: NtStatus,
    ticks: u32,
}

/// Aggregate counters for the benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// IRPs submitted.
    pub submitted: u64,
    /// IRPs fully completed back to the kernel.
    pub completed: u64,
    /// Deferred completions processed.
    pub dpcs: u64,
}

/// The simulated kernel.
pub struct Kernel {
    irql: Irql,
    devices: Vec<Device>,
    irps: Vec<Irp>,
    events: Vec<Event>,
    locks: Vec<Lock>,
    paged: Vec<PagedCell>,
    deferred: VecDeque<Deferred>,
    violations: Vec<Violation>,
    stats: KernelStats,
    rng: StdRng,
}

impl Kernel {
    /// A fresh kernel at PASSIVE_LEVEL.
    pub fn new(seed: u64) -> Self {
        Kernel {
            irql: Irql::Passive,
            devices: Vec::new(),
            irps: Vec::new(),
            events: Vec::new(),
            locks: Vec::new(),
            paged: Vec::new(),
            deferred: VecDeque::new(),
            violations: Vec::new(),
            stats: KernelStats::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn violate(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The current interrupt level.
    pub fn irql(&self) -> Irql {
        self.irql
    }

    // ------------------------------------------------------------------
    // Devices and driver stacks
    // ------------------------------------------------------------------

    /// `IoCreateDevice`: register a device object for a driver.
    pub fn create_device(&mut self, name: &str, driver: Box<dyn Driver>) -> DeviceId {
        self.devices.push(Device {
            driver: Some(driver),
            lower: None,
            name: name.to_string(),
        });
        DeviceId(self.devices.len() - 1)
    }

    /// `IoAttachDeviceToDeviceStack`: `upper` sits on top of `lower`.
    pub fn attach(&mut self, upper: DeviceId, lower: DeviceId) {
        self.devices[upper.0].lower = Some(lower);
    }

    /// The device below `dev` in its stack.
    pub fn lower_device(&self, dev: DeviceId) -> Option<DeviceId> {
        self.devices[dev.0].lower
    }

    /// Device name (diagnostics).
    pub fn device_name(&self, dev: DeviceId) -> &str {
        &self.devices[dev.0].name
    }

    fn with_driver<R>(
        &mut self,
        dev: DeviceId,
        f: impl FnOnce(&mut Kernel, &mut dyn Driver) -> R,
    ) -> R {
        let mut driver = self.devices[dev.0]
            .driver
            .take()
            .expect("driver re-entered its own device");
        let r = f(self, driver.as_mut());
        self.devices[dev.0].driver = Some(driver);
        r
    }

    // ------------------------------------------------------------------
    // IRPs (paper §4.1)
    // ------------------------------------------------------------------

    /// Allocate and dispatch an IRP to a device stack's top device.
    /// Returns the IRP id and the dispatch status.
    pub fn submit(
        &mut self,
        dev: DeviceId,
        major: Major,
        params: IrpParams,
    ) -> (IrpId, DriverStatus) {
        self.irps.push(Irp {
            major,
            params,
            owner: Owner::Device(dev),
            completed: false,
            pending: false,
            status: None,
            information: 0,
            completion: None,
        });
        let irp = IrpId(self.irps.len() - 1);
        self.stats.submitted += 1;
        let status = self.with_driver(dev, |k, d| d.dispatch(k, dev, irp));
        // The dispatch routine's word must match what happened to the IRP
        // — the `DSTATUS<I>` discipline.
        let rec = &self.irps[irp.0];
        let consistent = match status {
            DriverStatus::Complete => rec.completed,
            DriverStatus::Pending => rec.pending || rec.completed,
            DriverStatus::PassedDown => rec.owner != Owner::Device(dev) || rec.completed,
        };
        if !consistent {
            self.violate(Violation::IrpLost(irp));
        }
        (irp, status)
    }

    fn check_owner(&mut self, dev: DeviceId, irp: IrpId) -> bool {
        if self.irps[irp.0].owner == Owner::Device(dev) && !self.irps[irp.0].completed {
            true
        } else {
            self.violate(Violation::IrpAccessWithoutOwnership { irp, by: dev });
            false
        }
    }

    /// Read the request's major function and parameters (requires
    /// ownership — `IoGetCurrentIrpStackLocation`).
    pub fn irp_params(&mut self, dev: DeviceId, irp: IrpId) -> (Major, IrpParams) {
        self.check_owner(dev, irp);
        (self.irps[irp.0].major, self.irps[irp.0].params.clone())
    }

    /// Store the result information (requires ownership).
    pub fn set_information(&mut self, dev: DeviceId, irp: IrpId, info: i64) {
        if self.check_owner(dev, irp) {
            self.irps[irp.0].information = info;
        }
    }

    /// `IoMarkIrpPending` (ownership retained).
    pub fn mark_pending(&mut self, dev: DeviceId, irp: IrpId) {
        if self.check_owner(dev, irp) {
            self.irps[irp.0].pending = true;
        }
    }

    /// `IoSetCompletionRoutine`: when a lower driver completes the IRP,
    /// `routine` runs; returning
    /// [`CompletionDisposition::MoreProcessingRequired`] hands ownership
    /// back to `dev` (paper §4.3).
    pub fn set_completion_routine(
        &mut self,
        dev: DeviceId,
        irp: IrpId,
        routine: CompletionRoutine,
    ) {
        if self.check_owner(dev, irp) {
            self.irps[irp.0].completion = Some((dev, routine));
        }
    }

    /// `IoCallDriver`: pass ownership down the stack and dispatch.
    pub fn call_driver(&mut self, from: DeviceId, target: DeviceId, irp: IrpId) -> DriverStatus {
        if !self.check_owner(from, irp) {
            return DriverStatus::Complete;
        }
        self.irps[irp.0].owner = Owner::Device(target);
        let status = self.with_driver(target, |k, d| d.dispatch(k, target, irp));
        let rec = &self.irps[irp.0];
        let consistent = match status {
            DriverStatus::Complete => rec.completed || rec.owner != Owner::Device(target),
            DriverStatus::Pending => true,
            DriverStatus::PassedDown => rec.owner != Owner::Device(target) || rec.completed,
        };
        if !consistent {
            self.violate(Violation::IrpLost(irp));
        }
        status
    }

    /// `IoCompleteRequest`: give the IRP back to the kernel, running any
    /// registered completion routine (which may reclaim ownership).
    pub fn complete_request(&mut self, dev: DeviceId, irp: IrpId, status: NtStatus) {
        if self.irps[irp.0].completed {
            self.violate(Violation::IrpDoubleComplete(irp));
            return;
        }
        if self.irps[irp.0].owner != Owner::Device(dev) {
            self.violate(Violation::IrpAccessWithoutOwnership { irp, by: dev });
            return;
        }
        self.irps[irp.0].status = Some(status);
        self.irps[irp.0].owner = Owner::Kernel;
        self.irps[irp.0].completed = true;
        if let Some((registrant, mut routine)) = self.irps[irp.0].completion.take() {
            let disposition = routine(self, irp);
            if disposition == CompletionDisposition::MoreProcessingRequired {
                // The registrant reclaims ownership (paper §4.3).
                self.irps[irp.0].owner = Owner::Device(registrant);
                self.irps[irp.0].completed = false;
                return;
            }
        }
        self.stats.completed += 1;
    }

    /// Final status of a completed IRP.
    pub fn irp_status(&self, irp: IrpId) -> Option<NtStatus> {
        self.irps[irp.0].status
    }

    /// Result information of an IRP.
    pub fn irp_information(&self, irp: IrpId) -> i64 {
        self.irps[irp.0].information
    }

    /// Whether the IRP has been fully completed to the kernel.
    pub fn irp_completed(&self, irp: IrpId) -> bool {
        self.irps[irp.0].completed
    }

    /// Queue a deferred completion: `by` (a lower driver simulating
    /// asynchronous hardware) will complete `irp` after `ticks` DPCs.
    pub fn defer_completion(&mut self, by: DeviceId, irp: IrpId, status: NtStatus, ticks: u32) {
        self.deferred.push_back(Deferred {
            irp,
            by,
            status,
            ticks,
        });
    }

    /// Run one deferred tick; true if any deferred work remains existed.
    fn run_one_deferred(&mut self) -> bool {
        let Some(mut d) = self.deferred.pop_front() else {
            return false;
        };
        self.stats.dpcs += 1;
        if d.ticks > 0 {
            d.ticks -= 1;
            self.deferred.push_back(d);
            return true;
        }
        // Deferred completions run at DISPATCH_LEVEL, like real DPCs.
        let saved = self.irql;
        self.irql = Irql::Dispatch;
        self.complete_request(d.by, d.irp, d.status);
        self.irql = saved;
        true
    }

    /// Drain all deferred work (end-of-workload).
    pub fn drain_deferred(&mut self) {
        let mut guard = 0;
        while self.run_one_deferred() {
            guard += 1;
            if guard > 100_000 {
                self.violate(Violation::Deadlock("deferred queue never drains"));
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Events (paper §4.2)
    // ------------------------------------------------------------------

    /// `KeInitializeEvent`.
    pub fn create_event(&mut self) -> EventId {
        self.events.push(Event { signaled: false });
        EventId(self.events.len() - 1)
    }

    /// `KeSignalEvent`.
    pub fn signal_event(&mut self, event: EventId) {
        self.events[event.0].signaled = true;
    }

    /// `KeWaitForEvent`: runs deferred work until the event is signaled.
    /// Waiting is only legal below DISPATCH_LEVEL.
    pub fn wait_event(&mut self, event: EventId) {
        if self.irql >= Irql::Dispatch {
            self.violate(Violation::IrqlTooHigh {
                service: "KeWaitForEvent",
                actual: self.irql,
            });
        }
        let mut guard = 0;
        while !self.events[event.0].signaled {
            if !self.run_one_deferred() {
                self.violate(Violation::Deadlock(
                    "KeWaitForEvent with nothing left to signal the event",
                ));
                return;
            }
            guard += 1;
            if guard > 100_000 {
                self.violate(Violation::Deadlock("event never signaled"));
                return;
            }
        }
        self.events[event.0].signaled = false;
    }

    // ------------------------------------------------------------------
    // Spin locks (paper §4.2 + §4.4)
    // ------------------------------------------------------------------

    /// `KeInitializeSpinLock`.
    pub fn create_spinlock(&mut self) -> SpinLockId {
        self.locks.push(Lock {
            held: false,
            saved_irql: Irql::Passive,
        });
        SpinLockId(self.locks.len() - 1)
    }

    /// `KeAcquireSpinLock`: raises to DISPATCH_LEVEL, returns the previous
    /// level.
    pub fn acquire_spinlock(&mut self, lock: SpinLockId) -> Irql {
        if self.irql > Irql::Dispatch {
            self.violate(Violation::IrqlTooHigh {
                service: "KeAcquireSpinLock",
                actual: self.irql,
            });
        }
        if self.locks[lock.0].held {
            self.violate(Violation::SpinLockDoubleAcquire(lock));
        }
        let prev = self.irql;
        self.locks[lock.0].held = true;
        self.locks[lock.0].saved_irql = prev;
        self.irql = Irql::Dispatch;
        prev
    }

    /// `KeReleaseSpinLock`: restores the recorded level.
    pub fn release_spinlock(&mut self, lock: SpinLockId, prev: Irql) {
        if !self.locks[lock.0].held {
            self.violate(Violation::SpinLockReleaseUnheld(lock));
            return;
        }
        self.locks[lock.0].held = false;
        self.irql = prev;
    }

    /// End-of-workload audit: IRPs never completed back to the kernel are
    /// lost requests (the dynamic analogue of the `V304` leak).
    pub fn audit_irps(&mut self) {
        for i in 0..self.irps.len() {
            if !self.irps[i].completed {
                self.violate(Violation::IrpLost(IrpId(i)));
            }
        }
    }

    /// End-of-workload audit: locks still held are leaks.
    pub fn audit_locks(&mut self) {
        for i in 0..self.locks.len() {
            if self.locks[i].held {
                self.violate(Violation::SpinLockLeaked(SpinLockId(i)));
            }
        }
    }

    // ------------------------------------------------------------------
    // Paged memory (paper §4.4)
    // ------------------------------------------------------------------

    /// Allocate a cell of paged pool.
    pub fn alloc_paged(&mut self, value: i64) -> PagedId {
        self.paged.push(PagedCell {
            value,
            resident: true,
        });
        PagedId(self.paged.len() - 1)
    }

    /// Simulate memory pressure: page the cell out.
    pub fn page_out(&mut self, cell: PagedId) {
        self.paged[cell.0].resident = false;
    }

    /// Randomly page cells in or out (workload noise, seeded).
    pub fn memory_pressure(&mut self) {
        for i in 0..self.paged.len() {
            self.paged[i].resident = self.rng.gen_bool(0.5);
        }
    }

    fn touch_paged(&mut self, cell: PagedId) -> bool {
        if !self.paged[cell.0].resident {
            if self.irql >= Irql::Dispatch {
                // The page fault cannot be serviced: the real kernel
                // deadlocks here (paper §4.4).
                let irql = self.irql;
                self.violate(Violation::PagedAccessAtHighIrql { irql });
                return false;
            }
            // Page fault serviced.
            self.paged[cell.0].resident = true;
        }
        true
    }

    /// Read paged memory.
    pub fn read_paged(&mut self, cell: PagedId) -> i64 {
        self.touch_paged(cell);
        self.paged[cell.0].value
    }

    /// Write paged memory.
    pub fn write_paged(&mut self, cell: PagedId, value: i64) {
        if self.touch_paged(cell) {
            self.paged[cell.0].value = value;
        }
    }

    /// `KeSetPriorityThread` — PASSIVE_LEVEL only.
    pub fn set_priority_thread(&mut self, _priority: i32) {
        if self.irql != Irql::Passive {
            self.violate(Violation::IrqlTooHigh {
                service: "KeSetPriorityThread",
                actual: self.irql,
            });
        }
    }

    /// Record a device-internal protocol violation (used by device
    /// models such as the floppy motor).
    pub fn device_protocol_violation(&mut self, why: &'static str) {
        self.violate(Violation::DeviceProtocol(why));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A driver that completes everything immediately.
    struct SinkDriver;
    impl Driver for SinkDriver {
        fn name(&self) -> &str {
            "sink"
        }
        fn dispatch(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
            k.set_information(dev, irp, 1);
            k.complete_request(dev, irp, NtStatus::Success);
            DriverStatus::Complete
        }
    }

    /// A driver that loses every IRP.
    struct LossyDriver;
    impl Driver for LossyDriver {
        fn name(&self) -> &str {
            "lossy"
        }
        fn dispatch(&mut self, _k: &mut Kernel, _dev: DeviceId, _irp: IrpId) -> DriverStatus {
            DriverStatus::Complete // lies: nothing was completed
        }
    }

    #[test]
    fn complete_request_roundtrip() {
        let mut k = Kernel::new(1);
        let dev = k.create_device("sink", Box::new(SinkDriver));
        let (irp, status) = k.submit(dev, Major::Create, IrpParams::default());
        assert_eq!(status, DriverStatus::Complete);
        assert!(k.irp_completed(irp));
        assert_eq!(k.irp_status(irp), Some(NtStatus::Success));
        assert!(k.violations().is_empty());
        assert_eq!(k.stats().completed, 1);
    }

    #[test]
    fn lost_irp_detected() {
        let mut k = Kernel::new(1);
        let dev = k.create_device("lossy", Box::new(LossyDriver));
        let (irp, _) = k.submit(dev, Major::Read, IrpParams::default());
        assert_eq!(k.violations(), &[Violation::IrpLost(irp)]);
    }

    #[test]
    fn double_complete_detected() {
        struct DoubleDriver;
        impl Driver for DoubleDriver {
            fn name(&self) -> &str {
                "double"
            }
            fn dispatch(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
                k.complete_request(dev, irp, NtStatus::Success);
                k.complete_request(dev, irp, NtStatus::Success);
                DriverStatus::Complete
            }
        }
        let mut k = Kernel::new(1);
        let dev = k.create_device("double", Box::new(DoubleDriver));
        let (irp, _) = k.submit(dev, Major::Close, IrpParams::default());
        assert!(k.violations().contains(&Violation::IrpDoubleComplete(irp)));
    }

    #[test]
    fn access_after_pass_down_detected() {
        struct UpperDriver;
        impl Driver for UpperDriver {
            fn name(&self) -> &str {
                "upper"
            }
            fn dispatch(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
                let lower = k.lower_device(dev).expect("attached");
                k.call_driver(dev, lower, irp);
                // BUG: we no longer own the IRP.
                k.set_information(dev, irp, 99);
                DriverStatus::PassedDown
            }
        }
        let mut k = Kernel::new(1);
        let lower = k.create_device("sink", Box::new(SinkDriver));
        let upper = k.create_device("upper", Box::new(UpperDriver));
        k.attach(upper, lower);
        let (irp, _) = k.submit(upper, Major::Power, IrpParams::default());
        assert!(k.violations().iter().any(|v| matches!(
            v,
            Violation::IrpAccessWithoutOwnership { irp: i, .. } if *i == irp
        )));
    }

    #[test]
    fn spinlock_discipline() {
        let mut k = Kernel::new(1);
        let lock = k.create_spinlock();
        let prev = k.acquire_spinlock(lock);
        assert_eq!(prev, Irql::Passive);
        assert_eq!(k.irql(), Irql::Dispatch);
        k.release_spinlock(lock, prev);
        assert_eq!(k.irql(), Irql::Passive);
        assert!(k.violations().is_empty());

        // Double acquire.
        k.acquire_spinlock(lock);
        k.acquire_spinlock(lock);
        assert!(k
            .violations()
            .contains(&Violation::SpinLockDoubleAcquire(lock)));
        k.release_spinlock(lock, Irql::Passive);
        // Release when free.
        k.release_spinlock(lock, Irql::Passive);
        assert!(k
            .violations()
            .contains(&Violation::SpinLockReleaseUnheld(lock)));
    }

    #[test]
    fn lock_leak_audited() {
        let mut k = Kernel::new(1);
        let lock = k.create_spinlock();
        k.acquire_spinlock(lock);
        k.audit_locks();
        assert!(k.violations().contains(&Violation::SpinLockLeaked(lock)));
    }

    #[test]
    fn paged_access_at_dispatch_deadlocks() {
        let mut k = Kernel::new(1);
        let cell = k.alloc_paged(7);
        // Resident + passive: fine.
        assert_eq!(k.read_paged(cell), 7);
        // Paged out + dispatch: kernel deadlock.
        let lock = k.create_spinlock();
        let prev = k.acquire_spinlock(lock);
        k.page_out(cell);
        k.read_paged(cell);
        assert!(k.violations().iter().any(|v| matches!(
            v,
            Violation::PagedAccessAtHighIrql {
                irql: Irql::Dispatch
            }
        )));
        k.release_spinlock(lock, prev);
        // Paged out + passive: the fault is serviced.
        k.page_out(cell);
        k.write_paged(cell, 9);
        assert_eq!(k.read_paged(cell), 9);
    }

    #[test]
    fn wait_without_signal_deadlocks() {
        let mut k = Kernel::new(1);
        let e = k.create_event();
        k.wait_event(e);
        assert!(k
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::Deadlock(_))));
    }

    #[test]
    fn deferred_completion_signals_progress() {
        struct AsyncLower;
        impl Driver for AsyncLower {
            fn name(&self) -> &str {
                "async-lower"
            }
            fn dispatch(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
                k.mark_pending(dev, irp);
                k.defer_completion(dev, irp, NtStatus::Success, 3);
                DriverStatus::Pending
            }
        }
        let mut k = Kernel::new(1);
        let dev = k.create_device("async", Box::new(AsyncLower));
        let (irp, status) = k.submit(dev, Major::Pnp, IrpParams::default());
        assert_eq!(status, DriverStatus::Pending);
        assert!(!k.irp_completed(irp));
        k.drain_deferred();
        assert!(k.irp_completed(irp));
        assert!(k.violations().is_empty());
        assert!(k.stats().dpcs >= 3);
    }

    #[test]
    fn set_priority_requires_passive() {
        let mut k = Kernel::new(1);
        k.set_priority_thread(3);
        assert!(k.violations().is_empty());
        let lock = k.create_spinlock();
        let prev = k.acquire_spinlock(lock);
        k.set_priority_thread(3);
        k.release_spinlock(lock, prev);
        assert!(k.violations().iter().any(|v| matches!(
            v,
            Violation::IrqlTooHigh {
                service: "KeSetPriorityThread",
                ..
            }
        )));
    }
}
