//! End-to-end driver workloads for experiment E12.
//!
//! A workload boots a floppy stack, issues a seeded mix of requests
//! (create / read / write / ioctl / PnP / power) with memory pressure on
//! the paged configuration, then audits the kernel. The clean driver must
//! produce zero violations; each seeded-bug variant must produce at least
//! one violation of the matching category — the same matrix the static
//! checker produces on the corpus mutants.

use crate::floppy::{ioctl, FloppyBugs, FloppyDriver, BYTES_PER_SECTOR};
use crate::kernel::{IrpParams, Kernel, KernelStats, Major, NtStatus, Violation, ViolationKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of I/O operations to issue.
    pub ops: usize,
    /// RNG seed (fully deterministic per seed).
    pub seed: u64,
    /// Which driver bugs to enable.
    pub bugs: FloppyBugs,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            ops: 100,
            seed: 0xF10,
            bugs: FloppyBugs::none(),
        }
    }
}

/// What happened.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    /// Requests that completed successfully.
    pub succeeded: u64,
    /// Requests that completed with an error status.
    pub failed: u64,
    /// Every violation the kernel observed.
    pub violations: Vec<Violation>,
    /// The distinct violation categories.
    pub kinds: BTreeSet<ViolationKind>,
    /// Kernel counters.
    pub stats: KernelStats,
}

impl WorkloadReport {
    /// Whether the run was protocol-clean.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run a floppy workload.
pub fn run_floppy_workload(cfg: &WorkloadConfig) -> WorkloadReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut k = Kernel::new(cfg.seed ^ 0x5EED);
    let dev = FloppyDriver::install(&mut k, cfg.bugs);
    let mut issued = Vec::new();

    let (open, _) = k.submit(dev, Major::Create, IrpParams::default());
    issued.push(open);

    // PnP start-device first, like the real boot path.
    let (pnp, _) = k.submit(dev, Major::Pnp, IrpParams::default());
    issued.push(pnp);

    let disk_sectors = crate::floppy::CYLINDERS * crate::floppy::SECTORS_PER_TRACK;
    for i in 0..cfg.ops {
        match rng.gen_range(0..10u8) {
            0..=3 => {
                // Read a random extent; occasionally an invalid one (a
                // driver must complete bad requests with an error).
                let invalid = rng.gen_bool(0.1);
                let offset = if invalid {
                    -1
                } else {
                    rng.gen_range(0..disk_sectors as i64 - 4)
                };
                let length = rng.gen_range(1..4usize);
                let (irp, _) = k.submit(
                    dev,
                    Major::Read,
                    IrpParams {
                        offset,
                        length,
                        ..IrpParams::default()
                    },
                );
                issued.push(irp);
            }
            4..=6 => {
                let offset = rng.gen_range(0..disk_sectors as i64 - 4);
                let length = rng.gen_range(1..4usize);
                let (irp, _) = k.submit(
                    dev,
                    Major::Write,
                    IrpParams {
                        offset,
                        length,
                        ioctl: 0,
                        data: vec![i as u8; length * BYTES_PER_SECTOR],
                    },
                );
                issued.push(irp);
            }
            7 => {
                // Known ioctls plus the occasional unsupported code (the
                // driver must fail it exactly once).
                let code = match rng.gen_range(0..6u8) {
                    0 => ioctl::GET_MEDIA_TYPES,
                    1 => ioctl::SET_DATA_RATE,
                    2 => ioctl::FORMAT_TRACKS,
                    3 | 4 => ioctl::CHECK_MEDIA,
                    _ => 0xDEAD,
                };
                let (irp, _) = k.submit(
                    dev,
                    Major::DeviceControl,
                    IrpParams {
                        ioctl: code,
                        length: rng.gen_range(250..1001),
                        ..IrpParams::default()
                    },
                );
                issued.push(irp);
            }
            8 => {
                let (irp, _) = k.submit(dev, Major::Power, IrpParams::default());
                issued.push(irp);
            }
            _ => {
                // Memory pressure, then drain the queue.
                k.memory_pressure();
                let (irp, _) = k.submit(
                    dev,
                    Major::DeviceControl,
                    IrpParams {
                        ioctl: ioctl::PROCESS_QUEUE,
                        ..IrpParams::default()
                    },
                );
                issued.push(irp);
            }
        }
    }

    // Final drain and close.
    let (drain, _) = k.submit(
        dev,
        Major::DeviceControl,
        IrpParams {
            ioctl: ioctl::PROCESS_QUEUE,
            ..IrpParams::default()
        },
    );
    issued.push(drain);
    let (close, _) = k.submit(dev, Major::Close, IrpParams::default());
    issued.push(close);

    k.drain_deferred();
    k.audit_irps();
    k.audit_locks();

    let mut succeeded = 0;
    let mut failed = 0;
    for irp in issued {
        match k.irp_status(irp) {
            Some(NtStatus::Success) => succeeded += 1,
            Some(_) => failed += 1,
            None => {}
        }
    }
    let violations = k.violations().to_vec();
    let kinds = violations.iter().map(Violation::kind).collect();
    WorkloadReport {
        succeeded,
        failed,
        violations,
        kinds,
        stats: k.stats(),
    }
}

/// The E12 detection matrix: each seeded bug with the violation category
/// the run must exhibit.
pub fn detection_matrix() -> Vec<(&'static str, FloppyBugs, ViolationKind)> {
    vec![
        (
            "skip_release",
            FloppyBugs {
                skip_release: true,
                ..FloppyBugs::none()
            },
            ViolationKind::SpinLock,
        ),
        (
            "drop_irp",
            FloppyBugs {
                drop_irp: true,
                ..FloppyBugs::none()
            },
            ViolationKind::IrpOwnership,
        ),
        (
            "use_after_pass",
            FloppyBugs {
                use_after_pass: true,
                ..FloppyBugs::none()
            },
            ViolationKind::IrpOwnership,
        ),
        (
            "no_wait",
            FloppyBugs {
                no_wait: true,
                ..FloppyBugs::none()
            },
            ViolationKind::IrpOwnership,
        ),
        (
            "paged_under_lock",
            FloppyBugs {
                paged_under_lock: true,
                ..FloppyBugs::none()
            },
            ViolationKind::IrqlPaging,
        ),
        (
            "double_complete",
            FloppyBugs {
                double_complete: true,
                ..FloppyBugs::none()
            },
            ViolationKind::IrpOwnership,
        ),
        (
            "motor_not_started",
            FloppyBugs {
                motor_not_started: true,
                ..FloppyBugs::none()
            },
            ViolationKind::Device,
        ),
        (
            "motor_leaked",
            FloppyBugs {
                motor_leaked: true,
                ..FloppyBugs::none()
            },
            ViolationKind::Device,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_workload_has_no_violations() {
        for seed in [1u64, 2, 3] {
            let r = run_floppy_workload(&WorkloadConfig {
                ops: 120,
                seed,
                bugs: FloppyBugs::none(),
            });
            assert!(r.clean(), "seed {seed}: {:?}", r.violations);
            assert!(r.succeeded > 50, "seed {seed}: too few successes");
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let cfg = WorkloadConfig {
            ops: 60,
            seed: 9,
            bugs: FloppyBugs::none(),
        };
        let a = run_floppy_workload(&cfg);
        let b = run_floppy_workload(&cfg);
        assert_eq!(a.succeeded, b.succeeded);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn every_seeded_bug_is_detected_with_matching_category() {
        for (name, bugs, expected_kind) in detection_matrix() {
            let r = run_floppy_workload(&WorkloadConfig {
                ops: 120,
                seed: 11,
                bugs,
            });
            assert!(
                !r.clean(),
                "bug `{name}` produced a clean run — oracle failed"
            );
            assert!(
                r.kinds.contains(&expected_kind),
                "bug `{name}` expected {expected_kind:?}, saw {:?}\n{:?}",
                r.kinds,
                r.violations
            );
        }
    }

    #[test]
    fn detection_matrix_covers_all_bug_flags() {
        // One entry per field of FloppyBugs.
        assert_eq!(detection_matrix().len(), 8);
    }
}
