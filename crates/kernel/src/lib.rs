//! # vault-kernel
//!
//! A deterministic simulation of the Windows 2000 kernel I/O substrate
//! from the case study of *Enforcing High-Level Protocols in Low-Level
//! Software* (paper §4): IRPs with the ownership protocol, driver stacks,
//! events, spin locks with IRQL raising, paged memory, deferred
//! completion, and a complete floppy disk device + driver.
//!
//! Every protocol the Vault checker enforces statically is checked here
//! dynamically and recorded as a [`Violation`]; the workload module runs
//! the detection matrix of experiment E12 (clean driver → zero violations,
//! each seeded bug → the matching violation category).
//!
//! ## Example
//!
//! ```
//! use vault_kernel::workload::{run_floppy_workload, WorkloadConfig};
//!
//! let report = run_floppy_workload(&WorkloadConfig::default());
//! assert!(report.clean());
//! assert!(report.succeeded > 0);
//! ```

#![warn(missing_docs)]

pub mod floppy;
pub mod irql;
pub mod kernel;
pub mod workload;

pub use floppy::{install_stacked, FilterDriver, FloppyBugs, FloppyDisk, FloppyDriver, MotorState};
pub use irql::Irql;
pub use kernel::{
    CompletionDisposition, DeviceId, Driver, DriverStatus, EventId, IrpId, IrpParams, Kernel,
    KernelStats, Major, NtStatus, Owner, PagedId, SpinLockId, Violation, ViolationKind,
};
pub use workload::{detection_matrix, run_floppy_workload, WorkloadConfig, WorkloadReport};
