//! Interrupt request levels (paper §4.4).
//!
//! The processor is always at one of these levels; the level governs which
//! kernel services may be called and whether paged memory is safely
//! accessible. This mirrors the `IRQ_LEVEL` stateset of the Vault kernel
//! interface.

use std::fmt;

/// The interrupt request level of the (simulated) processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Irql {
    /// Normal thread execution.
    Passive = 0,
    /// Asynchronous procedure calls masked.
    Apc = 1,
    /// DPC/dispatcher level — no paging, no waiting.
    Dispatch = 2,
    /// Device interrupt level.
    Dirql = 3,
}

impl Irql {
    /// All levels, ascending.
    pub const ALL: [Irql; 4] = [Irql::Passive, Irql::Apc, Irql::Dispatch, Irql::Dirql];

    /// The paper's stateset token name.
    pub fn token(self) -> &'static str {
        match self {
            Irql::Passive => "PASSIVE_LEVEL",
            Irql::Apc => "APC_LEVEL",
            Irql::Dispatch => "DISPATCH_LEVEL",
            Irql::Dirql => "DIRQL",
        }
    }
}

impl fmt::Display for Irql {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Irql::Passive < Irql::Apc);
        assert!(Irql::Apc < Irql::Dispatch);
        assert!(Irql::Dispatch < Irql::Dirql);
        for w in Irql::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn tokens_match_paper() {
        assert_eq!(Irql::Passive.token(), "PASSIVE_LEVEL");
        assert_eq!(Irql::Dirql.token(), "DIRQL");
        assert_eq!(Irql::Dispatch.to_string(), "DISPATCH_LEVEL");
    }
}
