//! The floppy disk device model and its driver — the executable twin of
//! the Vault driver in `vault-corpus` (paper §4 case study).
//!
//! [`FloppyDriver`] exercises every protocol the static checker enforces:
//! the IRP ownership discipline, spin locks around controller state, the
//! Fig. 7 completion-routine idiom for PnP, paged configuration data, and
//! a motor protocol. [`FloppyBugs`] seeds the same bug classes as the
//! corpus mutants so the detection matrix (experiment E12) can compare the
//! static and dynamic verdicts.

use crate::kernel::{
    CompletionDisposition, DeviceId, Driver, DriverStatus, IrpId, Kernel, Major, NtStatus, PagedId,
    SpinLockId,
};
use std::collections::VecDeque;

/// Floppy geometry: 80 cylinders × 18 sectors × 512 bytes (1.44 MB).
pub const CYLINDERS: usize = 80;
/// Sectors per track.
pub const SECTORS_PER_TRACK: usize = 18;
/// Bytes per sector.
pub const BYTES_PER_SECTOR: usize = 512;

/// Motor protocol states (the `MOTOR` stateset of the Vault driver).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MotorState {
    /// Spun down.
    Off,
    /// Spinning, ready for transfers.
    Spinning,
}

/// The floppy disk mechanism: media, motor, and head position.
pub struct FloppyDisk {
    data: Vec<u8>,
    motor: MotorState,
    cylinder: usize,
    media_present: bool,
    /// Seeks performed (benchmarks).
    pub seeks: u64,
    /// Sectors transferred.
    pub transfers: u64,
}

impl FloppyDisk {
    /// A formatted, empty disk with the motor off.
    pub fn new() -> Self {
        FloppyDisk {
            data: vec![0; CYLINDERS * SECTORS_PER_TRACK * BYTES_PER_SECTOR],
            motor: MotorState::Off,
            cylinder: 0,
            media_present: true,
            seeks: 0,
            transfers: 0,
        }
    }

    /// Whether a disk is in the drive.
    pub fn media_present(&self) -> bool {
        self.media_present
    }

    /// Eject or insert media (workload control).
    pub fn set_media(&mut self, present: bool) {
        self.media_present = present;
    }

    /// Format (zero-fill) one track. Requires the motor spinning and a
    /// seek to the cylinder, like any transfer.
    pub fn format_track(&mut self, cylinder: usize) -> Result<(), &'static str> {
        if self.motor != MotorState::Spinning {
            return Err("format with the motor off");
        }
        if cylinder != self.cylinder {
            return Err("format without seeking to the cylinder");
        }
        if cylinder >= CYLINDERS {
            return Err("format beyond the last cylinder");
        }
        let start = cylinder * SECTORS_PER_TRACK * BYTES_PER_SECTOR;
        let end = start + SECTORS_PER_TRACK * BYTES_PER_SECTOR;
        self.data[start..end].fill(0);
        self.transfers += SECTORS_PER_TRACK as u64;
        Ok(())
    }

    /// Current motor state.
    pub fn motor(&self) -> MotorState {
        self.motor
    }

    /// Spin the motor up. Errors if already spinning (protocol).
    pub fn start_motor(&mut self) -> Result<(), &'static str> {
        if self.motor == MotorState::Spinning {
            return Err("motor started while already spinning");
        }
        self.motor = MotorState::Spinning;
        Ok(())
    }

    /// Spin the motor down. Errors if already off.
    pub fn stop_motor(&mut self) -> Result<(), &'static str> {
        if self.motor == MotorState::Off {
            return Err("motor stopped while already off");
        }
        self.motor = MotorState::Off;
        Ok(())
    }

    /// Move the head. Requires the motor spinning.
    pub fn seek(&mut self, cylinder: usize) -> Result<(), &'static str> {
        if self.motor != MotorState::Spinning {
            return Err("seek with the motor off");
        }
        if cylinder >= CYLINDERS {
            return Err("seek beyond the last cylinder");
        }
        if cylinder != self.cylinder {
            self.cylinder = cylinder;
            self.seeks += 1;
        }
        Ok(())
    }

    fn sector_range(
        &self,
        cylinder: usize,
        sector: usize,
    ) -> Result<std::ops::Range<usize>, &'static str> {
        if cylinder >= CYLINDERS || sector >= SECTORS_PER_TRACK {
            return Err("sector address out of range");
        }
        let start = (cylinder * SECTORS_PER_TRACK + sector) * BYTES_PER_SECTOR;
        Ok(start..start + BYTES_PER_SECTOR)
    }

    /// Read one sector. Requires the motor spinning and the head on the
    /// right cylinder.
    pub fn read_sector(&mut self, cylinder: usize, sector: usize) -> Result<Vec<u8>, &'static str> {
        if self.motor != MotorState::Spinning {
            return Err("read with the motor off");
        }
        if cylinder != self.cylinder {
            return Err("read without seeking to the cylinder");
        }
        let range = self.sector_range(cylinder, sector)?;
        self.transfers += 1;
        Ok(self.data[range].to_vec())
    }

    /// Write one sector (same preconditions as reads).
    pub fn write_sector(
        &mut self,
        cylinder: usize,
        sector: usize,
        bytes: &[u8],
    ) -> Result<(), &'static str> {
        if self.motor != MotorState::Spinning {
            return Err("write with the motor off");
        }
        if cylinder != self.cylinder {
            return Err("write without seeking to the cylinder");
        }
        let range = self.sector_range(cylinder, sector)?;
        let n = bytes.len().min(BYTES_PER_SECTOR);
        self.data[range.start..range.start + n].copy_from_slice(&bytes[..n]);
        self.transfers += 1;
        Ok(())
    }
}

impl Default for FloppyDisk {
    fn default() -> Self {
        Self::new()
    }
}

/// IOCTL codes understood by the driver.
pub mod ioctl {
    /// Query the media/data-rate configuration.
    pub const GET_MEDIA_TYPES: u32 = 1;
    /// Set the data rate (writes the paged configuration).
    pub const SET_DATA_RATE: u32 = 2;
    /// Format a range of tracks (offset = first cylinder, length = count).
    pub const FORMAT_TRACKS: u32 = 3;
    /// Query whether media is present.
    pub const CHECK_MEDIA: u32 = 4;
    /// Drive the start-I/O path: drain the pending queue.
    pub const PROCESS_QUEUE: u32 = 99;
}

/// Seeded bug switches, one per corpus mutant / protocol category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FloppyBugs {
    /// Don't release the controller spin lock in read/write.
    pub skip_release: bool,
    /// Mark an invalid request pending but never queue it (lost IRP).
    pub drop_irp: bool,
    /// Touch the IRP after passing it down (power path).
    pub use_after_pass: bool,
    /// Complete the PnP IRP without waiting for the completion event.
    pub no_wait: bool,
    /// Touch the paged config while holding the spin lock.
    pub paged_under_lock: bool,
    /// Complete the unsupported-ioctl IRP twice.
    pub double_complete: bool,
    /// Process the queue without spinning the motor up.
    pub motor_not_started: bool,
    /// Never spin the motor down.
    pub motor_leaked: bool,
}

impl FloppyBugs {
    /// The protocol-clean driver.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any bug is enabled.
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

/// The floppy driver.
pub struct FloppyDriver {
    disk: FloppyDisk,
    queue: VecDeque<IrpId>,
    ctrl_lock: SpinLockId,
    config: PagedId,
    commands_issued: i64,
    bugs: FloppyBugs,
}

impl FloppyDriver {
    /// Install a floppy stack into the kernel: a bus driver below a floppy
    /// driver. Returns the top (floppy) device.
    pub fn install(k: &mut Kernel, bugs: FloppyBugs) -> DeviceId {
        let ctrl_lock = k.create_spinlock();
        let config = k.alloc_paged(500); // data rate in kbit/s
        let bus = k.create_device("bus0", Box::new(BusDriver));
        let floppy = k.create_device(
            "floppy0",
            Box::new(FloppyDriver {
                disk: FloppyDisk::new(),
                queue: VecDeque::new(),
                ctrl_lock,
                config,
                commands_issued: 0,
                bugs,
            }),
        );
        k.attach(floppy, bus);
        floppy
    }

    fn read_write(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
        let (_, params) = k.irp_params(dev, irp);
        let end = params.offset + params.length as i64;
        let invalid =
            params.length == 0 || params.offset < 0 || end as usize > CYLINDERS * SECTORS_PER_TRACK;
        if invalid {
            if self.bugs.drop_irp {
                // BUG: marked pending, never queued, never completed.
                k.mark_pending(dev, irp);
                return DriverStatus::Pending;
            }
            k.complete_request(dev, irp, NtStatus::InvalidParameter);
            return DriverStatus::Complete;
        }
        // Read the paged per-drive configuration while still at PASSIVE.
        let _rate = k.read_paged(self.config);
        // Account under the controller lock (raises to DISPATCH_LEVEL).
        let prev = k.acquire_spinlock(self.ctrl_lock);
        self.commands_issued += 1;
        if self.bugs.paged_under_lock {
            // BUG: paged access at DISPATCH_LEVEL.
            k.page_out(self.config);
            let _ = k.read_paged(self.config);
        }
        if !self.bugs.skip_release {
            k.release_spinlock(self.ctrl_lock, prev);
        }
        // Pend for the start-I/O path.
        k.mark_pending(dev, irp);
        self.queue.push_back(irp);
        DriverStatus::Pending
    }

    fn execute_request(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) {
        let (major, params) = k.irp_params(dev, irp);
        let mut moved = 0i64;
        let mut status = NtStatus::Success;
        for s in 0..params.length {
            let lba = params.offset as usize + s;
            let cylinder = lba / SECTORS_PER_TRACK;
            let sector = lba % SECTORS_PER_TRACK;
            let op = self.disk.seek(cylinder).and_then(|()| match major {
                Major::Write => {
                    let start = s * BYTES_PER_SECTOR;
                    let chunk: &[u8] = if start < params.data.len() {
                        &params.data[start..params.data.len().min(start + BYTES_PER_SECTOR)]
                    } else {
                        &[]
                    };
                    self.disk.write_sector(cylinder, sector, chunk)
                }
                _ => self.disk.read_sector(cylinder, sector).map(|_| ()),
            });
            match op {
                Ok(()) => moved += 1,
                Err(why) => {
                    k.device_protocol_violation(why);
                    status = NtStatus::Unsuccessful;
                    break;
                }
            }
        }
        k.set_information(dev, irp, moved * BYTES_PER_SECTOR as i64);
        k.complete_request(dev, irp, status);
    }

    fn process_queue(&mut self, k: &mut Kernel, dev: DeviceId) {
        if !self.bugs.motor_not_started {
            if let Err(why) = self.disk.start_motor() {
                k.device_protocol_violation(why);
            }
        }
        while let Some(irp) = self.queue.pop_front() {
            self.execute_request(k, dev, irp);
        }
        if !self.bugs.motor_leaked && !self.bugs.motor_not_started {
            if let Err(why) = self.disk.stop_motor() {
                k.device_protocol_violation(why);
            }
        }
    }

    fn device_control(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
        let (_, params) = k.irp_params(dev, irp);
        match params.ioctl {
            ioctl::GET_MEDIA_TYPES => {
                let rate = k.read_paged(self.config);
                k.set_information(dev, irp, rate);
                k.complete_request(dev, irp, NtStatus::Success);
            }
            ioctl::SET_DATA_RATE => {
                k.write_paged(self.config, params.length as i64);
                k.set_information(dev, irp, 1);
                k.complete_request(dev, irp, NtStatus::Success);
            }
            ioctl::FORMAT_TRACKS => {
                // A motor lifetime scoped to this one request, like the
                // Vault driver's FloppyFormatRequest.
                if let Err(why) = self.disk.start_motor() {
                    k.device_protocol_violation(why);
                }
                let first = params.offset.max(0) as usize;
                let mut formatted = 0i64;
                for cyl in first..(first + params.length).min(CYLINDERS) {
                    let op = self
                        .disk
                        .seek(cyl)
                        .and_then(|()| self.disk.format_track(cyl));
                    match op {
                        Ok(()) => formatted += 1,
                        Err(why) => {
                            k.device_protocol_violation(why);
                            break;
                        }
                    }
                }
                if let Err(why) = self.disk.stop_motor() {
                    k.device_protocol_violation(why);
                }
                k.set_information(dev, irp, formatted);
                k.complete_request(dev, irp, NtStatus::Success);
            }
            ioctl::CHECK_MEDIA => {
                let present = self.disk.media_present();
                k.set_information(dev, irp, present as i64);
                k.complete_request(
                    dev,
                    irp,
                    if present {
                        NtStatus::Success
                    } else {
                        NtStatus::NoMedia
                    },
                );
            }
            ioctl::PROCESS_QUEUE => {
                self.process_queue(k, dev);
                k.complete_request(dev, irp, NtStatus::Success);
            }
            _ => {
                k.complete_request(dev, irp, NtStatus::Unsuccessful);
                if self.bugs.double_complete {
                    // BUG: the IRP is already back with the kernel.
                    k.complete_request(dev, irp, NtStatus::Unsuccessful);
                }
            }
        }
        DriverStatus::Complete
    }

    /// The Fig. 7 idiom: pass the PnP IRP down, regain it through a
    /// completion routine + event, then complete it ourselves.
    fn pnp(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
        let lower = k.lower_device(dev).expect("floppy sits on the bus");
        let event = k.create_event();
        // The completion routine is a closure capturing the event —
        // exactly Fig. 7's nested `RegainIrp`.
        k.set_completion_routine(
            dev,
            irp,
            Box::new(move |kk, _irp| {
                kk.signal_event(event);
                CompletionDisposition::MoreProcessingRequired
            }),
        );
        k.call_driver(dev, lower, irp);
        if !self.bugs.no_wait {
            k.wait_event(event);
        }
        // Ownership regained; finish the request.
        k.set_information(dev, irp, 0);
        k.complete_request(dev, irp, NtStatus::Success);
        DriverStatus::Complete
    }

    fn power(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
        let lower = k.lower_device(dev).expect("floppy sits on the bus");
        let status = k.call_driver(dev, lower, irp);
        if self.bugs.use_after_pass {
            // BUG: ownership went down the stack.
            k.set_information(dev, irp, 1);
        }
        match status {
            DriverStatus::Complete => DriverStatus::Complete,
            _ => DriverStatus::PassedDown,
        }
    }

    /// Commands accounted under the controller lock (test visibility).
    pub fn commands_issued(&self) -> i64 {
        self.commands_issued
    }

    /// Audit the motor at end of workload.
    pub fn motor_left_running(&self) -> bool {
        self.disk.motor() == MotorState::Spinning
    }
}

impl Driver for FloppyDriver {
    fn name(&self) -> &str {
        "floppy"
    }

    fn dispatch(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
        let (major, _) = k.irp_params(dev, irp);
        match major {
            Major::Create | Major::Close => {
                k.set_information(dev, irp, 0);
                k.complete_request(dev, irp, NtStatus::Success);
                DriverStatus::Complete
            }
            Major::Read | Major::Write => self.read_write(k, dev, irp),
            Major::DeviceControl => self.device_control(k, dev, irp),
            Major::Pnp => self.pnp(k, dev, irp),
            Major::Power => self.power(k, dev, irp),
        }
    }
}

/// A pass-through filter driver (the "generic storage device" layer of
/// the paper's example stack: file system → storage class → floppy →
/// bus). It forwards every request to the next lower device, counting
/// what passes through.
pub struct FilterDriver {
    forwarded: u64,
}

impl FilterDriver {
    /// A fresh filter.
    pub fn new() -> Self {
        FilterDriver { forwarded: 0 }
    }

    /// Requests forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Default for FilterDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl Driver for FilterDriver {
    fn name(&self) -> &str {
        "filter"
    }

    fn dispatch(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
        let lower = k
            .lower_device(dev)
            .expect("filter sits above another device");
        self.forwarded += 1;
        match k.call_driver(dev, lower, irp) {
            DriverStatus::Complete => DriverStatus::Complete,
            DriverStatus::Pending => DriverStatus::Pending,
            DriverStatus::PassedDown => DriverStatus::PassedDown,
        }
    }
}

/// Install a full paper-style stack: `filters` pass-through layers above
/// the floppy driver above the bus. Returns the topmost device.
pub fn install_stacked(k: &mut Kernel, bugs: FloppyBugs, filters: usize) -> DeviceId {
    let mut top = FloppyDriver::install(k, bugs);
    for i in 0..filters {
        let f = k.create_device(&format!("filter{i}"), Box::new(FilterDriver::new()));
        k.attach(f, top);
        top = f;
    }
    top
}

/// The bus driver below the floppy: completes PnP asynchronously (through
/// the deferred queue, like real hardware) and Power synchronously.
pub struct BusDriver;

impl Driver for BusDriver {
    fn name(&self) -> &str {
        "bus"
    }

    fn dispatch(&mut self, k: &mut Kernel, dev: DeviceId, irp: IrpId) -> DriverStatus {
        let (major, _) = k.irp_params(dev, irp);
        match major {
            Major::Pnp => {
                // Asynchronous completion after a few ticks.
                k.mark_pending(dev, irp);
                k.defer_completion(dev, irp, NtStatus::Success, 2);
                DriverStatus::Pending
            }
            _ => {
                k.complete_request(dev, irp, NtStatus::Success);
                DriverStatus::Complete
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::irql::Irql;
    use crate::kernel::IrpParams;

    #[test]
    fn disk_motor_protocol() {
        let mut d = FloppyDisk::new();
        assert!(d.read_sector(0, 0).is_err(), "motor off");
        d.start_motor().unwrap();
        assert!(d.start_motor().is_err(), "double start");
        d.seek(3).unwrap();
        assert!(d.read_sector(0, 0).is_err(), "wrong cylinder");
        d.write_sector(3, 5, b"hello").unwrap();
        assert_eq!(&d.read_sector(3, 5).unwrap()[..5], b"hello");
        d.stop_motor().unwrap();
        assert!(d.stop_motor().is_err(), "double stop");
    }

    #[test]
    fn disk_bounds_checked() {
        let mut d = FloppyDisk::new();
        d.start_motor().unwrap();
        assert!(d.seek(CYLINDERS).is_err());
        d.seek(0).unwrap();
        assert!(d.read_sector(0, SECTORS_PER_TRACK).is_err());
    }

    #[test]
    fn clean_driver_read_write_roundtrip() {
        let mut k = Kernel::new(7);
        let dev = FloppyDriver::install(&mut k, FloppyBugs::none());
        // Open.
        k.submit(dev, Major::Create, IrpParams::default());
        // Write two sectors at LBA 20.
        let (_w, st) = k.submit(
            dev,
            Major::Write,
            IrpParams {
                offset: 20,
                length: 2,
                ioctl: 0,
                data: vec![0xAB; 2 * BYTES_PER_SECTOR],
            },
        );
        assert_eq!(st, DriverStatus::Pending);
        // Read them back (also queued).
        let (r, _) = k.submit(
            dev,
            Major::Read,
            IrpParams {
                offset: 20,
                length: 2,
                ..IrpParams::default()
            },
        );
        // Drive the start-I/O path.
        k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                ioctl: ioctl::PROCESS_QUEUE,
                ..IrpParams::default()
            },
        );
        assert!(k.irp_completed(r));
        assert_eq!(k.irp_information(r), 2 * BYTES_PER_SECTOR as i64);
        // Close.
        k.submit(dev, Major::Close, IrpParams::default());
        k.audit_locks();
        assert!(k.violations().is_empty(), "{:?}", k.violations());
        assert_eq!(k.irql(), Irql::Passive);
    }

    #[test]
    fn invalid_request_completed_with_error() {
        let mut k = Kernel::new(7);
        let dev = FloppyDriver::install(&mut k, FloppyBugs::none());
        let (irp, st) = k.submit(
            dev,
            Major::Read,
            IrpParams {
                offset: -5,
                length: 1,
                ..IrpParams::default()
            },
        );
        assert_eq!(st, DriverStatus::Complete);
        assert_eq!(k.irp_status(irp), Some(NtStatus::InvalidParameter));
        assert!(k.violations().is_empty());
    }

    #[test]
    fn pnp_fig7_roundtrip() {
        let mut k = Kernel::new(7);
        let dev = FloppyDriver::install(&mut k, FloppyBugs::none());
        let (irp, st) = k.submit(dev, Major::Pnp, IrpParams::default());
        assert_eq!(st, DriverStatus::Complete);
        assert!(k.irp_completed(irp));
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn stacked_filters_forward_cleanly() {
        // The paper's stack: file system → storage class → floppy → bus.
        let mut k = Kernel::new(7);
        let top = install_stacked(&mut k, FloppyBugs::none(), 2);
        k.submit(top, Major::Create, IrpParams::default());
        let (pnp, st) = k.submit(top, Major::Pnp, IrpParams::default());
        assert_eq!(st, DriverStatus::Complete);
        assert!(k.irp_completed(pnp));
        let (w, _) = k.submit(
            top,
            Major::Write,
            IrpParams {
                offset: 4,
                length: 1,
                ioctl: 0,
                data: vec![7; BYTES_PER_SECTOR],
            },
        );
        k.submit(
            top,
            Major::DeviceControl,
            IrpParams {
                ioctl: ioctl::PROCESS_QUEUE,
                ..IrpParams::default()
            },
        );
        assert!(k.irp_completed(w));
        let (power, _) = k.submit(top, Major::Power, IrpParams::default());
        assert!(k.irp_completed(power));
        k.submit(top, Major::Close, IrpParams::default());
        k.audit_irps();
        k.audit_locks();
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn buggy_driver_detected_through_filters_too() {
        let mut k = Kernel::new(7);
        let top = install_stacked(
            &mut k,
            FloppyBugs {
                use_after_pass: true,
                ..FloppyBugs::none()
            },
            3,
        );
        k.submit(top, Major::Power, IrpParams::default());
        assert!(
            k.violations().iter().any(|v| matches!(
                v,
                crate::kernel::Violation::IrpAccessWithoutOwnership { .. }
            )),
            "{:?}",
            k.violations()
        );
    }

    #[test]
    fn ioctl_paths() {
        let mut k = Kernel::new(7);
        let dev = FloppyDriver::install(&mut k, FloppyBugs::none());
        let (irp, _) = k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                ioctl: ioctl::GET_MEDIA_TYPES,
                ..IrpParams::default()
            },
        );
        assert_eq!(k.irp_information(irp), 500);
        let (_, _) = k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                ioctl: ioctl::SET_DATA_RATE,
                length: 1000,
                ..IrpParams::default()
            },
        );
        let (irp2, _) = k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                ioctl: ioctl::GET_MEDIA_TYPES,
                ..IrpParams::default()
            },
        );
        assert_eq!(k.irp_information(irp2), 1000);
        let (bad, _) = k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                ioctl: 0xDEAD,
                ..IrpParams::default()
            },
        );
        assert_eq!(k.irp_status(bad), Some(NtStatus::Unsuccessful));
        assert!(k.violations().is_empty());
    }
}

#[cfg(test)]
mod format_tests {
    use super::*;
    use crate::kernel::{IrpParams, Kernel};

    #[test]
    fn format_tracks_ioctl_roundtrip() {
        let mut k = Kernel::new(9);
        let dev = FloppyDriver::install(&mut k, FloppyBugs::none());
        // Write a sector, format its track, read back zeroes.
        k.submit(
            dev,
            Major::Write,
            IrpParams {
                offset: 36, // cylinder 2, sector 0
                length: 1,
                ioctl: 0,
                data: vec![0xFF; BYTES_PER_SECTOR],
            },
        );
        k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                ioctl: ioctl::PROCESS_QUEUE,
                ..IrpParams::default()
            },
        );
        let (fmt, _) = k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                offset: 2,
                length: 1,
                ioctl: ioctl::FORMAT_TRACKS,
                data: Vec::new(),
            },
        );
        assert_eq!(k.irp_information(fmt), 1);
        let (r, _) = k.submit(
            dev,
            Major::Read,
            IrpParams {
                offset: 36,
                length: 1,
                ..IrpParams::default()
            },
        );
        k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                ioctl: ioctl::PROCESS_QUEUE,
                ..IrpParams::default()
            },
        );
        assert!(k.irp_completed(r));
        assert!(k.violations().is_empty(), "{:?}", k.violations());
    }

    #[test]
    fn check_media_ioctl() {
        let mut k = Kernel::new(9);
        let dev = FloppyDriver::install(&mut k, FloppyBugs::none());
        let (irp, _) = k.submit(
            dev,
            Major::DeviceControl,
            IrpParams {
                ioctl: ioctl::CHECK_MEDIA,
                ..IrpParams::default()
            },
        );
        assert_eq!(k.irp_information(irp), 1);
        assert_eq!(k.irp_status(irp), Some(NtStatus::Success));
    }

    #[test]
    fn disk_format_protocol() {
        let mut d = FloppyDisk::new();
        assert!(d.format_track(0).is_err(), "motor off");
        d.start_motor().unwrap();
        d.seek(5).unwrap();
        assert!(d.format_track(4).is_err(), "wrong cylinder");
        d.write_sector(5, 0, &[7; 16]).unwrap();
        d.format_track(5).unwrap();
        assert_eq!(d.read_sector(5, 0).unwrap()[0], 0);
        d.stop_motor().unwrap();
    }
}
