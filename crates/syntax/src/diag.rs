//! Structured diagnostics.
//!
//! Every error the front end or protocol checker reports is a [`Diagnostic`]
//! with a stable [`Code`], a primary span, and optional notes. Codes are what
//! the test suite and the experiment harness assert on: each protocol
//! violation class from the paper maps to one code.

use crate::span::{SourceMap, Span};
use std::fmt;

/// Stable machine-readable diagnostic codes.
///
/// The `V1xx` range is lexical/syntactic, `V2xx` is declaration/type
/// elaboration, and `V3xx` is the protocol (key) checker — the heart of the
/// paper. `V4xx` is code generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Code {
    // --- lexical / syntactic -------------------------------------------
    /// Unexpected or invalid character in the input.
    LexInvalidChar,
    /// Unterminated string literal or block comment.
    LexUnterminated,
    /// Integer literal out of range.
    LexIntOverflow,
    /// The parser found a token it did not expect.
    ParseUnexpected,
    /// A construct is syntactically malformed (message has details).
    ParseMalformed,

    // --- declarations / elaboration ------------------------------------
    /// Reference to an undeclared type, function, variant, or stateset.
    UnknownName,
    /// The same name was declared twice in one scope.
    DuplicateDecl,
    /// A type was applied to the wrong number or kinds of arguments.
    BadTypeArgs,
    /// An expression's type does not match what the context requires.
    TypeMismatch,
    /// A `stateset` declaration does not describe a partial order.
    BadStateset,
    /// A state token is not a member of the relevant stateset.
    UnknownState,
    /// Malformed effect clause (e.g. conflicting items for one key).
    BadEffect,

    // --- protocol checking (the paper's contribution) -------------------
    /// A guarded or tracked value was accessed while its key is not held.
    /// Paper: the `dangling` function of Fig. 2.
    KeyNotHeld,
    /// A key is held but in the wrong local state for this operation.
    /// Paper: calling `listen` on a socket whose key is still `@raw`.
    WrongKeyState,
    /// A key would be introduced that is already in the held-key set
    /// (keys are linear). Paper: acquiring a spin lock twice (§4.2).
    DuplicateKey,
    /// The held-key set at a function exit has keys the effect clause does
    /// not promise — a resource leak. Paper: the `leaky` function of Fig. 2.
    KeyLeak,
    /// The effect clause promises a key at exit that is not held.
    MissingKeyAtExit,
    /// The held-key sets of two control-flow paths disagree at a join
    /// point. Paper: Fig. 5.
    JoinMismatch,
    /// A loop's key-set invariant could not be inferred.
    LoopInvariant,
    /// A bounded state variable's constraint is violated
    /// (e.g. `IRQL @ (level <= DISPATCH_LEVEL)` at DIRQL). Paper §4.4.
    StateBound,
    /// A variable was used before being assigned a value.
    Uninitialized,
    /// A function value does not conform to the required function type
    /// (used for completion routines, §4.3).
    FnTypeMismatch,
    /// `free` applied to a non-tracked value.
    FreeUntracked,
    /// A global key (like `IRQL`) cannot be consumed or created.
    GlobalKeyMisuse,
    /// A tracked value was copied in a way that would duplicate its key.
    TrackedCopy,
    /// A `switch` over a keyed variant does not cover every constructor
    /// (uncovered paths would lose the captured keys).
    NonExhaustiveSwitch,

    // --- code generation -------------------------------------------------
    /// The C emitter cannot translate a construct.
    CodegenUnsupported,

    // --- capability-effect discipline -------------------------------------
    /// A function with a declared capability set performs an operation
    /// (intrinsic or call) requiring a capability it does not declare.
    CapMissing,
    /// A `uses` clause names a capability outside the known universe.
    CapUnknown,
    /// The same capability is declared twice on one function.
    CapDuplicate,
    /// A declared capability is never exercised by the body (warning).
    CapUnused,

    // --- project / build graph --------------------------------------------
    /// A unit participates in (or depends on) an `import` cycle, so no
    /// signature environment can be built for it.
    ImportCycle,
    /// An `import "path";` names no unit in the project manifest.
    UnresolvedImport,

    // --- resource limits / infrastructure --------------------------------
    /// Checking gave up because a configured resource limit (parser
    /// recursion depth, fixpoint fuel, or deadline) was exceeded.
    LimitExceeded,
    /// The checker itself failed (a caught panic); the verdict says
    /// nothing about the program.
    InternalError,
}

impl Code {
    /// Every code, in declaration order. `as_str`/`from_str_code`/
    /// `explain` are exhaustive matches, so adding a variant without
    /// extending them is a compile error; adding one without extending
    /// **this list** is caught by the round-trip test, which scans the
    /// whole `V000`–`V999` string space against it.
    pub const ALL: &'static [Code] = &[
        Code::LexInvalidChar,
        Code::LexUnterminated,
        Code::LexIntOverflow,
        Code::ParseUnexpected,
        Code::ParseMalformed,
        Code::UnknownName,
        Code::DuplicateDecl,
        Code::BadTypeArgs,
        Code::TypeMismatch,
        Code::BadStateset,
        Code::UnknownState,
        Code::BadEffect,
        Code::KeyNotHeld,
        Code::WrongKeyState,
        Code::DuplicateKey,
        Code::KeyLeak,
        Code::MissingKeyAtExit,
        Code::JoinMismatch,
        Code::LoopInvariant,
        Code::StateBound,
        Code::Uninitialized,
        Code::FnTypeMismatch,
        Code::FreeUntracked,
        Code::GlobalKeyMisuse,
        Code::TrackedCopy,
        Code::NonExhaustiveSwitch,
        Code::CodegenUnsupported,
        Code::CapMissing,
        Code::CapUnknown,
        Code::CapDuplicate,
        Code::CapUnused,
        Code::LimitExceeded,
        Code::InternalError,
        Code::ImportCycle,
        Code::UnresolvedImport,
    ];

    /// The stable string form, e.g. `V301`.
    pub fn as_str(self) -> &'static str {
        use Code::*;
        match self {
            LexInvalidChar => "V101",
            LexUnterminated => "V102",
            LexIntOverflow => "V103",
            ParseUnexpected => "V110",
            ParseMalformed => "V111",
            UnknownName => "V201",
            DuplicateDecl => "V202",
            BadTypeArgs => "V203",
            TypeMismatch => "V204",
            BadStateset => "V205",
            UnknownState => "V206",
            BadEffect => "V207",
            KeyNotHeld => "V301",
            WrongKeyState => "V302",
            DuplicateKey => "V303",
            KeyLeak => "V304",
            MissingKeyAtExit => "V305",
            JoinMismatch => "V306",
            LoopInvariant => "V307",
            StateBound => "V308",
            Uninitialized => "V309",
            FnTypeMismatch => "V310",
            FreeUntracked => "V311",
            GlobalKeyMisuse => "V312",
            TrackedCopy => "V313",
            NonExhaustiveSwitch => "V314",
            CodegenUnsupported => "V401",
            CapMissing => "V701",
            CapUnknown => "V702",
            CapDuplicate => "V703",
            CapUnused => "V704",
            LimitExceeded => "V501",
            InternalError => "V502",
            ImportCycle => "V601",
            UnresolvedImport => "V602",
        }
    }
}

impl Code {
    /// Parse a stable string form (`V301`) back to a code.
    pub fn from_str_code(s: &str) -> Option<Code> {
        use Code::*;
        Some(match s {
            "V101" => LexInvalidChar,
            "V102" => LexUnterminated,
            "V103" => LexIntOverflow,
            "V110" => ParseUnexpected,
            "V111" => ParseMalformed,
            "V201" => UnknownName,
            "V202" => DuplicateDecl,
            "V203" => BadTypeArgs,
            "V204" => TypeMismatch,
            "V205" => BadStateset,
            "V206" => UnknownState,
            "V207" => BadEffect,
            "V301" => KeyNotHeld,
            "V302" => WrongKeyState,
            "V303" => DuplicateKey,
            "V304" => KeyLeak,
            "V305" => MissingKeyAtExit,
            "V306" => JoinMismatch,
            "V307" => LoopInvariant,
            "V308" => StateBound,
            "V309" => Uninitialized,
            "V310" => FnTypeMismatch,
            "V311" => FreeUntracked,
            "V312" => GlobalKeyMisuse,
            "V313" => TrackedCopy,
            "V314" => NonExhaustiveSwitch,
            "V401" => CodegenUnsupported,
            "V701" => CapMissing,
            "V702" => CapUnknown,
            "V703" => CapDuplicate,
            "V704" => CapUnused,
            "V501" => LimitExceeded,
            "V502" => InternalError,
            "V601" => ImportCycle,
            "V602" => UnresolvedImport,
            _ => return None,
        })
    }

    /// A paragraph explaining the diagnostic, in terms of the paper's key
    /// model (for `vaultc explain`).
    pub fn explain(self) -> &'static str {
        use Code::*;
        match self {
            LexInvalidChar => "a character that is not part of the Vault lexical grammar",
            LexUnterminated => "a string literal or block comment is never closed",
            LexIntOverflow => "an integer literal does not fit in 64 bits",
            ParseUnexpected => "the parser met a token that no rule allows here",
            ParseMalformed => "a construct is syntactically malformed",
            UnknownName => {
                "reference to a type, function, constructor, field, or \
                            variable that is not declared"
            }
            DuplicateDecl => "the same name is declared twice in one scope",
            BadTypeArgs => {
                "a parameterized type or constructor is instantiated with the \
                            wrong number or kinds of arguments, or a key parameter \
                            cannot be inferred"
            }
            TypeMismatch => {
                "an expression's type does not match what its context \
                             requires"
            }
            BadStateset => {
                "a stateset declaration does not describe a partial order \
                            (cycles, or states reused across statesets)"
            }
            UnknownState => "a state token that belongs to no declared stateset",
            BadEffect => {
                "a malformed effect clause: a key no parameter binds, a key \
                          mentioned twice, or an undetermined state variable"
            }
            KeyNotHeld => {
                "a guarded or tracked value was accessed while its key is not \
                           in the held-key set — a dangling reference (paper Fig. 2 \
                           `dangling`); keys leave the set when resources are freed, \
                           consumed by an effect, or packed into a value"
            }
            WrongKeyState => {
                "the key is held but in the wrong local state for this \
                              operation — a protocol-order violation (e.g. `listen` on \
                              a socket that is still `raw`, paper Fig. 3)"
            }
            DuplicateKey => {
                "an operation would add a key that is already in the \
                             held-key set; keys are linear, so this is e.g. acquiring a \
                             spin lock twice (paper §4.2)"
            }
            KeyLeak => {
                "a key is still held at function exit but the effect clause does \
                        not return it — a leaked resource (paper Fig. 2 `leaky`, or a \
                        missing lock release)"
            }
            MissingKeyAtExit => {
                "the effect clause promises a key at exit that is not \
                                 held there"
            }
            JoinMismatch => {
                "two control-flow paths reach this point with different \
                             held-key sets; make the correlation explicit with a keyed \
                             variant (paper Fig. 5)"
            }
            LoopInvariant => {
                "the held-key set changes from one loop iteration to the \
                              next, so no loop invariant exists"
            }
            StateBound => {
                "a bounded state constraint is violated, e.g. calling a \
                           function that requires IRQL <= DISPATCH_LEVEL at DIRQL, or \
                           touching paged memory at DISPATCH_LEVEL (paper §4.4)"
            }
            Uninitialized => "a variable may be used before it is assigned",
            FnTypeMismatch => {
                "a function value does not conform to the required \
                               function type (completion routines, paper §4.3)"
            }
            FreeUntracked => "`free` applied to a value that is not tracked by a key",
            GlobalKeyMisuse => {
                "a global key such as IRQL cannot be consumed, created, \
                                or captured into values — only its state changes"
            }
            TrackedCopy => "copying this value would duplicate its key",
            NonExhaustiveSwitch => {
                "a switch over a keyed variant must cover every \
                                    constructor; uncovered paths would lose the \
                                    captured keys"
            }
            CodegenUnsupported => "the C back end cannot translate this construct",
            CapMissing => {
                "a function that declares a capability set (`uses` items in \
                             its effect clause) performs an operation requiring a \
                             capability it does not declare — an intrinsic (`new`/`free` \
                             require `alloc`) or a call to a function whose own declared \
                             set it does not cover; either declare the capability or \
                             drop the operation. Functions with no `uses` items opt out \
                             of the discipline entirely"
            }
            CapUnknown => {
                "a `uses` clause names a capability outside the known \
                            universe (alloc, io, net, sys, time); capability names are \
                            a closed set so corpus expectations stay stable"
            }
            CapDuplicate => "the same capability is declared twice on one function",
            CapUnused => {
                "a declared capability is never exercised by the function \
                           body, directly or through any call — dead authority that \
                           widens the function's audit surface for nothing; this is a \
                           warning, not an error"
            }
            LimitExceeded => {
                "checking stopped early because a configured resource limit \
                               was exceeded (parser recursion depth, loop-invariant \
                               fuel, or a request deadline); the program was neither \
                               accepted nor rejected — raise the limit or simplify \
                               the input"
            }
            InternalError => {
                "the checker itself failed on this input (an internal \
                                panic was caught and contained); the verdict says \
                                nothing about the program — please report the payload"
            }
            ImportCycle => {
                "this unit imports itself, directly or through a chain of \
                             imports (or depends on units that do); a project's \
                             import graph must be acyclic so each unit can be \
                             checked against its dependencies' exported signatures"
            }
            UnresolvedImport => {
                "an `import \"path\";` declaration names no unit in the \
                                  project manifest; check the spelling against the \
                                  manifest's unit names"
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note attached to the analysis.
    Note,
    /// Suspicious but not protocol-violating.
    Warning,
    /// A definite violation; checking fails.
    Error,
}

impl Severity {
    /// The stable lowercase string form used on wire protocols.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse the stable string form back to a severity.
    pub fn from_str_severity(s: &str) -> Option<Severity> {
        Some(match s {
            "note" => Severity::Note,
            "warning" => Severity::Warning,
            "error" => Severity::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A secondary label pointing at related source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Label {
    /// Where the related code is.
    pub span: Span,
    /// What it has to do with the primary message.
    pub message: String,
}

/// One reported problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: Code,
    /// Error/warning/note.
    pub severity: Severity,
    /// Primary location.
    pub span: Span,
    /// Human-readable message (lowercase, no trailing period).
    pub message: String,
    /// Secondary locations.
    pub labels: Vec<Label>,
}

impl Diagnostic {
    /// A new error diagnostic.
    pub fn error(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            labels: Vec::new(),
        }
    }

    /// A new warning diagnostic.
    pub fn warning(code: Code, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, span, message)
        }
    }

    /// Attach a secondary label.
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Self {
        self.labels.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Render against a source map, in a rustc-like single-diagnostic format.
    pub fn render(&self, sm: &SourceMap) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let lc = sm.line_col(self.span.start);
        let _ = writeln!(out, "{}[{}]: {}", self.severity, self.code, self.message);
        let _ = writeln!(out, "  --> {}:{}", sm.name(), lc);
        let line = sm.line_text(self.span.start);
        let _ = writeln!(out, "   | {line}");
        let caret_start = (lc.col as usize).saturating_sub(1);
        let caret_len = (self.span.len() as usize)
            .max(1)
            .min(line.len().saturating_sub(caret_start).max(1));
        let _ = writeln!(
            out,
            "   | {}{}",
            " ".repeat(caret_start),
            "^".repeat(caret_len)
        );
        for label in &self.labels {
            let llc = sm.line_col(label.span.start);
            let _ = writeln!(
                out,
                "   = note: {} (at {}:{})",
                label.message,
                sm.name(),
                llc
            );
        }
        out
    }
}

/// A secondary label resolved to plain data (see [`DiagView`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelView {
    /// What the related source has to do with the primary message.
    pub message: String,
    /// 1-based line of the related source.
    pub line: u32,
    /// 1-based column of the related source.
    pub col: u32,
}

/// A flattened, serialization-ready view of one [`Diagnostic`].
///
/// Every field is plain data (strings and integers) resolved against the
/// unit's [`SourceMap`], so wire protocols and machine-readable output
/// formats can emit diagnostics without re-implementing span resolution
/// or rendering. This is what `vaultd` ships to clients as structured
/// JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagView {
    /// Stable code string, e.g. `"V301"`.
    pub code: String,
    /// Stable severity string: `"error"`, `"warning"`, or `"note"`.
    pub severity: String,
    /// The primary human-readable message.
    pub message: String,
    /// Primary span start, as a byte offset.
    pub start: u32,
    /// Primary span end (exclusive), as a byte offset.
    pub end: u32,
    /// 1-based line of the primary span.
    pub line: u32,
    /// 1-based column of the primary span.
    pub col: u32,
    /// Secondary labels, resolved to line/column.
    pub labels: Vec<LabelView>,
    /// The full rustc-style rendering against the source.
    pub rendered: String,
}

impl DiagView {
    /// Resolve `d` against `sm` into plain data.
    pub fn new(d: &Diagnostic, sm: &SourceMap) -> Self {
        let lc = sm.line_col(d.span.start);
        DiagView {
            code: d.code.as_str().to_string(),
            severity: d.severity.as_str().to_string(),
            message: d.message.clone(),
            start: d.span.start,
            end: d.span.end,
            line: lc.line,
            col: lc.col,
            labels: d
                .labels
                .iter()
                .map(|l| {
                    let llc = sm.line_col(l.span.start);
                    LabelView {
                        message: l.message.clone(),
                        line: llc.line,
                        col: llc.col,
                    }
                })
                .collect(),
            rendered: d.render(sm),
        }
    }
}

/// Re-attributes diagnostics for a unit that was checked as the
/// concatenation `prelude + unit source` (project mode: the prelude is
/// the exported signatures of the unit's dependencies).
///
/// Diagnostics that land wholly inside the unit's own text — the vast
/// majority — are shifted back into the unit's coordinates and rendered
/// against the unit's own source, so project-mode output matches a
/// standalone check of the unit. Diagnostics touching the prelude (e.g.
/// a duplicate declaration whose first site is imported) keep the
/// concatenated coordinates so their rendering can quote the imported
/// line. With an empty prelude this is exactly [`DiagView::new`].
#[derive(Debug)]
pub struct Attribution {
    /// Byte length of the prelude; 0 means plain (no re-attribution).
    prelude_len: u32,
    /// The unit's own source, for shifted rendering (`None` when plain).
    unit_map: Option<SourceMap>,
    /// The text the checker actually saw (prelude + unit source).
    full_map: SourceMap,
}

impl Attribution {
    /// Attribution for a standalone unit: views resolve unshifted.
    pub fn plain(name: &str, source: &str) -> Self {
        Attribution {
            prelude_len: 0,
            unit_map: None,
            full_map: SourceMap::new(name, source),
        }
    }

    /// Attribution for a unit checked against a signature prelude. The
    /// text to check is `prelude + unit_source` (see [`Self::full_text`]).
    pub fn with_prelude(name: &str, prelude: &str, unit_source: &str) -> Self {
        if prelude.is_empty() {
            return Attribution::plain(name, unit_source);
        }
        let full = format!("{prelude}{unit_source}");
        Attribution {
            prelude_len: prelude.len() as u32,
            unit_map: Some(SourceMap::new(name, unit_source)),
            full_map: SourceMap::new(name, &full),
        }
    }

    /// The concatenated text the checker must run on.
    pub fn full_text(&self) -> &str {
        self.full_map.text()
    }

    /// The source map over [`Self::full_text`].
    pub fn full_map(&self) -> &SourceMap {
        &self.full_map
    }

    /// Byte length of the prelude (0 for a plain attribution).
    pub fn prelude_len(&self) -> u32 {
        self.prelude_len
    }

    /// Resolve one diagnostic, re-attributed into unit coordinates when
    /// its primary span and every label land inside the unit's text.
    pub fn view(&self, d: &Diagnostic) -> DiagView {
        if let Some(unit_map) = &self.unit_map {
            let p = self.prelude_len;
            let inside_unit = d.span.start >= p && d.labels.iter().all(|l| l.span.start >= p);
            if inside_unit {
                let mut shifted = d.clone();
                shifted.span = Span::new(d.span.start - p, d.span.end - p);
                for l in &mut shifted.labels {
                    l.span = Span::new(l.span.start - p, l.span.end - p);
                }
                return DiagView::new(&shifted, unit_map);
            }
        }
        DiagView::new(d, &self.full_map)
    }
}

/// Accumulates diagnostics during a pass.
#[derive(Clone, Debug, Default)]
pub struct DiagSink {
    diags: Vec<Diagnostic>,
}

impl DiagSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Convenience: record an error.
    pub fn error(&mut self, code: Code, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(code, span, message));
    }

    /// All diagnostics recorded so far, in order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Whether any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Whether some diagnostic carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Consume the sink, yielding its diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// Absorb all diagnostics from another sink.
    pub fn extend(&mut self, other: DiagSink) {
        self.diags.extend(other.diags);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let all = Code::ALL;
        let mut strs: Vec<_> = all.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), all.len(), "duplicate diagnostic code strings");
        // Round trip through the string form, and every code explains
        // itself.
        for &c in all {
            assert_eq!(Code::from_str_code(c.as_str()), Some(c));
            assert!(c.explain().len() > 20, "{c} lacks an explanation");
        }
        assert_eq!(Code::from_str_code("V999"), None);
    }

    /// Exhaustive round trip over the whole `V000`–`V999` string space:
    /// every parseable string must print back to itself AND appear in
    /// [`Code::ALL`], and every member of `ALL` must parse. A code added
    /// to `from_str_code` but not `as_str` (or vice versa) is impossible
    /// (both match exhaustively on the enum); a code added to both but
    /// missed in `ALL` — the one-sided-table failure — is caught here.
    #[test]
    fn code_tables_round_trip_over_the_whole_string_space() {
        let mut parseable = 0usize;
        for n in 0..1000u32 {
            let s = format!("V{n:03}");
            if let Some(c) = Code::from_str_code(&s) {
                parseable += 1;
                assert_eq!(c.as_str(), s, "{s} does not print back to itself");
                assert!(
                    Code::ALL.contains(&c),
                    "{s} parses but is missing from Code::ALL"
                );
            }
        }
        assert_eq!(
            parseable,
            Code::ALL.len(),
            "Code::ALL and from_str_code cover different code sets"
        );
        for &c in Code::ALL {
            assert_eq!(Code::from_str_code(c.as_str()), Some(c));
        }
        // The new capability family is present and stable.
        for (s, c) in [
            ("V701", Code::CapMissing),
            ("V702", Code::CapUnknown),
            ("V703", Code::CapDuplicate),
            ("V704", Code::CapUnused),
        ] {
            assert_eq!(Code::from_str_code(s), Some(c));
        }
    }

    #[test]
    fn sink_tracks_errors() {
        let mut sink = DiagSink::new();
        assert!(!sink.has_errors());
        sink.push(Diagnostic::warning(Code::KeyLeak, Span::DUMMY, "w"));
        assert!(!sink.has_errors());
        sink.error(Code::KeyNotHeld, Span::DUMMY, "e");
        assert!(sink.has_errors());
        assert_eq!(sink.error_count(), 1);
        assert!(sink.has_code(Code::KeyNotHeld));
        assert!(sink.has_code(Code::KeyLeak));
        assert!(!sink.has_code(Code::JoinMismatch));
    }

    #[test]
    fn render_points_at_line() {
        let sm = SourceMap::new("f.vlt", "int x;\npt.x++;\n");
        let d = Diagnostic::error(Code::KeyNotHeld, Span::new(7, 11), "key R not held")
            .with_label(Span::new(0, 3), "key was consumed here");
        let text = d.render(&sm);
        assert!(text.contains("error[V301]: key R not held"), "{text}");
        assert!(text.contains("f.vlt:2:1"), "{text}");
        assert!(text.contains("pt.x++;"), "{text}");
        assert!(text.contains("^^^^"), "{text}");
        assert!(text.contains("key was consumed here"), "{text}");
    }
}
