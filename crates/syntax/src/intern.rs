//! Symbol interning for the front end and the checker's hot maps.
//!
//! The checker used to key every environment map (`Frame`, `keyenv`,
//! `statevars`, …) by `String`: every lookup was a byte-wise compare
//! and every snapshot cloned the key text. A [`Symbol`] is a `u32`
//! handle into a per-unit [`Interner`], so comparisons are integer ops
//! and map keys are `Copy`.
//!
//! Since the zero-copy front-end overhaul the interner also serves the
//! lexer: identifiers are interned *at lex time* (one shared [`IStr`]
//! per distinct name instead of one `String` per occurrence), so the
//! interner must be growable while a unit is being lexed and parsed.
//! [`Interner::freeze_sorted`] then re-numbers the symbols into string
//! order and the parser rewrites the AST through the returned remap
//! table; after that the interner is frozen and shared (`Arc`) by
//! elaboration and the checker.
//!
//! ## Ordering discipline
//!
//! The checker's diagnostics depend on `BTreeMap`/`BTreeSet` iteration
//! order in several places (fresh-key numbering, join attribution), so
//! symbol order **must** equal string order or output changes. A frozen
//! interner guarantees `Symbol(a) < Symbol(b)` iff the interned strings
//! satisfy `a < b`. Freezing never removes names, so the frozen set is
//! a superset of the AST's identifiers (it also holds names that only
//! occur in token soup the parser discarded); that is harmless because
//! nothing depends on the *absolute* dense index of a symbol, only on
//! the relative order.
//!
//! Names that were never interned (e.g. a reference to an undeclared
//! variable) resolve to [`Symbol::UNKNOWN`]. That is sound for lookups
//! (no map ever contains `UNKNOWN`) but would be a collision hazard for
//! inserts, so insert paths only ever use identifiers that came from
//! the unit's own AST — exactly a subset of what the interner holds.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// An interned identifier: a dense `u32` whose ordering, once the
/// interner is frozen, matches the string ordering of the underlying
/// names (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The sentinel for names absent from the interner. Never stored in
    /// any map; compares greater than every real symbol.
    pub const UNKNOWN: Symbol = Symbol(u32::MAX);

    /// Dense index of this symbol (unusable for `UNKNOWN`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == Symbol::UNKNOWN {
            write!(f, "Symbol(<unknown>)")
        } else {
            write!(f, "Symbol({})", self.0)
        }
    }
}

/// 64-bit FNV-1a, the workspace's standard content hash (no external
/// hasher crates; identifiers are short, where FNV shines).
#[derive(Default)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        if self.0 == 0 {
            FNV_OFFSET
        } else {
            self.0
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `std::collections::HashMap`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// An immutable, cheaply cloneable interned string (a shared
/// `Arc<str>`). The AST keeps one per identifier so diagnostics and the
/// pretty-printer still read `.name` as text, while cloning an [`IStr`]
/// is a refcount bump instead of a heap copy.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IStr(Arc<str>);

impl IStr {
    /// The underlying text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr(Arc::from(s))
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        IStr(Arc::from(s))
    }
}

impl From<Arc<str>> for IStr {
    fn from(s: Arc<str>) -> Self {
        IStr(s)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<IStr> for String {
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == &*other.0
    }
}

impl PartialEq<IStr> for str {
    fn eq(&self, other: &IStr) -> bool {
        self == &*other.0
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == &*other.0
    }
}

impl std::fmt::Display for IStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::fmt::Debug for IStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", &*self.0)
    }
}

/// A per-unit string interner: growable while the lexer runs, then
/// frozen into string order (see module docs for the ordering and
/// immutability discipline).
#[derive(Debug, Default)]
pub struct Interner {
    names: Vec<Arc<str>>,
    map: HashMap<Arc<str>, u32, FnvBuildHasher>,
}

impl Interner {
    /// An empty, growable interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `name`, growing the table if it is new. Symbols handed
    /// out before [`Interner::freeze_sorted`] are in first-seen order
    /// and must not be compared for order.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.map.get(name) {
            return Symbol(id);
        }
        let id = self.names.len() as u32;
        let arc: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&arc));
        self.map.insert(arc, id);
        Symbol(id)
    }

    /// Re-number every symbol into string order and return the remap
    /// table: `remap[old.index()]` is the new symbol. After this call
    /// the interner satisfies the ordering discipline and must not be
    /// grown again.
    pub fn freeze_sorted(&mut self) -> Vec<Symbol> {
        let mut order: Vec<u32> = (0..self.names.len() as u32).collect();
        order.sort_by(|&a, &b| self.names[a as usize].cmp(&self.names[b as usize]));
        let mut remap = vec![Symbol::UNKNOWN; self.names.len()];
        let mut names = Vec::with_capacity(self.names.len());
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = Symbol(new as u32);
            names.push(Arc::clone(&self.names[old as usize]));
        }
        for (name, id) in self.map.iter_mut() {
            *id = remap[*id as usize].0;
            debug_assert_eq!(&*names[*id as usize], &**name);
        }
        self.names = names;
        remap
    }

    /// Build from names in **non-decreasing** string order, so that
    /// symbol order equals string order. Duplicates are ignored.
    pub fn from_sorted<'a, I: IntoIterator<Item = &'a str>>(names: I) -> Self {
        let mut interner = Interner::default();
        for name in names {
            debug_assert!(
                interner.names.last().map_or(true, |p| &**p <= name),
                "interner input must be sorted: `{name}` after `{}`",
                interner.names.last().map_or("", |p| p)
            );
            interner.intern(name);
        }
        interner
    }

    /// The symbol for `name`, or [`Symbol::UNKNOWN`] if it was never
    /// interned.
    pub fn sym(&self, name: &str) -> Symbol {
        match self.map.get(name) {
            Some(&id) => Symbol(id),
            None => Symbol::UNKNOWN,
        }
    }

    /// The string a symbol stands for (`"<unknown>"` for the sentinel).
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.names.get(sym.0 as usize).map_or("<unknown>", |n| n)
    }

    /// The shared text of a symbol — a refcount bump, not a copy
    /// (`"<unknown>"` is allocated fresh for the sentinel).
    pub fn resolve_istr(&self, sym: Symbol) -> IStr {
        match self.names.get(sym.0 as usize) {
            Some(n) => IStr(Arc::clone(n)),
            None => IStr::from("<unknown>"),
        }
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_order_matches_string_order() {
        let i = Interner::from_sorted(["<error>", "alpha", "beta", "gamma"]);
        assert!(i.sym("<error>") < i.sym("alpha"));
        assert!(i.sym("alpha") < i.sym("beta"));
        assert!(i.sym("beta") < i.sym("gamma"));
        assert!(i.sym("gamma") < Symbol::UNKNOWN);
    }

    #[test]
    fn unknown_names_resolve_to_sentinel() {
        let i = Interner::from_sorted(["x"]);
        assert_eq!(i.sym("y"), Symbol::UNKNOWN);
        assert_eq!(i.resolve(Symbol::UNKNOWN), "<unknown>");
        assert_eq!(i.resolve(i.sym("x")), "x");
    }

    #[test]
    fn duplicates_are_collapsed() {
        let i = Interner::from_sorted(["a", "a", "b"]);
        assert_eq!(i.len(), 2);
        assert_eq!(i.sym("a").index(), 0);
        assert_eq!(i.sym("b").index(), 1);
    }

    #[test]
    fn freeze_sorted_renumbers_into_string_order() {
        let mut i = Interner::new();
        let zulu = i.intern("zulu");
        let alpha = i.intern("alpha");
        let mike = i.intern("mike");
        assert_eq!(i.intern("alpha"), alpha, "re-interning is stable");
        let remap = i.freeze_sorted();
        assert_eq!(remap[zulu.index()], i.sym("zulu"));
        assert_eq!(remap[alpha.index()], i.sym("alpha"));
        assert_eq!(remap[mike.index()], i.sym("mike"));
        assert!(i.sym("alpha") < i.sym("mike"));
        assert!(i.sym("mike") < i.sym("zulu"));
        assert_eq!(i.resolve(i.sym("zulu")), "zulu");
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn istr_round_trips_and_compares_with_str() {
        let mut i = Interner::new();
        let s = i.intern("hello");
        i.freeze_sorted();
        let text = i.resolve_istr(s);
        assert_eq!(text, "hello");
        assert_eq!("hello", text);
        assert_eq!(text.as_str(), "hello");
        assert_eq!(text.to_string(), "hello");
        assert_eq!(i.resolve_istr(Symbol::UNKNOWN), "<unknown>");
    }

    #[test]
    fn fnv_hasher_matches_reference_vectors() {
        fn hash(bytes: &[u8]) -> u64 {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        }
        // Standard FNV-1a test vectors.
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x85944171f73967e8);
    }
}
