//! Pretty-printer for the Vault surface AST.
//!
//! The output re-parses to the same AST (modulo spans), which the property
//! tests exercise. It is also used by the CLI `dump` mode.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a whole program as Vault source.
pub fn program_to_string(p: &Program) -> String {
    let mut out = Printer::default();
    for d in &p.decls {
        out.decl(d);
        out.push("\n");
    }
    out.buf
}

/// Render a single type.
pub fn type_to_string(t: &Type) -> String {
    let mut out = Printer::default();
    out.ty(t);
    out.buf
}

/// Render a single expression.
pub fn expr_to_string(e: &Expr) -> String {
    let mut out = Printer::default();
    out.expr(e);
    out.buf
}

/// Render a single statement.
pub fn stmt_to_string(s: &Stmt) -> String {
    let mut out = Printer::default();
    out.stmt(s);
    out.buf
}

#[derive(Default)]
struct Printer {
    buf: String,
    indent: usize,
}

impl Printer {
    fn push(&mut self, s: &str) {
        self.buf.push_str(s);
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.buf.push_str("  ");
        }
        self.buf.push_str(s);
        self.buf.push('\n');
    }

    fn open_line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.buf.push_str("  ");
        }
        self.buf.push_str(s);
    }

    fn decl(&mut self, d: &Decl) {
        match d {
            Decl::Interface(i) => {
                self.line(&format!("interface {} {{", i.name));
                self.indent += 1;
                for d in &i.decls {
                    self.decl(d);
                }
                self.indent -= 1;
                self.line("}");
            }
            Decl::Struct(s) => {
                self.open_line(&format!("struct {}{} {{", s.name, tparams(&s.params)));
                self.push("\n");
                self.indent += 1;
                for f in &s.fields {
                    let mut p = Printer::default();
                    p.ty(&f.ty);
                    self.line(&format!("{} {};", p.buf, f.name));
                }
                self.indent -= 1;
                self.line("}");
            }
            Decl::Variant(v) => {
                let ctors: Vec<String> = v.ctors.iter().map(ctor_decl).collect();
                self.line(&format!(
                    "variant {}{} [ {} ];",
                    v.name,
                    tparams(&v.params),
                    ctors.join(" | ")
                ));
            }
            Decl::TypeAlias(a) => match &a.body {
                None => self.line(&format!("type {}{};", a.name, tparams(&a.params))),
                Some(Type {
                    kind: TypeKind::Fn(ft),
                    ..
                }) => {
                    let mut p = Printer::default();
                    p.ty(&ft.ret);
                    let params: Vec<String> = ft.params.iter().map(type_to_string).collect();
                    let eff = ft
                        .effect
                        .as_ref()
                        .map(|e| format!(" {}", effect(e)))
                        .unwrap_or_default();
                    self.line(&format!(
                        "type {}{} = {} Routine({}){};",
                        a.name,
                        tparams(&a.params),
                        p.buf,
                        params.join(", "),
                        eff
                    ));
                }
                Some(t) => {
                    self.line(&format!(
                        "type {}{} = {};",
                        a.name,
                        tparams(&a.params),
                        type_to_string(t)
                    ));
                }
            },
            Decl::Stateset(s) => {
                let chains: Vec<String> = s
                    .chains
                    .iter()
                    .map(|c| {
                        c.iter()
                            .map(|i| i.name.clone())
                            .collect::<Vec<_>>()
                            .join(" < ")
                    })
                    .collect();
                self.line(&format!("stateset {} = [ {} ];", s.name, chains.join(", ")));
            }
            Decl::GlobalKey(k) => match &k.stateset {
                Some(ss) => self.line(&format!("key {} @ {};", k.name, ss)),
                None => self.line(&format!("key {};", k.name)),
            },
            Decl::Fun(f) => self.fun(f),
            Decl::Import(i) => self.line(&format!("import \"{}\";", i.path)),
        }
    }

    fn fun(&mut self, f: &FunDecl) {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| {
                let t = type_to_string(&p.ty);
                match &p.name {
                    Some(n) => format!("{t} {n}"),
                    None => t,
                }
            })
            .collect();
        let eff = f
            .effect
            .as_ref()
            .map(|e| format!(" {}", effect(e)))
            .unwrap_or_default();
        let head = format!(
            "{} {}{}({}){}",
            type_to_string(&f.ret),
            f.name,
            tparams(&f.tparams),
            params.join(", "),
            eff
        );
        match &f.body {
            None => self.line(&format!("{head};")),
            Some(b) => {
                self.open_line(&head);
                self.push(" ");
                self.block(b);
                self.push("\n");
            }
        }
    }

    fn block(&mut self, b: &Block) {
        self.push("{\n");
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
        self.open_line("}");
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Local { ty, name, init } => {
                let t = type_to_string(ty);
                match init {
                    Some(e) => self.line(&format!("{t} {name} = {};", expr_to_string(e))),
                    None => self.line(&format!("{t} {name};")),
                }
            }
            StmtKind::NestedFun(f) => self.fun(f),
            StmtKind::Expr(e) => self.line(&format!("{};", expr_to_string(e))),
            StmtKind::Assign { lhs, rhs } => {
                self.line(&format!(
                    "{} = {};",
                    expr_to_string(lhs),
                    expr_to_string(rhs)
                ));
            }
            StmtKind::Incr(e) => self.line(&format!("{}++;", expr_to_string(e))),
            StmtKind::Decr(e) => self.line(&format!("{}--;", expr_to_string(e))),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.open_line(&format!("if ({}) ", expr_to_string(cond)));
                self.stmt_inline(then_branch);
                if let Some(e) = else_branch {
                    self.open_line("else ");
                    self.stmt_inline(e);
                }
            }
            StmtKind::While { cond, body } => {
                self.open_line(&format!("while ({}) ", expr_to_string(cond)));
                self.stmt_inline(body);
            }
            StmtKind::Switch { scrutinee, arms } => {
                self.line(&format!("switch ({}) {{", expr_to_string(scrutinee)));
                self.indent += 1;
                for arm in arms {
                    let binders = if arm.binders.is_empty() {
                        String::new()
                    } else {
                        let bs: Vec<String> = arm
                            .binders
                            .iter()
                            .map(|b| match b {
                                PatBinder::Name(n) => n.name.to_string(),
                                PatBinder::Wild(_) => "_".to_string(),
                            })
                            .collect();
                        format!("({})", bs.join(", "))
                    };
                    self.line(&format!("case '{}{}:", arm.ctor, binders));
                    self.indent += 1;
                    for s in &arm.body {
                        self.stmt(s);
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("}");
            }
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Return(Some(e)) => self.line(&format!("return {};", expr_to_string(e))),
            StmtKind::Free(e) => self.line(&format!("free({});", expr_to_string(e))),
            StmtKind::Block(b) => {
                self.open_line("");
                self.block(b);
                self.push("\n");
            }
        }
    }

    /// Print a statement used as an `if`/`while` body: blocks go inline,
    /// other statements on a fresh line.
    fn stmt_inline(&mut self, s: &Stmt) {
        if let StmtKind::Block(b) = &s.kind {
            // Trim the indent the open_line already produced.
            self.block(b);
            self.push("\n");
        } else {
            self.push("\n");
            self.indent += 1;
            self.stmt(s);
            self.indent -= 1;
        }
    }

    fn ty(&mut self, t: &Type) {
        match &t.kind {
            TypeKind::Void => self.push("void"),
            TypeKind::Int => self.push("int"),
            TypeKind::Bool => self.push("bool"),
            TypeKind::Byte => self.push("byte"),
            TypeKind::Str => self.push("string"),
            TypeKind::Named { name, args } => {
                self.push(&name.name);
                if !args.is_empty() {
                    self.push("<");
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.push(", ");
                        }
                        match a {
                            TypeArg::Type(t) => self.ty(t),
                        }
                    }
                    self.push(">");
                }
            }
            TypeKind::Array(inner) => {
                self.ty(inner);
                self.push("[]");
            }
            TypeKind::Tuple(ts) => {
                self.push("(");
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.ty(t);
                }
                self.push(")");
            }
            TypeKind::Tracked { key, inner } => {
                match key {
                    Some(k) => {
                        self.push("tracked(");
                        self.push(&k.name);
                        self.push(") ");
                    }
                    None => self.push("tracked "),
                }
                self.ty(inner);
            }
            TypeKind::Guarded { guards, inner } => {
                if guards.len() == 1 && !matches!(guards[0].state, Some(StateRef::Bounded { .. })) {
                    self.push(&key_state_ref(&guards[0]));
                } else {
                    self.push("(");
                    let gs: Vec<String> = guards.iter().map(key_state_ref).collect();
                    self.push(&gs.join(", "));
                    self.push(")");
                }
                self.push(":");
                self.ty(inner);
            }
            TypeKind::Fn(ft) => {
                self.ty(&ft.ret);
                self.push(" Routine(");
                for (i, p) in ft.params.iter().enumerate() {
                    if i > 0 {
                        self.push(", ");
                    }
                    self.ty(p);
                }
                self.push(")");
                if let Some(e) = &ft.effect {
                    self.push(" ");
                    self.push(&effect(e));
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        let _ = write!(self.buf, "{}", expr_str(e, 0));
    }
}

fn ctor_decl(c: &CtorDecl) -> String {
    let mut s = format!("'{}", c.name);
    if !c.args.is_empty() {
        let args: Vec<String> = c.args.iter().map(type_to_string).collect();
        let _ = write!(s, "({})", args.join(", "));
    }
    if !c.captures.is_empty() {
        let caps: Vec<String> = c.captures.iter().map(key_state_ref).collect();
        let _ = write!(s, " {{{}}}", caps.join(", "));
    }
    s
}

fn key_state_ref(k: &KeyStateRef) -> String {
    match &k.state {
        None => k.key.name.to_string(),
        Some(StateRef::Name(s)) => format!("{}@{}", k.key, s),
        Some(StateRef::Bounded { var, bound }) => {
            format!("{}@({} <= {})", k.key, var, bound)
        }
    }
}

fn tparams(ps: &[TParam]) -> String {
    if ps.is_empty() {
        return String::new();
    }
    let items: Vec<String> = ps
        .iter()
        .map(|p| match p {
            TParam::Type(n) => format!("type {n}"),
            TParam::Key(n) => format!("key {n}"),
            TParam::State { name, bound: None } => format!("state {name}"),
            TParam::State {
                name,
                bound: Some(b),
            } => format!("state {name} <= {b}"),
        })
        .collect();
    format!("<{}>", items.join(", "))
}

fn effect(e: &Effect) -> String {
    let items: Vec<String> = e
        .items
        .iter()
        .map(|i| match i {
            EffectItem::Keep { key, from, to } => {
                let mut s = key.name.to_string();
                if let Some(f) = from {
                    s.push('@');
                    s.push_str(&state_ref(f));
                }
                if let Some(t) = to {
                    s.push_str(" -> ");
                    s.push_str(&t.name);
                }
                s
            }
            EffectItem::Consume { key, state } => match state {
                Some(st) => format!("-{}@{}", key, state_ref(st)),
                None => format!("-{key}"),
            },
            EffectItem::Produce { key, state } => match state {
                Some(st) => format!("+{key}@{st}"),
                None => format!("+{key}"),
            },
            EffectItem::Fresh { key, state } => match state {
                Some(st) => format!("new {key}@{st}"),
                None => format!("new {key}"),
            },
            EffectItem::Uses { cap } => format!("uses {cap}"),
        })
        .collect();
    format!("[{}]", items.join(", "))
}

fn state_ref(s: &StateRef) -> String {
    match s {
        StateRef::Name(n) => n.name.to_string(),
        StateRef::Bounded { var, bound } => format!("({var} <= {bound})"),
    }
}

/// Expression printing with minimal parentheses based on precedence.
fn expr_str(e: &Expr, parent_prec: u8) -> String {
    match &e.kind {
        ExprKind::IntLit(n) => n.to_string(),
        ExprKind::BoolLit(b) => b.to_string(),
        ExprKind::StrLit(s) => format!("{s:?}"),
        ExprKind::Var(i) => i.name.to_string(),
        ExprKind::Field(base, f) => format!("{}.{}", expr_str(base, 100), f),
        ExprKind::Index(base, i) => format!("{}[{}]", expr_str(base, 100), expr_str(i, 0)),
        ExprKind::Call { callee, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| expr_str(a, 0)).collect();
            format!("{}({})", expr_str(callee, 100), args.join(", "))
        }
        ExprKind::Ctor { name, args, keys } => {
            let mut s = format!("'{name}");
            if !args.is_empty() {
                let args: Vec<String> = args.iter().map(|a| expr_str(a, 0)).collect();
                let _ = write!(s, "({})", args.join(", "));
            }
            if !keys.is_empty() {
                let ks: Vec<String> = keys.iter().map(key_state_ref).collect();
                let _ = write!(s, "{{{}}}", ks.join(", "));
            }
            s
        }
        ExprKind::New {
            region,
            ty,
            targs,
            inits,
        } => {
            let mut s = String::from("new");
            match region {
                Some(r) => {
                    let _ = write!(s, "({})", expr_str(r, 0));
                }
                None => s.push_str(" tracked"),
            }
            let _ = write!(s, " {ty}");
            if !targs.is_empty() {
                let ts: Vec<String> = targs
                    .iter()
                    .map(|a| match a {
                        TypeArg::Type(t) => type_to_string(t),
                    })
                    .collect();
                let _ = write!(s, "<{}>", ts.join(", "));
            }
            s.push_str(" {");
            for init in inits {
                let _ = write!(s, "{}={}; ", init.name, expr_str(&init.value, 0));
            }
            s.push('}');
            s
        }
        ExprKind::Unary(op, inner) => {
            let sym = match op {
                UnOp::Not => "!",
                UnOp::Neg => "-",
            };
            let body = format!("{sym}{}", expr_str(inner, 90));
            if parent_prec > 90 {
                format!("({body})")
            } else {
                body
            }
        }
        ExprKind::Binary(op, l, r) => {
            let prec = bin_prec(*op);
            let body = format!(
                "{} {} {}",
                expr_str(l, prec),
                op.symbol(),
                expr_str(r, prec + 1)
            );
            if parent_prec > prec {
                format!("({body})")
            } else {
                body
            }
        }
    }
}

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 10,
        BinOp::And => 20,
        BinOp::Eq | BinOp::Ne => 30,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 40,
        BinOp::Add | BinOp::Sub => 50,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 60,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::DiagSink;
    use crate::parser::parse_program;

    /// Strip spans by re-parsing: two programs are equal if their printed
    /// forms agree after a parse→print round trip.
    fn round_trip(src: &str) {
        let mut d1 = DiagSink::new();
        let p1 = parse_program(src, &mut d1);
        assert!(
            !d1.has_errors(),
            "first parse failed: {:?}",
            d1.diagnostics()
        );
        let printed = program_to_string(&p1);
        let mut d2 = DiagSink::new();
        let p2 = parse_program(&printed, &mut d2);
        assert!(
            !d2.has_errors(),
            "printed source failed to parse:\n{printed}\n{:?}",
            d2.diagnostics()
        );
        let printed2 = program_to_string(&p2);
        assert_eq!(printed, printed2, "printing is not a fixpoint");
    }

    #[test]
    fn round_trip_region_program() {
        round_trip(
            "interface REGION {\n\
               type region;\n\
               tracked(R) region create() [new R];\n\
               void delete(tracked(R) region) [-R];\n\
             }\n\
             struct point { int x; int y; }\n\
             void okay() {\n\
               tracked(R) region rgn = Region.create();\n\
               R:point pt = new(rgn) point {x=1; y=2;};\n\
               pt.x++;\n\
               Region.delete(rgn);\n\
             }",
        );
    }

    #[test]
    fn round_trip_variants_and_switch() {
        round_trip(
            "variant opt_key<key K> [ 'NoKey | 'SomeKey {K} ];\n\
             void f(tracked(F) FILE f) [-F] {\n\
               tracked opt_key<F> flag;\n\
               if (close_early(f)) { flag = 'NoKey; } else { flag = 'SomeKey{F}; }\n\
               switch (flag) { case 'NoKey: return; case 'SomeKey: fclose(f); }\n\
             }",
        );
    }

    #[test]
    fn round_trip_stateset_and_effects() {
        round_trip(
            "stateset IRQ_LEVEL = [ PASSIVE_LEVEL < APC_LEVEL < DISPATCH_LEVEL < DIRQL ];\n\
             key IRQL @ IRQ_LEVEL;\n\
             type KIRQL<state S>;\n\
             KIRQL<level> KeAcquireSpinLock(KSPIN_LOCK l)\n\
               [IRQL@(level <= DISPATCH_LEVEL) -> DISPATCH_LEVEL];",
        );
    }

    #[test]
    fn round_trip_expressions() {
        round_trip(
            "int f(int a, int b) {\n\
               int c = a * (b + 2) - -a;\n\
               bool d = a < b && b <= c || !(a == b);\n\
               return c % 3;\n\
             }",
        );
    }

    #[test]
    fn printed_precedence_is_minimal() {
        let mut d = DiagSink::new();
        let e = crate::parser::parse_expr("a + b * c", &mut d).unwrap();
        assert_eq!(expr_to_string(&e), "a + b * c");
        let e = crate::parser::parse_expr("(a + b) * c", &mut d).unwrap();
        assert_eq!(expr_to_string(&e), "(a + b) * c");
    }
}
