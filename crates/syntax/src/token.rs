//! Token definitions for the Vault surface language.

use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // keyword and punctuation variants are self-describing
pub enum TokenKind {
    /// An identifier such as `rgn` or `Region`.
    Ident(String),
    /// A constructor name including its leading tick, e.g. `'SomeKey`.
    CtorIdent(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (contents, unescaped).
    Str(String),

    // keywords
    KwStruct,
    KwVariant,
    KwType,
    KwStateset,
    KwKey,
    KwState,
    KwInterface,
    KwModule,
    KwTracked,
    KwNew,
    KwFree,
    KwSwitch,
    KwCase,
    KwDefault,
    KwIf,
    KwElse,
    KwWhile,
    KwReturn,
    KwTrue,
    KwFalse,
    KwInt,
    KwBool,
    KwByte,
    KwVoid,
    KwString,

    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    Eq,
    Comma,
    Semi,
    Colon,
    At,
    Dot,
    Pipe,
    Arrow,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    AndAnd,
    OrOr,
    Underscore,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match s {
            "struct" => KwStruct,
            "variant" => KwVariant,
            "type" => KwType,
            "stateset" => KwStateset,
            "key" => KwKey,
            "state" => KwState,
            "interface" => KwInterface,
            "module" => KwModule,
            "tracked" => KwTracked,
            "new" => KwNew,
            "free" => KwFree,
            "switch" => KwSwitch,
            "case" => KwCase,
            "default" => KwDefault,
            "if" => KwIf,
            "else" => KwElse,
            "while" => KwWhile,
            "return" => KwReturn,
            "true" => KwTrue,
            "false" => KwFalse,
            "int" => KwInt,
            "bool" => KwBool,
            "byte" => KwByte,
            "void" => KwVoid,
            "string" => KwString,
            _ => return None,
        })
    }

    /// Short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            CtorIdent(s) => format!("constructor `'{s}`"),
            Int(n) => format!("integer `{n}`"),
            Str(_) => "string literal".to_string(),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical lexeme for fixed tokens (empty for variable ones).
    pub fn lexeme(&self) -> &'static str {
        use TokenKind::*;
        match self {
            KwStruct => "struct",
            KwVariant => "variant",
            KwType => "type",
            KwStateset => "stateset",
            KwKey => "key",
            KwState => "state",
            KwInterface => "interface",
            KwModule => "module",
            KwTracked => "tracked",
            KwNew => "new",
            KwFree => "free",
            KwSwitch => "switch",
            KwCase => "case",
            KwDefault => "default",
            KwIf => "if",
            KwElse => "else",
            KwWhile => "while",
            KwReturn => "return",
            KwTrue => "true",
            KwFalse => "false",
            KwInt => "int",
            KwBool => "bool",
            KwByte => "byte",
            KwVoid => "void",
            KwString => "string",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            NotEq => "!=",
            Eq => "=",
            Comma => ",",
            Semi => ";",
            Colon => ":",
            At => "@",
            Dot => ".",
            Pipe => "|",
            Arrow => "->",
            PlusPlus => "++",
            MinusMinus => "--",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Bang => "!",
            AndAnd => "&&",
            OrOr => "||",
            Underscore => "_",
            Ident(_) | CtorIdent(_) | Int(_) | Str(_) | Eof => "",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token paired with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("tracked"), Some(TokenKind::KwTracked));
        assert_eq!(TokenKind::keyword("stateset"), Some(TokenKind::KwStateset));
        assert_eq!(TokenKind::keyword("Region"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn describe_is_informative() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
        assert_eq!(
            TokenKind::CtorIdent("Ok".into()).describe(),
            "constructor `'Ok`"
        );
    }
}
