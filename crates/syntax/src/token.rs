//! Token definitions for the Vault surface language.

use crate::intern::{Interner, Symbol};
use crate::span::Span;

/// The kind of a lexical token.
///
/// Identifier-shaped tokens carry an interned [`Symbol`] instead of an
/// owned `String`: the lexer interns each name once into the unit's
/// [`Interner`], so tokenizing allocates nothing per occurrence and the
/// parser can put symbols straight into the AST.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // keyword and punctuation variants are self-describing
pub enum TokenKind {
    /// An identifier such as `rgn` or `Region` (interned).
    Ident(Symbol),
    /// A constructor name (without its leading tick), e.g. the `SomeKey`
    /// of `'SomeKey` (interned).
    CtorIdent(Symbol),
    /// An integer literal.
    Int(i64),
    /// A string literal (contents, unescaped). String literals are rare
    /// enough that owning the unescaped text is not a hot-path cost.
    Str(String),

    // keywords
    KwStruct,
    KwVariant,
    KwType,
    KwStateset,
    KwKey,
    KwState,
    KwInterface,
    KwModule,
    KwTracked,
    KwNew,
    KwFree,
    KwSwitch,
    KwCase,
    KwDefault,
    KwIf,
    KwElse,
    KwWhile,
    KwReturn,
    KwTrue,
    KwFalse,
    KwInt,
    KwBool,
    KwByte,
    KwVoid,
    KwString,

    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    Eq,
    Comma,
    Semi,
    Colon,
    At,
    Dot,
    Pipe,
    Arrow,
    PlusPlus,
    MinusMinus,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    AndAnd,
    OrOr,
    Underscore,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match s {
            "struct" => KwStruct,
            "variant" => KwVariant,
            "type" => KwType,
            "stateset" => KwStateset,
            "key" => KwKey,
            "state" => KwState,
            "interface" => KwInterface,
            "module" => KwModule,
            "tracked" => KwTracked,
            "new" => KwNew,
            "free" => KwFree,
            "switch" => KwSwitch,
            "case" => KwCase,
            "default" => KwDefault,
            "if" => KwIf,
            "else" => KwElse,
            "while" => KwWhile,
            "return" => KwReturn,
            "true" => KwTrue,
            "false" => KwFalse,
            "int" => KwInt,
            "bool" => KwBool,
            "byte" => KwByte,
            "void" => KwVoid,
            "string" => KwString,
            _ => return None,
        })
    }

    /// Short human-readable description used in parse errors. Interned
    /// identifier names are resolved against the unit's `interner`.
    pub fn describe(&self, interner: &Interner) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{}`", interner.resolve(*s)),
            CtorIdent(s) => format!("constructor `'{}`", interner.resolve(*s)),
            Int(n) => format!("integer `{n}`"),
            Str(_) => "string literal".to_string(),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical lexeme for fixed tokens (empty for variable ones).
    pub fn lexeme(&self) -> &'static str {
        use TokenKind::*;
        match self {
            KwStruct => "struct",
            KwVariant => "variant",
            KwType => "type",
            KwStateset => "stateset",
            KwKey => "key",
            KwState => "state",
            KwInterface => "interface",
            KwModule => "module",
            KwTracked => "tracked",
            KwNew => "new",
            KwFree => "free",
            KwSwitch => "switch",
            KwCase => "case",
            KwDefault => "default",
            KwIf => "if",
            KwElse => "else",
            KwWhile => "while",
            KwReturn => "return",
            KwTrue => "true",
            KwFalse => "false",
            KwInt => "int",
            KwBool => "bool",
            KwByte => "byte",
            KwVoid => "void",
            KwString => "string",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            NotEq => "!=",
            Eq => "=",
            Comma => ",",
            Semi => ";",
            Colon => ":",
            At => "@",
            Dot => ".",
            Pipe => "|",
            Arrow => "->",
            PlusPlus => "++",
            MinusMinus => "--",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Bang => "!",
            AndAnd => "&&",
            OrOr => "||",
            Underscore => "_",
            Ident(_) | CtorIdent(_) | Int(_) | Str(_) | Eof => "",
        }
    }
}

/// A token paired with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it came from.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("tracked"), Some(TokenKind::KwTracked));
        assert_eq!(TokenKind::keyword("stateset"), Some(TokenKind::KwStateset));
        assert_eq!(TokenKind::keyword("Region"), None);
        assert_eq!(TokenKind::keyword(""), None);
    }

    #[test]
    fn describe_is_informative() {
        let mut interner = Interner::new();
        let x = interner.intern("x");
        let ok = interner.intern("Ok");
        assert_eq!(TokenKind::Ident(x).describe(&interner), "identifier `x`");
        assert_eq!(TokenKind::Arrow.describe(&interner), "`->`");
        assert_eq!(TokenKind::Eof.describe(&interner), "end of input");
        assert_eq!(
            TokenKind::CtorIdent(ok).describe(&interner),
            "constructor `'Ok`"
        );
    }
}
