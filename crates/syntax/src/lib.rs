//! # vault-syntax
//!
//! Front end for the Vault surface language from *Enforcing High-Level
//! Protocols in Low-Level Software* (DeLine & Fähndrich, PLDI 2001):
//! source maps, diagnostics, lexer, AST, parser, and pretty-printer.
//!
//! The surface language is C-like, extended with the paper's resource
//! management features: `tracked` types, guarded types (`K@open : FILE`),
//! effect clauses on functions (`[S@raw->named]`), keyed variants
//! (`'SomeKey{K}`), statesets (partial orders of key states), and globally
//! declared keys such as `IRQL`.
//!
//! ## Example
//!
//! ```
//! use vault_syntax::{parse_program, DiagSink};
//!
//! let mut diags = DiagSink::new();
//! let program = parse_program(
//!     "void fclose(tracked(F) FILE f) [-F];",
//!     &mut diags,
//! );
//! assert!(!diags.has_errors());
//! assert_eq!(program.functions()[0].name.name, "fclose");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod idents;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{ImportDecl, Program};
pub use diag::{Attribution, Code, DiagSink, DiagView, Diagnostic, LabelView, Severity};
pub use idents::{ident_names, remap_idents, remap_idents_expr, remap_idents_fun};
pub use intern::{FnvBuildHasher, IStr, Interner, Symbol};
pub use parser::{
    parse_expr, parse_program, parse_program_with_depth, parse_program_with_depth_timed,
    FrontEndTiming, DEFAULT_PARSER_DEPTH,
};
pub use span::{SourceMap, Span};
