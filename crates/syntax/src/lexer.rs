//! Hand-written lexer for the Vault surface language.
//!
//! Produces a `Vec<Token>` terminated by [`TokenKind::Eof`]. Comments (`//`
//! line and `/* ... */` block) and whitespace are skipped. Lexical errors are
//! reported through a [`DiagSink`] and the offending characters skipped, so a
//! single pass can report multiple errors.
//!
//! Identifiers are interned *at lex time* into the caller's
//! [`Interner`]: tokenizing a 10 kLOC unit allocates one `Arc<str>` per
//! distinct name instead of one `String` per identifier occurrence
//! (see [`lex_into`]).

use crate::diag::{Code, DiagSink};
use crate::intern::Interner;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lex `src` into tokens with a throwaway interner. Convenience for
/// tests and token-shape probes; anything that later resolves the
/// interned names must use [`lex_into`] and keep the interner.
pub fn lex(src: &str, diags: &mut DiagSink) -> Vec<Token> {
    let mut interner = Interner::new();
    lex_into(src, diags, &mut interner)
}

/// Lex `src` into tokens, reporting lexical errors into `diags` and
/// interning every identifier into `interner` (first-seen order; call
/// [`Interner::freeze_sorted`] afterwards to establish the checker's
/// ordering discipline).
pub fn lex_into(src: &str, diags: &mut DiagSink, interner: &mut Interner) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        diags,
        interner,
    }
    .run()
}

struct Lexer<'a, 'd> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    diags: &'d mut DiagSink,
    interner: &'d mut Interner,
}

impl<'a, 'd> Lexer<'a, 'd> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start as u32, start as u32),
                });
                return out;
            };
            let kind = self.next_kind(b, start);
            if let Some(kind) = kind {
                out.push(Token {
                    kind,
                    span: Span::new(start as u32, self.pos as u32),
                });
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => self.bump(),
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(b) = self.peek() {
                        if b == b'*' && self.peek2() == Some(b'/') {
                            self.bump();
                            self.bump();
                            closed = true;
                            break;
                        }
                        self.bump();
                    }
                    if !closed {
                        self.diags.error(
                            Code::LexUnterminated,
                            Span::new(start as u32, self.pos as u32),
                            "unterminated block comment",
                        );
                    }
                }
                _ => return,
            }
        }
    }

    fn next_kind(&mut self, b: u8, start: usize) -> Option<TokenKind> {
        use TokenKind::*;
        match b {
            b'a'..=b'z' | b'A'..=b'Z' => Some(self.ident(start)),
            b'_' => {
                // `_` alone is a wildcard; `_foo` is an identifier.
                if self
                    .peek2()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    Some(self.ident(start))
                } else {
                    self.bump();
                    Some(Underscore)
                }
            }
            b'0'..=b'9' => Some(self.number(start)),
            b'\'' => {
                self.bump();
                if self
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                {
                    let istart = self.pos;
                    self.eat_ident_tail();
                    Some(CtorIdent(self.interner.intern(&self.src[istart..self.pos])))
                } else {
                    self.diags.error(
                        Code::LexInvalidChar,
                        Span::new(start as u32, self.pos as u32),
                        "expected constructor name after `'`",
                    );
                    None
                }
            }
            b'"' => Some(self.string(start)),
            b'(' => self.one(LParen),
            b')' => self.one(RParen),
            b'{' => self.one(LBrace),
            b'}' => self.one(RBrace),
            b'[' => self.one(LBracket),
            b']' => self.one(RBracket),
            b',' => self.one(Comma),
            b';' => self.one(Semi),
            b':' => self.one(Colon),
            b'@' => self.one(At),
            b'.' => self.one(Dot),
            b'%' => self.one(Percent),
            b'*' => self.one(Star),
            b'/' => self.one(Slash),
            b'<' => self.one_or_two(b'=', Lt, Le),
            b'>' => self.one_or_two(b'=', Gt, Ge),
            b'=' => self.one_or_two(b'=', Eq, EqEq),
            b'!' => self.one_or_two(b'=', Bang, NotEq),
            b'+' => self.one_or_two(b'+', Plus, PlusPlus),
            b'-' => {
                self.bump();
                match self.peek() {
                    Some(b'>') => {
                        self.bump();
                        Some(Arrow)
                    }
                    Some(b'-') => {
                        self.bump();
                        Some(MinusMinus)
                    }
                    _ => Some(Minus),
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    Some(AndAnd)
                } else {
                    self.diags.error(
                        Code::LexInvalidChar,
                        Span::new(start as u32, self.pos as u32),
                        "single `&` is not a Vault operator",
                    );
                    None
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Some(OrOr)
                } else {
                    Some(Pipe)
                }
            }
            other => {
                // Skip the whole (possibly multi-byte) character so the
                // next token starts on a character boundary.
                self.pos += utf8_len(other);
                let ch = self.src[start..self.pos].chars().next().unwrap_or('?');
                self.diags.error(
                    Code::LexInvalidChar,
                    Span::new(start as u32, self.pos as u32),
                    format!("invalid character `{ch}`"),
                );
                None
            }
        }
    }

    fn one(&mut self, kind: TokenKind) -> Option<TokenKind> {
        self.bump();
        Some(kind)
    }

    fn one_or_two(&mut self, second: u8, one: TokenKind, two: TokenKind) -> Option<TokenKind> {
        self.bump();
        if self.peek() == Some(second) {
            self.bump();
            Some(two)
        } else {
            Some(one)
        }
    }

    fn eat_ident_tail(&mut self) {
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
    }

    fn ident(&mut self, start: usize) -> TokenKind {
        self.bump();
        self.eat_ident_tail();
        let text = &self.src[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(self.interner.intern(text)))
    }

    fn number(&mut self, start: usize) -> TokenKind {
        // Hex literals appear in driver code (0x...); support them.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.bump();
            }
            let text = &self.src[digits_start..self.pos];
            return match i64::from_str_radix(text, 16) {
                Ok(n) if !text.is_empty() => TokenKind::Int(n),
                _ => {
                    self.diags.error(
                        Code::LexIntOverflow,
                        Span::new(start as u32, self.pos as u32),
                        "invalid hexadecimal literal",
                    );
                    TokenKind::Int(0)
                }
            };
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        match text.parse::<i64>() {
            Ok(n) => TokenKind::Int(n),
            Err(_) => {
                self.diags.error(
                    Code::LexIntOverflow,
                    Span::new(start as u32, self.pos as u32),
                    "integer literal out of range",
                );
                TokenKind::Int(0)
            }
        }
    }

    fn string(&mut self, start: usize) -> TokenKind {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => {
                    self.diags.error(
                        Code::LexUnterminated,
                        Span::new(start as u32, self.pos as u32),
                        "unterminated string literal",
                    );
                    return TokenKind::Str(value);
                }
                Some(b'"') => {
                    self.bump();
                    return TokenKind::Str(value);
                }
                Some(b'\\') => {
                    self.bump();
                    match self.peek() {
                        Some(b'n') => value.push('\n'),
                        Some(b't') => value.push('\t'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'0') => value.push('\0'),
                        other => {
                            self.diags.error(
                                Code::LexInvalidChar,
                                Span::new(self.pos as u32 - 1, self.pos as u32 + 1),
                                format!(
                                    "unknown escape `\\{}`",
                                    other.map(|c| c as char).unwrap_or(' ')
                                ),
                            );
                        }
                    }
                    // Skip the escaped character, which may be multi-byte.
                    if let Some(b) = self.peek() {
                        self.pos += utf8_len(b);
                    }
                }
                Some(b) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let ch_len = utf8_len(b);
                    value.push_str(&self.src[self.pos..self.pos + ch_len]);
                    self.pos += ch_len;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lex error-free source, returning the kinds plus the interner so
    /// tests can look up expected identifier symbols by name.
    fn kinds(src: &str) -> (Vec<TokenKind>, Interner) {
        let mut diags = DiagSink::new();
        let mut interner = Interner::new();
        let toks = lex_into(src, &mut diags, &mut interner);
        assert!(!diags.has_errors(), "unexpected lex errors: {:?}", diags);
        (toks.into_iter().map(|t| t.kind).collect(), interner)
    }

    #[test]
    fn lexes_declaration() {
        use TokenKind::*;
        let (toks, i) = kinds("tracked(R) region rgn = Region.create();");
        let id = |n: &str| Ident(i.sym(n));
        assert_eq!(
            toks,
            vec![
                KwTracked,
                LParen,
                id("R"),
                RParen,
                id("region"),
                id("rgn"),
                Eq,
                id("Region"),
                Dot,
                id("create"),
                LParen,
                RParen,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_effect_clause() {
        use TokenKind::*;
        let (toks, i) = kinds("[S@raw->named, -K, +N@ready, new R@b]");
        let id = |n: &str| Ident(i.sym(n));
        assert_eq!(
            toks,
            vec![
                LBracket,
                id("S"),
                At,
                id("raw"),
                Arrow,
                id("named"),
                Comma,
                Minus,
                id("K"),
                Comma,
                Plus,
                id("N"),
                At,
                id("ready"),
                Comma,
                KwNew,
                id("R"),
                At,
                id("b"),
                RBracket,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_ctor_and_bounds() {
        use TokenKind::*;
        let (toks, i) = kinds("'SomeKey{F} (level <= DISPATCH_LEVEL)");
        let id = |n: &str| Ident(i.sym(n));
        assert_eq!(
            toks,
            vec![
                CtorIdent(i.sym("SomeKey")),
                LBrace,
                id("F"),
                RBrace,
                LParen,
                id("level"),
                Le,
                id("DISPATCH_LEVEL"),
                RParen,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        let (toks, i) = kinds("x // line\n /* block\n over lines */ y");
        assert_eq!(toks, vec![Ident(i.sym("x")), Ident(i.sym("y")), Eof]);
    }

    #[test]
    fn operators() {
        use TokenKind::*;
        let (toks, _) = kinds("== != <= >= && || ++ -- -> + - * / % ! = < >");
        assert_eq!(
            toks,
            vec![
                EqEq, NotEq, Le, Ge, AndAnd, OrOr, PlusPlus, MinusMinus, Arrow, Plus, Minus, Star,
                Slash, Percent, Bang, Eq, Lt, Gt, Eof
            ]
        );
    }

    #[test]
    fn numbers_including_hex() {
        use TokenKind::*;
        let (toks, _) = kinds("0 42 0x1F");
        assert_eq!(toks, vec![Int(0), Int(42), Int(31), Eof]);
    }

    #[test]
    fn strings_with_escapes() {
        use TokenKind::*;
        let (toks, _) = kinds(r#""hi\n\"there\"""#);
        assert_eq!(toks, vec![Str("hi\n\"there\"".into()), Eof]);
    }

    #[test]
    fn underscore_wildcard_vs_ident() {
        use TokenKind::*;
        let (toks, i) = kinds("_ _tmp");
        assert_eq!(toks, vec![Underscore, Ident(i.sym("_tmp")), Eof]);
    }

    #[test]
    fn identifiers_are_interned_once() {
        let (_, i) = kinds("a b a b a c");
        assert_eq!(i.len(), 3, "one interner entry per distinct name");
    }

    #[test]
    fn unterminated_string_reports() {
        let mut diags = DiagSink::new();
        lex("\"abc", &mut diags);
        assert!(diags.has_code(Code::LexUnterminated));
    }

    #[test]
    fn unterminated_comment_reports() {
        let mut diags = DiagSink::new();
        lex("/* abc", &mut diags);
        assert!(diags.has_code(Code::LexUnterminated));
    }

    #[test]
    fn invalid_char_reports_and_continues() {
        let mut diags = DiagSink::new();
        let toks = lex("a # b", &mut diags);
        assert!(diags.has_code(Code::LexInvalidChar));
        // Both identifiers survive.
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn spans_are_correct() {
        let mut diags = DiagSink::new();
        let toks = lex("free(p)", &mut diags);
        assert_eq!(toks[0].span, Span::new(0, 4));
        assert_eq!(toks[1].span, Span::new(4, 5));
        assert_eq!(toks[2].span, Span::new(5, 6));
        assert_eq!(toks[3].span, Span::new(6, 7));
    }
}
