//! Recursive-descent parser for the Vault surface language.
//!
//! Backtracking is used in the few places where C-family syntax is ambiguous
//! (a statement beginning with a type vs. an expression, and guard prefixes
//! on types). Errors are reported into a [`DiagSink`]; the parser recovers at
//! statement/declaration boundaries so that multiple errors are reported per
//! run.

use crate::ast::*;
use crate::diag::{Code, DiagSink};
use crate::idents::{remap_idents, remap_idents_expr};
use crate::intern::{Interner, Symbol};
use crate::lexer::lex_into;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::sync::Arc;

/// Default bound on grammar recursion depth (see
/// [`parse_program_with_depth`]). Generous for human-written code — the
/// paper corpus peaks well under 40 — while keeping hostile inputs like
/// ten thousand opening parentheses from overflowing the stack.
pub const DEFAULT_PARSER_DEPTH: usize = 256;

/// Parse a whole compilation unit. Returns the (possibly partial) program;
/// callers should consult `diags` for errors.
pub fn parse_program(src: &str, diags: &mut DiagSink) -> Program {
    parse_program_with_depth(src, diags, DEFAULT_PARSER_DEPTH)
}

/// Wall-clock breakdown of the front end, reported by
/// [`parse_program_with_depth_timed`]. Lexing and parsing are measured
/// separately so the per-phase stats can show where cold time goes.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontEndTiming {
    /// Microseconds spent lexing (including identifier interning).
    pub lex_micros: u64,
    /// Microseconds spent parsing, freezing the interner, and remapping
    /// the AST's symbols into string order.
    pub parse_micros: u64,
}

/// [`parse_program`] with an explicit recursion-depth bound. When nesting
/// exceeds `max_depth` the parser reports one [`Code::LimitExceeded`]
/// diagnostic and recovers instead of overflowing the stack.
pub fn parse_program_with_depth(src: &str, diags: &mut DiagSink, max_depth: usize) -> Program {
    parse_program_with_depth_timed(src, diags, max_depth).0
}

/// [`parse_program_with_depth`] plus a per-phase timing breakdown.
pub fn parse_program_with_depth_timed(
    src: &str,
    diags: &mut DiagSink,
    max_depth: usize,
) -> (Program, FrontEndTiming) {
    let mut timing = FrontEndTiming::default();
    let started = std::time::Instant::now();
    let mut interner = Interner::new();
    let tokens = lex_into(src, diags, &mut interner);
    timing.lex_micros = started.elapsed().as_micros() as u64;
    let started = std::time::Instant::now();
    let mut p = Parser {
        tokens,
        pos: 0,
        diags,
        depth: 0,
        max_depth: max_depth.max(1),
        depth_exceeded: false,
        interner,
    };
    let mut program = p.program();
    // Depth overruns inside `speculate` have their diagnostics rolled
    // back with the speculation; make sure the limit is reported exactly
    // once regardless of where it tripped.
    if p.depth_exceeded && !p.diags.has_code(Code::LimitExceeded) {
        let span = p.span_here();
        p.diags.error(
            Code::LimitExceeded,
            span,
            format!("nesting exceeds the parser recursion limit of {max_depth}"),
        );
    }
    // Freeze the interner: add the resolver's sentinel names, renumber
    // every symbol into string order (the checker's ordering
    // discipline), and rewrite the AST through the remap table.
    let mut interner = p.interner;
    interner.intern("<error>");
    interner.intern("<fn>");
    let remap = interner.freeze_sorted();
    remap_idents(&mut program, &mut |id| {
        if id.sym != Symbol::UNKNOWN {
            id.sym = remap[id.sym.index()];
        }
    });
    program.syms = Arc::new(interner);
    timing.parse_micros = started.elapsed().as_micros() as u64;
    (program, timing)
}

/// Parse a single expression (useful in tests and the REPL-ish CLI mode).
pub fn parse_expr(src: &str, diags: &mut DiagSink) -> Option<Expr> {
    let mut interner = Interner::new();
    let tokens = lex_into(src, diags, &mut interner);
    let mut p = Parser {
        tokens,
        pos: 0,
        diags,
        depth: 0,
        max_depth: DEFAULT_PARSER_DEPTH,
        depth_exceeded: false,
        interner,
    };
    let mut e = p.expr()?;
    if !p.at(&TokenKind::Eof) {
        p.error_here("expected end of input after expression");
    }
    let mut interner = p.interner;
    let remap = interner.freeze_sorted();
    remap_idents_expr(&mut e, &mut |id| {
        if id.sym != Symbol::UNKNOWN {
            id.sym = remap[id.sym.index()];
        }
    });
    Some(e)
}

struct Parser<'d> {
    tokens: Vec<Token>,
    pos: usize,
    diags: &'d mut DiagSink,
    /// Current nesting depth across the recursive entry points
    /// (`ty`/`stmt`/`unary_expr`).
    depth: usize,
    /// Bound on `depth`; exceeding it fails the enclosing construct.
    max_depth: usize,
    /// Whether the bound was ever hit (reported once, post-parse).
    depth_exceeded: bool,
    /// The unit's interner: grown by the lexer, consulted here to turn
    /// token symbols back into shared text, frozen after the parse.
    interner: Interner,
}

impl<'d> Parser<'d> {
    // ------------------------------------------------------------------
    // Token plumbing
    // ------------------------------------------------------------------

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn nth(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn span_here(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1).min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Option<Span> {
        if self.at(kind) {
            Some(self.bump().span)
        } else {
            self.error_here(format!(
                "expected {}, found {}",
                kind.describe(&self.interner),
                self.peek().describe(&self.interner)
            ));
            None
        }
    }

    /// Build an AST identifier from an interned token symbol: the text
    /// is a refcount bump on the interner's shared string.
    fn mk_ident(&self, sym: Symbol, span: Span) -> Ident {
        Ident::with_sym(self.interner.resolve_istr(sym), sym, span)
    }

    fn ident(&mut self) -> Option<Ident> {
        if let TokenKind::Ident(sym) = *self.peek() {
            let t = self.bump();
            Some(self.mk_ident(sym, t.span))
        } else {
            self.error_here(format!(
                "expected identifier, found {}",
                self.peek().describe(&self.interner)
            ));
            None
        }
    }

    fn error_here(&mut self, msg: impl Into<String>) {
        self.diags
            .error(Code::ParseUnexpected, self.span_here(), msg);
    }

    /// Enter one level of grammar recursion; `false` means the depth
    /// bound is hit and the caller must fail instead of recursing.
    fn enter(&mut self) -> bool {
        if self.depth >= self.max_depth {
            self.depth_exceeded = true;
            return false;
        }
        self.depth += 1;
        true
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Run `f` speculatively: on `None`, restore the token position and drop
    /// any diagnostics it produced.
    fn speculate<T>(&mut self, f: impl FnOnce(&mut Self) -> Option<T>) -> Option<T> {
        let pos = self.pos;
        let ndiags = self.diags.diagnostics().len();
        match f(self) {
            Some(v) => Some(v),
            None => {
                self.pos = pos;
                let mut kept = std::mem::take(self.diags).into_vec();
                kept.truncate(ndiags);
                for d in kept {
                    self.diags.push(d);
                }
                None
            }
        }
    }

    /// Skip tokens until a likely declaration/statement boundary.
    fn recover_to(&mut self, stops: &[TokenKind]) {
        loop {
            let k = self.peek().clone();
            if k == TokenKind::Eof || stops.contains(&k) {
                return;
            }
            if k == TokenKind::Semi || k == TokenKind::RBrace {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    fn program(&mut self) -> Program {
        let mut decls = Vec::new();
        while !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.decl() {
                Some(d) => decls.push(d),
                None => {
                    if self.pos == before {
                        self.bump();
                    }
                    self.recover_to(&[
                        TokenKind::KwStruct,
                        TokenKind::KwVariant,
                        TokenKind::KwType,
                        TokenKind::KwStateset,
                        TokenKind::KwKey,
                        TokenKind::KwInterface,
                    ]);
                }
            }
        }
        Program {
            decls,
            syms: Arc::default(),
        }
    }

    fn decl(&mut self) -> Option<Decl> {
        match self.peek() {
            TokenKind::KwInterface | TokenKind::KwModule => {
                self.interface_decl().map(Decl::Interface)
            }
            TokenKind::KwStruct => self.struct_decl().map(Decl::Struct),
            TokenKind::KwVariant => self.variant_decl().map(Decl::Variant),
            TokenKind::KwType => self.type_alias_decl().map(Decl::TypeAlias),
            TokenKind::KwStateset => self.stateset_decl().map(Decl::Stateset),
            TokenKind::KwKey => self.global_key_decl().map(Decl::GlobalKey),
            _ => {
                // `import` is contextual, not a keyword: an identifier
                // spelling "import" directly followed by a string
                // literal can never start any other declaration, and
                // keeping it out of the keyword table leaves every
                // existing program's tokens (and frozen interner)
                // untouched.
                if let TokenKind::Ident(sym) = *self.peek() {
                    if self.interner.resolve(sym) == "import"
                        && matches!(self.nth(1), TokenKind::Str(_))
                    {
                        return self.import_decl().map(Decl::Import);
                    }
                }
                self.fun_decl().map(Decl::Fun)
            }
        }
    }

    fn import_decl(&mut self) -> Option<ImportDecl> {
        let start = self.bump().span; // the `import` identifier
        let path_tok = self.bump();
        let TokenKind::Str(path) = path_tok.kind else {
            unreachable!("import_decl is only entered when a string follows");
        };
        let end = self.expect(&TokenKind::Semi)?;
        Some(ImportDecl {
            path,
            path_span: path_tok.span,
            span: start.to(end),
        })
    }

    fn interface_decl(&mut self) -> Option<InterfaceDecl> {
        let start = self.bump().span; // interface / module
        let name = self.ident()?;
        // `module Name : IFACE { ... }` — record the module name, skip the
        // ascription; contents are flattened either way.
        if self.eat(&TokenKind::Colon) {
            self.ident()?;
        }
        // `extern module Region : REGION;` style (no body): accept `;`.
        if self.eat(&TokenKind::Semi) {
            return Some(InterfaceDecl {
                name,
                decls: Vec::new(),
                span: start.to(self.prev_span()),
            });
        }
        self.expect(&TokenKind::LBrace)?;
        let mut decls = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.decl() {
                Some(d) => decls.push(d),
                None => {
                    if self.pos == before {
                        self.bump();
                    }
                    self.recover_to(&[TokenKind::RBrace]);
                }
            }
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Some(InterfaceDecl {
            name,
            decls,
            span: start.to(end),
        })
    }

    fn struct_decl(&mut self) -> Option<StructDecl> {
        let start = self.bump().span; // struct
        let name = self.ident()?;
        let params = self.opt_tparams()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let ty = self.ty()?;
            let fname = self.ident()?;
            self.expect(&TokenKind::Semi)?;
            fields.push(Field { ty, name: fname });
        }
        let end = self.expect(&TokenKind::RBrace)?;
        self.eat(&TokenKind::Semi);
        Some(StructDecl {
            name,
            params,
            fields,
            span: start.to(end),
        })
    }

    fn variant_decl(&mut self) -> Option<VariantDecl> {
        let start = self.bump().span; // variant
        let name = self.ident()?;
        let params = self.opt_tparams()?;
        self.expect(&TokenKind::LBracket)?;
        let mut ctors = Vec::new();
        loop {
            ctors.push(self.ctor_decl()?);
            if !self.eat(&TokenKind::Pipe) {
                break;
            }
        }
        let end = self.expect(&TokenKind::RBracket)?;
        self.eat(&TokenKind::Semi);
        Some(VariantDecl {
            name,
            params,
            ctors,
            span: start.to(end),
        })
    }

    fn ctor_decl(&mut self) -> Option<CtorDecl> {
        let (name, start) = match self.peek().clone() {
            TokenKind::CtorIdent(n) => {
                let t = self.bump();
                (self.mk_ident(n, t.span), t.span)
            }
            other => {
                self.error_here(format!(
                    "expected constructor, found {}",
                    other.describe(&self.interner)
                ));
                return None;
            }
        };
        let mut args = Vec::new();
        if self.eat(&TokenKind::LParen) {
            if !self.at(&TokenKind::RParen) {
                loop {
                    args.push(self.ty()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let captures = if self.at(&TokenKind::LBrace) {
            self.key_capture_list()?
        } else {
            Vec::new()
        };
        Some(CtorDecl {
            name,
            args,
            captures,
            span: start.to(self.prev_span()),
        })
    }

    /// `{ K@s, L }` — key captures on constructors and ctor expressions.
    fn key_capture_list(&mut self) -> Option<Vec<KeyStateRef>> {
        self.expect(&TokenKind::LBrace)?;
        let mut keys = Vec::new();
        if !self.at(&TokenKind::RBrace) {
            loop {
                keys.push(self.key_state_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Some(keys)
    }

    fn key_state_ref(&mut self) -> Option<KeyStateRef> {
        let key = self.ident()?;
        let state = if self.eat(&TokenKind::At) {
            Some(self.state_ref()?)
        } else {
            None
        };
        Some(KeyStateRef { key, state })
    }

    /// `name` or `(var <= BOUND)`.
    fn state_ref(&mut self) -> Option<StateRef> {
        if self.eat(&TokenKind::LParen) {
            let var = self.ident()?;
            self.expect(&TokenKind::Le)?;
            let bound = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            Some(StateRef::Bounded { var, bound })
        } else {
            Some(StateRef::Name(self.ident()?))
        }
    }

    fn type_alias_decl(&mut self) -> Option<TypeAliasDecl> {
        let start = self.bump().span; // type
        let name = self.ident()?;
        let params = self.opt_tparams()?;
        let body = if self.eat(&TokenKind::Eq) {
            let ty = self.ty()?;
            // A function-type alias body: `ret Name(params) [effect]`.
            if matches!(self.peek(), TokenKind::Ident(_))
                && matches!(self.nth(1), TokenKind::LParen)
            {
                self.ident()?; // dummy routine name
                self.expect(&TokenKind::LParen)?;
                let mut ptys = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        let pty = self.ty()?;
                        // optional parameter name
                        if matches!(self.peek(), TokenKind::Ident(_))
                            && (matches!(self.nth(1), TokenKind::Comma)
                                || matches!(self.nth(1), TokenKind::RParen))
                        {
                            self.ident()?;
                        }
                        ptys.push(pty);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                let effect = self.opt_effect()?;
                let span = ty.span.to(self.prev_span());
                Some(Type {
                    kind: TypeKind::Fn(Box::new(FnType {
                        ret: ty,
                        params: ptys,
                        effect,
                    })),
                    span,
                })
            } else {
                Some(ty)
            }
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?;
        Some(TypeAliasDecl {
            name,
            params,
            body,
            span: start.to(end),
        })
    }

    fn stateset_decl(&mut self) -> Option<StatesetDecl> {
        let start = self.bump().span; // stateset
        let name = self.ident()?;
        self.expect(&TokenKind::Eq)?;
        self.expect(&TokenKind::LBracket)?;
        let mut chains = Vec::new();
        loop {
            let mut chain = vec![self.ident()?];
            while self.eat(&TokenKind::Lt) {
                chain.push(self.ident()?);
            }
            chains.push(chain);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBracket)?;
        let end = self.expect(&TokenKind::Semi)?;
        Some(StatesetDecl {
            name,
            chains,
            span: start.to(end),
        })
    }

    fn global_key_decl(&mut self) -> Option<GlobalKeyDecl> {
        let start = self.bump().span; // key
        let name = self.ident()?;
        let stateset = if self.eat(&TokenKind::At) {
            Some(self.ident()?)
        } else {
            None
        };
        let end = self.expect(&TokenKind::Semi)?;
        Some(GlobalKeyDecl {
            name,
            stateset,
            span: start.to(end),
        })
    }

    fn opt_tparams(&mut self) -> Option<Vec<TParam>> {
        if !self.at(&TokenKind::Lt) {
            return Some(Vec::new());
        }
        // Only a real parameter list starts with `type`/`key`/`state`.
        if !matches!(
            self.nth(1),
            TokenKind::KwType | TokenKind::KwKey | TokenKind::KwState
        ) {
            return Some(Vec::new());
        }
        self.bump(); // <
        let mut params = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::KwType => {
                    self.bump();
                    params.push(TParam::Type(self.ident()?));
                }
                TokenKind::KwKey => {
                    self.bump();
                    params.push(TParam::Key(self.ident()?));
                }
                TokenKind::KwState => {
                    self.bump();
                    let name = self.ident()?;
                    let bound = if self.eat(&TokenKind::Le) {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    params.push(TParam::State { name, bound });
                }
                other => {
                    self.error_here(format!(
                        "expected `type`, `key`, or `state` parameter, found {}",
                        other.describe(&self.interner)
                    ));
                    return None;
                }
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Gt)?;
        Some(params)
    }

    fn fun_decl(&mut self) -> Option<FunDecl> {
        let start = self.span_here();
        let ret = self.ty()?;
        let name = self.ident()?;
        let tparams = self.opt_tparams()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let ty = self.ty()?;
                let pname = if let TokenKind::Ident(_) = self.peek() {
                    Some(self.ident()?)
                } else {
                    None
                };
                params.push(FunParam { ty, name: pname });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        let effect = self.opt_effect()?;
        let body = if self.at(&TokenKind::LBrace) {
            Some(self.block()?)
        } else {
            self.expect(&TokenKind::Semi)?;
            None
        };
        Some(FunDecl {
            ret,
            name,
            tparams,
            params,
            effect,
            body,
            span: start.to(self.prev_span()),
        })
    }

    fn opt_effect(&mut self) -> Option<Option<Effect>> {
        if !self.at(&TokenKind::LBracket) {
            return Some(None);
        }
        let start = self.bump().span; // [
        let mut items = Vec::new();
        if !self.at(&TokenKind::RBracket) {
            loop {
                items.push(self.effect_item()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let end = self.expect(&TokenKind::RBracket)?;
        Some(Some(Effect {
            items,
            span: start.to(end),
        }))
    }

    fn effect_item(&mut self) -> Option<EffectItem> {
        match self.peek().clone() {
            TokenKind::Minus => {
                self.bump();
                let key = self.ident()?;
                let state = if self.eat(&TokenKind::At) {
                    Some(self.state_ref()?)
                } else {
                    None
                };
                Some(EffectItem::Consume { key, state })
            }
            TokenKind::Plus => {
                self.bump();
                let key = self.ident()?;
                let state = if self.eat(&TokenKind::At) {
                    Some(self.ident()?)
                } else {
                    None
                };
                Some(EffectItem::Produce { key, state })
            }
            TokenKind::KwNew => {
                self.bump();
                let key = self.ident()?;
                let state = if self.eat(&TokenKind::At) {
                    Some(self.ident()?)
                } else {
                    None
                };
                Some(EffectItem::Fresh { key, state })
            }
            TokenKind::Ident(_) => {
                let key = self.ident()?;
                // `uses` is a contextual keyword: `uses net` declares a
                // capability. A key literally named `uses` (followed by
                // `,`, `]`, or `@`) still parses as a Keep item.
                if key.name == "uses" {
                    if let TokenKind::Ident(_) = self.peek() {
                        let cap = self.ident()?;
                        return Some(EffectItem::Uses { cap });
                    }
                }
                let (from, to) = if self.eat(&TokenKind::At) {
                    let from = self.state_ref()?;
                    let to = if self.eat(&TokenKind::Arrow) {
                        Some(self.ident()?)
                    } else {
                        None
                    };
                    (Some(from), to)
                } else {
                    (None, None)
                };
                Some(EffectItem::Keep { key, from, to })
            }
            other => {
                self.error_here(format!(
                    "expected effect item, found {}",
                    other.describe(&self.interner)
                ));
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn ty(&mut self) -> Option<Type> {
        if !self.enter() {
            return None;
        }
        let t = self.ty_inner();
        self.leave();
        t
    }

    fn ty_inner(&mut self) -> Option<Type> {
        let start = self.span_here();
        // Guard prefix: `K : T`, `K@s : T`, `(g1, g2) : T`.
        if let Some(t) = self.speculate(|p| p.guarded_ty(start)) {
            return Some(t);
        }
        self.base_ty()
    }

    fn guarded_ty(&mut self, start: Span) -> Option<Type> {
        let guards = if self.at(&TokenKind::LParen) {
            self.bump();
            let mut gs = Vec::new();
            loop {
                gs.push(self.key_state_ref_quiet()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            if !self.eat(&TokenKind::RParen) {
                return None;
            }
            gs
        } else {
            vec![self.key_state_ref_quiet()?]
        };
        if !self.eat(&TokenKind::Colon) {
            return None;
        }
        let inner = self.ty()?;
        let span = start.to(inner.span);
        Some(Type {
            kind: TypeKind::Guarded {
                guards,
                inner: Box::new(inner),
            },
            span,
        })
    }

    /// Like `key_state_ref` but fails silently (for use under `speculate`).
    fn key_state_ref_quiet(&mut self) -> Option<KeyStateRef> {
        let key = if let TokenKind::Ident(n) = self.peek().clone() {
            let t = self.bump();
            self.mk_ident(n, t.span)
        } else {
            return None;
        };
        let state = if self.eat(&TokenKind::At) {
            Some(self.state_ref()?)
        } else {
            None
        };
        Some(KeyStateRef { key, state })
    }

    fn base_ty(&mut self) -> Option<Type> {
        let start = self.span_here();
        let mut ty = match self.peek().clone() {
            TokenKind::KwVoid => {
                self.bump();
                Type {
                    kind: TypeKind::Void,
                    span: start,
                }
            }
            TokenKind::KwInt => {
                self.bump();
                Type {
                    kind: TypeKind::Int,
                    span: start,
                }
            }
            TokenKind::KwBool => {
                self.bump();
                Type {
                    kind: TypeKind::Bool,
                    span: start,
                }
            }
            TokenKind::KwByte => {
                self.bump();
                Type {
                    kind: TypeKind::Byte,
                    span: start,
                }
            }
            TokenKind::KwString => {
                self.bump();
                Type {
                    kind: TypeKind::Str,
                    span: start,
                }
            }
            TokenKind::KwTracked => {
                self.bump();
                let key = if self.at(&TokenKind::LParen) {
                    self.bump();
                    let k = self.ident()?;
                    self.expect(&TokenKind::RParen)?;
                    Some(k)
                } else {
                    None
                };
                let inner = self.base_ty()?;
                let span = start.to(inner.span);
                Type {
                    kind: TypeKind::Tracked {
                        key,
                        inner: Box::new(inner),
                    },
                    span,
                }
            }
            TokenKind::LParen => {
                // Tuple type `(T1, T2)`.
                self.bump();
                let mut tys = vec![self.ty()?];
                while self.eat(&TokenKind::Comma) {
                    tys.push(self.ty()?);
                }
                let end = self.expect(&TokenKind::RParen)?;
                if tys.len() == 1 {
                    let mut only = tys.pop().expect("len checked");
                    only.span = start.to(end);
                    only
                } else {
                    Type {
                        kind: TypeKind::Tuple(tys),
                        span: start.to(end),
                    }
                }
            }
            TokenKind::Ident(_) => {
                let name = self.ident()?;
                let args = self.opt_type_args()?;
                Type {
                    span: start.to(self.prev_span()),
                    kind: TypeKind::Named { name, args },
                }
            }
            other => {
                self.error_here(format!(
                    "expected a type, found {}",
                    other.describe(&self.interner)
                ));
                return None;
            }
        };
        // Array suffixes.
        while self.at(&TokenKind::LBracket) && matches!(self.nth(1), TokenKind::RBracket) {
            self.bump();
            let end = self.bump().span;
            let span = ty.span.to(end);
            ty = Type {
                kind: TypeKind::Array(Box::new(ty)),
                span,
            };
        }
        Some(ty)
    }

    fn opt_type_args(&mut self) -> Option<Vec<TypeArg>> {
        if !self.at(&TokenKind::Lt) {
            return Some(Vec::new());
        }
        // Speculative: `<` could be a comparison in expression context.
        let parsed = self.speculate(|p| {
            p.bump(); // <
            let mut args = Vec::new();
            loop {
                let ty = p.ty_quiet()?;
                args.push(TypeArg::Type(ty));
                if !p.eat(&TokenKind::Comma) {
                    break;
                }
            }
            if !p.eat(&TokenKind::Gt) {
                return None;
            }
            Some(args)
        });
        Some(parsed.unwrap_or_default())
    }

    /// Type parse that fails without emitting diagnostics (for speculation).
    fn ty_quiet(&mut self) -> Option<Type> {
        let n_before = self.diags.diagnostics().len();
        let pos = self.pos;
        match self.ty() {
            Some(t) if self.diags.diagnostics().len() == n_before => Some(t),
            _ => {
                self.pos = pos;
                let mut kept = std::mem::take(self.diags).into_vec();
                kept.truncate(n_before);
                for d in kept {
                    self.diags.push(d);
                }
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self) -> Option<Block> {
        let start = self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
            let before = self.pos;
            match self.stmt() {
                Some(s) => stmts.push(s),
                None => {
                    if self.pos == before {
                        self.bump();
                    }
                    self.recover_to(&[TokenKind::RBrace]);
                }
            }
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Some(Block {
            stmts,
            span: start.to(end),
        })
    }

    fn stmt(&mut self) -> Option<Stmt> {
        if !self.enter() {
            return None;
        }
        let s = self.stmt_inner();
        self.leave();
        s
    }

    fn stmt_inner(&mut self) -> Option<Stmt> {
        let start = self.span_here();
        match self.peek().clone() {
            TokenKind::LBrace => {
                let b = self.block()?;
                let span = b.span;
                Some(Stmt {
                    kind: StmtKind::Block(b),
                    span,
                })
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat(&TokenKind::KwElse) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Some(Stmt {
                    span: start.to(self.prev_span()),
                    kind: StmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    },
                })
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = Box::new(self.stmt()?);
                Some(Stmt {
                    span: start.to(self.prev_span()),
                    kind: StmtKind::While { cond, body },
                })
            }
            TokenKind::KwSwitch => self.switch_stmt(start),
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.at(&TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.expect(&TokenKind::Semi)?;
                Some(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.to(end),
                })
            }
            TokenKind::KwFree => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let end = self.expect(&TokenKind::Semi)?;
                Some(Stmt {
                    kind: StmtKind::Free(e),
                    span: start.to(end),
                })
            }
            _ => {
                // Try a local declaration / nested function first.
                if let Some(s) = self.speculate(|p| p.local_or_nested_fun(start)) {
                    return Some(s);
                }
                // Otherwise: expression statement, assignment, or incr/decr.
                let e = self.expr()?;
                if self.eat(&TokenKind::Eq) {
                    let rhs = self.expr()?;
                    let end = self.expect(&TokenKind::Semi)?;
                    Some(Stmt {
                        kind: StmtKind::Assign { lhs: e, rhs },
                        span: start.to(end),
                    })
                } else if self.eat(&TokenKind::PlusPlus) {
                    let end = self.expect(&TokenKind::Semi)?;
                    Some(Stmt {
                        kind: StmtKind::Incr(e),
                        span: start.to(end),
                    })
                } else if self.eat(&TokenKind::MinusMinus) {
                    let end = self.expect(&TokenKind::Semi)?;
                    Some(Stmt {
                        kind: StmtKind::Decr(e),
                        span: start.to(end),
                    })
                } else {
                    let end = self.expect(&TokenKind::Semi)?;
                    Some(Stmt {
                        kind: StmtKind::Expr(e),
                        span: start.to(end),
                    })
                }
            }
        }
    }

    /// Speculative parse of `Type Name ...` forms: local declarations and
    /// nested function definitions.
    fn local_or_nested_fun(&mut self, start: Span) -> Option<Stmt> {
        let ty = self.ty_quiet()?;
        let name = if let TokenKind::Ident(n) = self.peek().clone() {
            let t = self.bump();
            self.mk_ident(n, t.span)
        } else {
            return None;
        };
        match self.peek() {
            TokenKind::Semi => {
                let end = self.bump().span;
                Some(Stmt {
                    kind: StmtKind::Local {
                        ty,
                        name,
                        init: None,
                    },
                    span: start.to(end),
                })
            }
            TokenKind::Eq => {
                self.bump();
                let init = self.expr()?;
                let end = if self.at(&TokenKind::Semi) {
                    self.bump().span
                } else {
                    return None;
                };
                Some(Stmt {
                    kind: StmtKind::Local {
                        ty,
                        name,
                        init: Some(init),
                    },
                    span: start.to(end),
                })
            }
            TokenKind::LParen => {
                // Nested function definition.
                self.bump();
                let mut params = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        let pty = self.ty_quiet()?;
                        let pname = if let TokenKind::Ident(n) = self.peek().clone() {
                            let t = self.bump();
                            Some(self.mk_ident(n, t.span))
                        } else {
                            None
                        };
                        params.push(FunParam {
                            ty: pty,
                            name: pname,
                        });
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                if !self.eat(&TokenKind::RParen) {
                    return None;
                }
                let effect = self.opt_effect()?;
                if !self.at(&TokenKind::LBrace) {
                    return None;
                }
                let body = self.block()?;
                let span = start.to(self.prev_span());
                Some(Stmt {
                    kind: StmtKind::NestedFun(Box::new(FunDecl {
                        ret: ty,
                        name,
                        tparams: Vec::new(),
                        params,
                        effect,
                        body: Some(body),
                        span,
                    })),
                    span,
                })
            }
            _ => None,
        }
    }

    fn switch_stmt(&mut self, start: Span) -> Option<Stmt> {
        self.bump(); // switch
        self.expect(&TokenKind::LParen)?;
        let scrutinee = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;
        let mut arms = Vec::new();
        while self.at(&TokenKind::KwCase) {
            let case_start = self.bump().span;
            let ctor = match self.peek().clone() {
                TokenKind::CtorIdent(n) => {
                    let t = self.bump();
                    self.mk_ident(n, t.span)
                }
                other => {
                    self.error_here(format!(
                        "expected constructor pattern after `case`, found {}",
                        other.describe(&self.interner)
                    ));
                    return None;
                }
            };
            let mut binders = Vec::new();
            if self.eat(&TokenKind::LParen) {
                if !self.at(&TokenKind::RParen) {
                    loop {
                        match self.peek().clone() {
                            TokenKind::Underscore => {
                                let t = self.bump();
                                binders.push(PatBinder::Wild(t.span));
                            }
                            TokenKind::Ident(n) => {
                                let t = self.bump();
                                binders.push(PatBinder::Name(self.mk_ident(n, t.span)));
                            }
                            other => {
                                self.error_here(format!(
                                    "expected pattern binder, found {}",
                                    other.describe(&self.interner)
                                ));
                                return None;
                            }
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            self.expect(&TokenKind::Colon)?;
            let mut body = Vec::new();
            while !self.at(&TokenKind::KwCase)
                && !self.at(&TokenKind::RBrace)
                && !self.at(&TokenKind::Eof)
            {
                body.push(self.stmt()?);
            }
            arms.push(SwitchArm {
                ctor,
                binders,
                body,
                span: case_start.to(self.prev_span()),
            });
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Some(Stmt {
            kind: StmtKind::Switch { scrutinee, arms },
            span: start.to(end),
        })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = bin(BinOp::Or, lhs, rhs);
        }
        Some(lhs)
    }

    fn and_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.equality_expr()?;
        while self.at(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.equality_expr()?;
            lhs = bin(BinOp::And, lhs, rhs);
        }
        Some(lhs)
    }

    fn equality_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.rel_expr()?;
            lhs = bin(op, lhs, rhs);
        }
        Some(lhs)
    }

    fn rel_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = bin(op, lhs, rhs);
        }
        Some(lhs)
    }

    fn add_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = bin(op, lhs, rhs);
        }
        Some(lhs)
    }

    fn mul_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = bin(op, lhs, rhs);
        }
        Some(lhs)
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        if !self.enter() {
            return None;
        }
        let e = self.unary_expr_inner();
        self.leave();
        e
    }

    fn unary_expr_inner(&mut self) -> Option<Expr> {
        let start = self.span_here();
        match self.peek() {
            TokenKind::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                let span = start.to(e.span);
                Some(Expr {
                    kind: ExprKind::Unary(UnOp::Not, Box::new(e)),
                    span,
                })
            }
            TokenKind::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                let span = start.to(e.span);
                Some(Expr {
                    kind: ExprKind::Unary(UnOp::Neg, Box::new(e)),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Option<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    let span = e.span.to(field.span);
                    e = Expr {
                        kind: ExprKind::Field(Box::new(e), field),
                        span,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    let end = self.expect(&TokenKind::RBracket)?;
                    let span = e.span.to(end);
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        span,
                    };
                }
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(&TokenKind::RParen)?;
                    let span = e.span.to(end);
                    e = Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(e),
                            targs: Vec::new(),
                            args,
                        },
                        span,
                    };
                }
                TokenKind::Lt => {
                    // Possible explicit type arguments on a call:
                    // `f<int>(x)`. Only commit if `<targs>(` parses.
                    let committed = self.speculate(|p| {
                        let targs = p.opt_type_args()?;
                        if targs.is_empty() || !p.at(&TokenKind::LParen) {
                            return None;
                        }
                        p.bump(); // (
                        let mut args = Vec::new();
                        if !p.at(&TokenKind::RParen) {
                            loop {
                                args.push(p.expr()?);
                                if !p.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        let end = if p.at(&TokenKind::RParen) {
                            p.bump().span
                        } else {
                            return None;
                        };
                        Some((targs, args, end))
                    });
                    match committed {
                        Some((targs, args, end)) => {
                            let span = e.span.to(end);
                            e = Expr {
                                kind: ExprKind::Call {
                                    callee: Box::new(e),
                                    targs,
                                    args,
                                },
                                span,
                            };
                        }
                        None => break,
                    }
                }
                _ => break,
            }
        }
        Some(e)
    }

    fn primary_expr(&mut self) -> Option<Expr> {
        let start = self.span_here();
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::IntLit(n),
                    span: start,
                })
            }
            TokenKind::KwTrue => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::BoolLit(true),
                    span: start,
                })
            }
            TokenKind::KwFalse => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::BoolLit(false),
                    span: start,
                })
            }
            TokenKind::Str(s) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::StrLit(s),
                    span: start,
                })
            }
            TokenKind::Ident(n) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::Var(self.mk_ident(n, start)),
                    span: start,
                })
            }
            TokenKind::CtorIdent(n) => {
                self.bump();
                let name = self.mk_ident(n, start);
                let mut args = Vec::new();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                let keys = if self.at(&TokenKind::LBrace) {
                    self.key_capture_list()?
                } else {
                    Vec::new()
                };
                Some(Expr {
                    span: start.to(self.prev_span()),
                    kind: ExprKind::Ctor { name, args, keys },
                })
            }
            TokenKind::KwNew => {
                self.bump();
                let region = if self.at(&TokenKind::LParen) {
                    self.bump();
                    let r = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Some(Box::new(r))
                } else {
                    self.eat(&TokenKind::KwTracked);
                    None
                };
                let ty = self.ident()?;
                let targs = self.opt_type_args()?;
                self.expect(&TokenKind::LBrace)?;
                let mut inits = Vec::new();
                while !self.at(&TokenKind::RBrace) && !self.at(&TokenKind::Eof) {
                    let fname = self.ident()?;
                    self.expect(&TokenKind::Eq)?;
                    let value = self.expr()?;
                    inits.push(FieldInit { name: fname, value });
                    if !self.eat(&TokenKind::Semi) {
                        self.eat(&TokenKind::Comma);
                    }
                }
                let end = self.expect(&TokenKind::RBrace)?;
                Some(Expr {
                    kind: ExprKind::New {
                        region,
                        ty,
                        targs,
                        inits,
                    },
                    span: start.to(end),
                })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Some(e)
            }
            other => {
                self.error_here(format!(
                    "expected an expression, found {}",
                    other.describe(&self.interner)
                ));
                None
            }
        }
    }
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    let span = lhs.span.to(rhs.span);
    Expr {
        kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        let mut diags = DiagSink::new();
        let p = parse_program(src, &mut diags);
        assert!(
            !diags.has_errors(),
            "unexpected parse errors for {src:?}: {:#?}",
            diags.diagnostics()
        );
        p
    }

    #[test]
    fn parses_region_interface() {
        let p = parse_ok(
            "interface REGION {\n\
               type region;\n\
               tracked(R) region create() [new R];\n\
               void delete(tracked(R) region) [-R];\n\
             }",
        );
        assert_eq!(p.decls.len(), 1);
        let Decl::Interface(i) = &p.decls[0] else {
            panic!("expected interface");
        };
        assert_eq!(i.name.name, "REGION");
        assert_eq!(i.decls.len(), 3);
        let Decl::Fun(create) = &i.decls[1] else {
            panic!("expected fun");
        };
        assert_eq!(create.name.name, "create");
        let eff = create.effect.as_ref().expect("effect");
        assert!(matches!(&eff.items[0], EffectItem::Fresh { key, .. } if key.name == "R"));
    }

    #[test]
    fn parses_fig2_okay() {
        let p = parse_ok(
            "void okay() {\n\
               tracked(R) region rgn = Region.create();\n\
               R:point pt = new(rgn) point {x=1; y=2;};\n\
               pt.x++;\n\
               Region.delete(rgn);\n\
             }",
        );
        let f = &p.functions()[0];
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 4);
        assert!(matches!(&body.stmts[0].kind, StmtKind::Local { ty, .. }
            if matches!(&ty.kind, TypeKind::Tracked { key: Some(k), .. } if k.name == "R")));
        assert!(
            matches!(&body.stmts[1].kind, StmtKind::Local { ty, init: Some(init), .. }
            if matches!(&ty.kind, TypeKind::Guarded { .. })
            && matches!(&init.kind, ExprKind::New { region: Some(_), .. }))
        );
        assert!(matches!(&body.stmts[2].kind, StmtKind::Incr(_)));
    }

    #[test]
    fn parses_variant_with_captures() {
        let p = parse_ok("variant opt_key<key K> [ 'NoKey | 'SomeKey {K} ];");
        let Decl::Variant(v) = &p.decls[0] else {
            panic!("expected variant");
        };
        assert_eq!(v.ctors.len(), 2);
        assert!(v.ctors[0].captures.is_empty());
        assert_eq!(v.ctors[1].captures.len(), 1);
        assert_eq!(v.ctors[1].captures[0].key.name, "K");
    }

    #[test]
    fn parses_status_variant_with_states() {
        let p = parse_ok("variant status<key K> [ 'Ok {K@named} | 'Error(error_code){K@raw} ];");
        let Decl::Variant(v) = &p.decls[0] else {
            panic!("expected variant");
        };
        let ok = &v.ctors[0];
        assert!(matches!(&ok.captures[0].state, Some(StateRef::Name(s)) if s.name == "named"));
        let err = &v.ctors[1];
        assert_eq!(err.args.len(), 1);
        assert!(matches!(&err.captures[0].state, Some(StateRef::Name(s)) if s.name == "raw"));
    }

    #[test]
    fn parses_socket_interface_effects() {
        let p = parse_ok(
            "void bind(tracked(S) sock, sockaddr) [S@raw->named];\n\
             tracked(N) sock accept(tracked(S) sock, sockaddr) [S@listening, new N@ready];",
        );
        let funs = p.functions();
        let bind_eff = funs[0].effect.as_ref().expect("effect");
        assert!(matches!(
            &bind_eff.items[0],
            EffectItem::Keep { key, from: Some(StateRef::Name(f)), to: Some(t) }
                if key.name == "S" && f.name == "raw" && t.name == "named"
        ));
        let accept_eff = funs[1].effect.as_ref().expect("effect");
        assert_eq!(accept_eff.items.len(), 2);
        assert!(matches!(
            &accept_eff.items[1],
            EffectItem::Fresh { key, state: Some(s) } if key.name == "N" && s.name == "ready"
        ));
    }

    #[test]
    fn parses_uses_capability_items() {
        let p = parse_ok(
            "void dial() [new C, uses net, uses alloc];\n\
             void keyed() [uses, uses @raw];",
        );
        let funs = p.functions();
        let dial = funs[0].effect.as_ref().expect("effect");
        assert_eq!(dial.items.len(), 3);
        assert!(matches!(&dial.items[1], EffectItem::Uses { cap } if cap.name == "net"));
        assert!(matches!(&dial.items[2], EffectItem::Uses { cap } if cap.name == "alloc"));
        // A key literally named `uses` still parses as a Keep item when
        // not followed by an identifier.
        let keyed = funs[1].effect.as_ref().expect("effect");
        assert!(matches!(&keyed.items[0], EffectItem::Keep { key, .. } if key.name == "uses"));
        assert!(
            matches!(&keyed.items[1], EffectItem::Keep { key, from: Some(_), .. } if key.name == "uses")
        );
    }

    #[test]
    fn parses_stateset_and_global_key() {
        let p = parse_ok(
            "stateset IRQ_LEVEL = [ PASSIVE_LEVEL < APC_LEVEL < DISPATCH_LEVEL < DIRQL ];\n\
             key IRQL @ IRQ_LEVEL;",
        );
        let Decl::Stateset(s) = &p.decls[0] else {
            panic!("expected stateset");
        };
        assert_eq!(s.chains.len(), 1);
        assert_eq!(s.chains[0].len(), 4);
        let Decl::GlobalKey(k) = &p.decls[1] else {
            panic!("expected key decl");
        };
        assert_eq!(k.name.name, "IRQL");
        assert_eq!(
            k.stateset.as_ref().map(|i| i.name.as_str()),
            Some("IRQ_LEVEL")
        );
    }

    #[test]
    fn parses_bounded_state_effects() {
        let p = parse_ok(
            "long KeReleaseSemaphore(KSEMAPHORE k, KPRIORITY p, int n)\n\
               [ IRQL @ (level <= DISPATCH_LEVEL) ];\n\
             KIRQL<level> KeAcquireSpinLock(KSPIN_LOCK l)\n\
               [ IRQL @ (level <= DISPATCH_LEVEL) -> DISPATCH_LEVEL ];",
        );
        let funs = p.functions();
        let eff = funs[1].effect.as_ref().expect("effect");
        assert!(matches!(
            &eff.items[0],
            EffectItem::Keep {
                key,
                from: Some(StateRef::Bounded { var, bound }),
                to: Some(t),
            } if key.name == "IRQL" && var.name == "level"
                && bound.name == "DISPATCH_LEVEL" && t.name == "DISPATCH_LEVEL"
        ));
    }

    #[test]
    fn parses_switch_with_patterns() {
        let p = parse_ok(
            "void f(tracked reglist list) {\n\
               switch (list) {\n\
                 case 'Nil:\n\
                   return;\n\
                 case 'Cons(rgn2, _):\n\
                   rgn2.x++;\n\
               }\n\
             }",
        );
        let f = &p.functions()[0];
        let StmtKind::Switch { arms, .. } = &f.body.as_ref().unwrap().stmts[0].kind else {
            panic!("expected switch");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].ctor.name, "Cons");
        assert!(matches!(&arms[1].binders[0], PatBinder::Name(n) if n.name == "rgn2"));
        assert!(matches!(&arms[1].binders[1], PatBinder::Wild(_)));
    }

    #[test]
    fn parses_nested_function() {
        let p = parse_ok(
            "NTSTATUS PnpRequest(DEVICE_OBJECT Dev, tracked(I) IRP Irp) [-I] {\n\
               KEVENT<I> IrpIsBack = KeInitializeEvent(Irp);\n\
               COMPLETION_RESULT<I> RegainIrp(DEVICE_OBJECT D, tracked(I) IRP J) [-I] {\n\
                 KeSignalEvent(IrpIsBack);\n\
                 return 'MoreProcessingRequired;\n\
               }\n\
               IoSetCompletionRoutine(Irp, RegainIrp);\n\
             }",
        );
        let f = &p.functions()[0];
        let body = f.body.as_ref().unwrap();
        assert!(
            matches!(&body.stmts[1].kind, StmtKind::NestedFun(nf) if nf.name.name == "RegainIrp")
        );
    }

    #[test]
    fn parses_ctor_expression_with_keys() {
        let mut diags = DiagSink::new();
        let e = parse_expr("'SomeKey{F}", &mut diags).expect("expr");
        assert!(!diags.has_errors());
        let ExprKind::Ctor { name, keys, .. } = &e.kind else {
            panic!("expected ctor");
        };
        assert_eq!(name.name, "SomeKey");
        assert_eq!(keys[0].key.name, "F");
    }

    #[test]
    fn parses_fn_type_alias() {
        let p = parse_ok(
            "type COMPLETION_ROUTINE<key K> = tracked COMPLETION_RESULT<K> Routine(\n\
               DEVICE_OBJECT, tracked(K) IRP) [-K];",
        );
        let Decl::TypeAlias(a) = &p.decls[0] else {
            panic!("expected alias");
        };
        let Some(Type {
            kind: TypeKind::Fn(ft),
            ..
        }) = &a.body
        else {
            panic!("expected fn type, got {:?}", a.body);
        };
        assert_eq!(ft.params.len(), 2);
        assert!(ft.effect.is_some());
    }

    #[test]
    fn expression_statements_not_confused_with_types() {
        let p = parse_ok("void f(int a, int b) { a = a < b; Region.delete(a); a++; }");
        let body = p.functions()[0].body.as_ref().unwrap();
        assert!(matches!(&body.stmts[0].kind, StmtKind::Assign { .. }));
        assert!(matches!(&body.stmts[1].kind, StmtKind::Expr(e)
            if matches!(&e.kind, ExprKind::Call { .. })));
        assert!(matches!(&body.stmts[2].kind, StmtKind::Incr(_)));
    }

    #[test]
    fn parses_tuple_types() {
        let p = parse_ok("type regptpair = (tracked(R) region, R:point);");
        let Decl::TypeAlias(a) = &p.decls[0] else {
            panic!()
        };
        assert!(matches!(
            a.body.as_ref().map(|t| &t.kind),
            Some(TypeKind::Tuple(ts)) if ts.len() == 2
        ));
    }

    #[test]
    fn reports_unexpected_token() {
        let mut diags = DiagSink::new();
        parse_program("void f() { return }; }", &mut diags);
        assert!(diags.has_errors());
        assert!(diags.has_code(Code::ParseUnexpected));
    }

    #[test]
    fn free_statement() {
        let p = parse_ok("void f(tracked(K) point p) [-K] { free(p); }");
        let body = p.functions()[0].body.as_ref().unwrap();
        assert!(matches!(&body.stmts[0].kind, StmtKind::Free(_)));
    }

    #[test]
    fn recovery_continues_after_bad_decl() {
        let mut diags = DiagSink::new();
        let p = parse_program("int bad(; void g() { }", &mut diags);
        assert!(diags.has_errors());
        // g still parsed.
        assert!(p.functions().iter().any(|f| f.name.name == "g"));
    }
}
