//! Abstract syntax tree for the Vault surface language.
//!
//! The surface language is the C-like notation used throughout the paper:
//! declarations (`struct`, `variant`, `type`, `stateset`, `key`, `interface`,
//! functions with effect clauses) and C statements/expressions extended with
//! `tracked`/guarded types, `new tracked`/`new(rgn)` allocation, `free`, and
//! `switch` over variant constructors.

use crate::intern::{IStr, Interner, Symbol};
use crate::span::Span;
use std::fmt;
use std::sync::Arc;

/// An identifier with its source location.
///
/// Parser-built identifiers carry both the shared text (`name`, an
/// [`IStr`] refcount into the unit's interner — no per-occurrence heap
/// copy) and the interned [`Symbol`], renumbered into string order when
/// the parser freezes the interner. Synthesized identifiers (built
/// outside a parse, e.g. in tests or lowering) carry
/// [`Symbol::UNKNOWN`]; anything resolving them must go through the
/// name, which is why equality ignores the symbol.
#[derive(Clone, Debug, Eq)]
pub struct Ident {
    /// The name as written.
    pub name: IStr,
    /// The interned symbol (`Symbol::UNKNOWN` for synthesized idents).
    pub sym: Symbol,
    /// Where it was written.
    pub span: Span,
}

impl PartialEq for Ident {
    /// Text + location identity; the symbol is a cache of `name` and
    /// deliberately excluded so synthesized and parsed identifiers with
    /// the same spelling compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.span == other.span
    }
}

impl Ident {
    /// Construct an identifier with no interned symbol.
    pub fn new(name: impl Into<IStr>, span: Span) -> Self {
        Ident {
            name: name.into(),
            sym: Symbol::UNKNOWN,
            span,
        }
    }

    /// Construct an identifier carrying its interned symbol.
    pub fn with_sym(name: IStr, sym: Symbol, span: Span) -> Self {
        Ident { name, sym, span }
    }

    /// A synthesized identifier with a dummy span.
    pub fn synthetic(name: impl Into<IStr>) -> Self {
        Ident::new(name, Span::DUMMY)
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A whole compilation unit.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Top-level declarations in source order.
    pub decls: Vec<Decl>,
    /// The unit's interner, frozen into string order by the parser
    /// (empty for hand-built programs). Shared with elaboration and the
    /// checker, which no longer rebuild it from the AST.
    pub syms: Arc<Interner>,
}

impl PartialEq for Program {
    /// Structural equality over the declarations; the interner is a
    /// derived index and ignored.
    fn eq(&self, other: &Self) -> bool {
        self.decls == other.decls
    }
}

impl Eq for Program {}

/// A top-level (or interface-nested) declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decl {
    /// `interface NAME { ... }` — a named group of declarations. Vault
    /// modules implement interfaces; for checking purposes the contents are
    /// flattened into the global scope, with the interface name usable as a
    /// qualifier (`Region.create`).
    Interface(InterfaceDecl),
    /// `struct name<params> { ty field; ... }`
    Struct(StructDecl),
    /// `variant name<params> [ 'A | 'B(int) {K@s} ];`
    Variant(VariantDecl),
    /// `type name<params>;` (abstract) or `type name<params> = ty;` (alias)
    TypeAlias(TypeAliasDecl),
    /// `stateset NAME = [ a < b < c ];`
    Stateset(StatesetDecl),
    /// `key NAME @ STATESET;` — a statically declared global key (§4.4).
    GlobalKey(GlobalKeyDecl),
    /// A function signature (no body) or definition (with body).
    Fun(FunDecl),
    /// `import "unit";` — pull another project unit's exported
    /// declarations into scope. Resolved by the project build graph;
    /// a standalone check treats the declaration as inert.
    Import(ImportDecl),
}

impl Decl {
    /// The span of the declaration.
    pub fn span(&self) -> Span {
        match self {
            Decl::Interface(d) => d.span,
            Decl::Struct(d) => d.span,
            Decl::Variant(d) => d.span,
            Decl::TypeAlias(d) => d.span,
            Decl::Stateset(d) => d.span,
            Decl::GlobalKey(d) => d.span,
            Decl::Fun(d) => d.span,
            Decl::Import(d) => d.span,
        }
    }

    /// The declared name, if the declaration introduces one.
    pub fn name(&self) -> Option<&Ident> {
        match self {
            Decl::Interface(d) => Some(&d.name),
            Decl::Struct(d) => Some(&d.name),
            Decl::Variant(d) => Some(&d.name),
            Decl::TypeAlias(d) => Some(&d.name),
            Decl::Stateset(d) => Some(&d.name),
            Decl::GlobalKey(d) => Some(&d.name),
            Decl::Fun(d) => Some(&d.name),
            Decl::Import(_) => None,
        }
    }
}

/// `import "unit";` — a reference to another unit of the same project,
/// whose exported declarations (signatures, types, statesets, global
/// keys — never bodies) form part of this unit's checking environment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportDecl {
    /// The imported unit's manifest name, exactly as written.
    pub path: String,
    /// Span of the path string literal.
    pub path_span: Span,
    /// Whole-declaration span.
    pub span: Span,
}

/// `interface NAME { decls }`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceDecl {
    /// Interface name, usable as a call qualifier.
    pub name: Ident,
    /// Member declarations.
    pub decls: Vec<Decl>,
    /// Whole-declaration span.
    pub span: Span,
}

/// A formal parameter of a parameterized type or function:
/// `type T`, `key K`, or `state S` (optionally bounded, `state S <= TOK`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TParam {
    /// `type T`
    Type(Ident),
    /// `key K`
    Key(Ident),
    /// `state S` with optional upper bound
    State {
        /// The state variable name.
        name: Ident,
        /// Optional `<= TOKEN` bound.
        bound: Option<Ident>,
    },
}

impl TParam {
    /// The parameter's name.
    pub fn name(&self) -> &Ident {
        match self {
            TParam::Type(n) | TParam::Key(n) => n,
            TParam::State { name, .. } => name,
        }
    }
}

/// `struct name<params> { fields }`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDecl {
    /// The struct name.
    pub name: Ident,
    /// Type/key/state parameters.
    pub params: Vec<TParam>,
    /// Declared fields, in order.
    pub fields: Vec<Field>,
    /// Whole-declaration span.
    pub span: Span,
}

/// One struct field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field type (may be guarded).
    pub ty: Type,
    /// Field name.
    pub name: Ident,
}

/// `variant name<params> [ ctors ];`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VariantDecl {
    /// The variant type name.
    pub name: Ident,
    /// Type/key/state parameters.
    pub params: Vec<TParam>,
    /// The constructors.
    pub ctors: Vec<CtorDecl>,
    /// Whole-declaration span.
    pub span: Span,
}

/// One variant constructor: `'Name(arg tys) {key captures}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtorDecl {
    /// Constructor name (without the tick).
    pub name: Ident,
    /// Value argument types.
    pub args: Vec<Type>,
    /// Captured keys with required states, e.g. `{K@named}`.
    pub captures: Vec<KeyStateRef>,
    /// Span of this constructor.
    pub span: Span,
}

/// A reference to a key together with an optional state requirement, as in
/// guards (`K@open : FILE`) and constructor captures (`{K@named}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyStateRef {
    /// The key name.
    pub key: Ident,
    /// Optional state requirement.
    pub state: Option<StateRef>,
}

/// A state expression: a plain token/variable or a bounded variable
/// `(var <= TOKEN)` (paper §4.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateRef {
    /// A state token or state variable, resolved during elaboration.
    Name(Ident),
    /// `(var <= BOUND)` — binds `var`, constrained from above by `BOUND`.
    Bounded {
        /// The bound variable.
        var: Ident,
        /// The inclusive upper bound token.
        bound: Ident,
    },
}

impl StateRef {
    /// Span of the state expression.
    pub fn span(&self) -> Span {
        match self {
            StateRef::Name(n) => n.span,
            StateRef::Bounded { var, bound } => var.span.to(bound.span),
        }
    }
}

/// `type name<params>;` or `type name<params> = body;`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeAliasDecl {
    /// The alias name.
    pub name: Ident,
    /// Type/key/state parameters.
    pub params: Vec<TParam>,
    /// `None` for abstract types; `Some` for aliases.
    pub body: Option<Type>,
    /// Whole-declaration span.
    pub span: Span,
}

/// `stateset NAME = [ a < b < c, x < y ];`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatesetDecl {
    /// Stateset name.
    pub name: Ident,
    /// Each comma-separated chain `a < b < c` (a single name is a chain of
    /// length one).
    pub chains: Vec<Vec<Ident>>,
    /// Whole-declaration span.
    pub span: Span,
}

/// `key NAME @ STATESET;` — a global key such as `IRQL`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalKeyDecl {
    /// The key name.
    pub name: Ident,
    /// Stateset governing its local states, if any.
    pub stateset: Option<Ident>,
    /// Whole-declaration span.
    pub span: Span,
}

/// A surface type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Type {
    /// The type constructor.
    pub kind: TypeKind,
    /// Source span.
    pub span: Span,
}

/// Surface type constructors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeKind {
    /// `void`
    Void,
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `byte`
    Byte,
    /// `string`
    Str,
    /// `name<args>` — structs, variants, aliases, abstract types.
    Named {
        /// The type name.
        name: Ident,
        /// Instantiation arguments (kinds resolved during elaboration).
        args: Vec<TypeArg>,
    },
    /// `T[]`
    Array(Box<Type>),
    /// `(T1, T2, ...)` — used by the Fig. 4 `regptpair` fix.
    Tuple(Vec<Type>),
    /// `tracked(K) T` or anonymous `tracked T`.
    Tracked {
        /// Key name; `None` for anonymous tracked types.
        key: Option<Ident>,
        /// The underlying type.
        inner: Box<Type>,
    },
    /// `G1,G2 : T` — guarded type. Guards may carry states.
    Guarded {
        /// The conjunction of guard atoms.
        guards: Vec<KeyStateRef>,
        /// The guarded type.
        inner: Box<Type>,
    },
    /// A function type, as used in alias bodies for completion routines:
    /// `ret Name(param tys) [effect]`.
    Fn(Box<FnType>),
}

/// A surface function type (used in `type ... = <fn type>;` aliases).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnType {
    /// Return type.
    pub ret: Type,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Effect clause.
    pub effect: Option<Effect>,
}

/// An argument in a type instantiation `name<...>`. Bare identifiers parse
/// as `Type(Named)` and are re-interpreted by kind during elaboration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeArg {
    /// Any type expression (bare names may really be keys or states).
    Type(Type),
}

impl TypeArg {
    /// Span of the argument.
    pub fn span(&self) -> Span {
        match self {
            TypeArg::Type(t) => t.span,
        }
    }
}

/// An effect clause `[ items ]` on a function.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Effect {
    /// The comma-separated effect items.
    pub items: Vec<EffectItem>,
    /// Span of the whole clause.
    pub span: Span,
}

/// One item of an effect clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EffectItem {
    /// `K`, `K@a`, `K@a->b`, `K@(v<=S)`, `K@(v<=S)->b` — key held before
    /// and after, possibly changing state.
    Keep {
        /// The key.
        key: Ident,
        /// Required entry state (None = any state, polymorphic).
        from: Option<StateRef>,
        /// Exit state (None = same as entry).
        to: Option<Ident>,
    },
    /// `-K`, `-K@a` — key held before, consumed.
    Consume {
        /// The key.
        key: Ident,
        /// Required entry state.
        state: Option<StateRef>,
    },
    /// `+K`, `+K@b` — key not held before, held after. The key must be
    /// named by some parameter's type (e.g. `KEVENT<K>`).
    Produce {
        /// The key.
        key: Ident,
        /// State it is produced in.
        state: Option<Ident>,
    },
    /// `new K@b` — a fresh key (unknown to the caller) held on return.
    Fresh {
        /// The key name, as visible in the return type.
        key: Ident,
        /// State it is created in.
        state: Option<Ident>,
    },
    /// `uses c` — the function declares capability `c` (capability-effect
    /// discipline, e.g. `uses net`). Not a key item: it names an ambient
    /// authority the body may exercise, checked by the `V7xx` pass.
    Uses {
        /// The capability name.
        cap: Ident,
    },
}

impl EffectItem {
    /// The identifier this item concerns (the key, or the capability
    /// name for a `uses` item).
    pub fn key(&self) -> &Ident {
        match self {
            EffectItem::Keep { key, .. }
            | EffectItem::Consume { key, .. }
            | EffectItem::Produce { key, .. }
            | EffectItem::Fresh { key, .. } => key,
            EffectItem::Uses { cap } => cap,
        }
    }
}

/// A function signature or definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunDecl {
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: Ident,
    /// Explicit `<type T, ...>` parameters.
    pub tparams: Vec<TParam>,
    /// Value parameters.
    pub params: Vec<FunParam>,
    /// Effect clause; `None` means "no change to the held-key set".
    pub effect: Option<Effect>,
    /// Body; `None` for signatures/externs.
    pub body: Option<Block>,
    /// Whole-declaration span.
    pub span: Span,
}

/// One value parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunParam {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name; signatures may omit it.
    pub name: Option<Ident>,
}

/// A `{ ... }` block.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// Span including the braces.
    pub span: Span,
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stmt {
    /// The statement form.
    pub kind: StmtKind,
    /// Source span.
    pub span: Span,
}

/// Statement forms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StmtKind {
    /// `ty name = init;` or `ty name;`
    Local {
        /// Declared type (possibly tracked/guarded).
        ty: Type,
        /// Variable name.
        name: Ident,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// A nested function definition (the Fig. 7 completion-routine idiom).
    NestedFun(Box<FunDecl>),
    /// An expression evaluated for effect (usually a call).
    Expr(Expr),
    /// `lhs = rhs;`
    Assign {
        /// The assignment target (variable, field, or index).
        lhs: Expr,
        /// The value.
        rhs: Expr,
    },
    /// `lhs++;`
    Incr(Expr),
    /// `lhs--;`
    Decr(Expr),
    /// `if (cond) then else?`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `switch (e) { case 'C(x,_): ... }`
    Switch {
        /// The matched expression.
        scrutinee: Expr,
        /// The constructor arms.
        arms: Vec<SwitchArm>,
    },
    /// `return;` or `return e;`
    Return(Option<Expr>),
    /// `free(e);` — the primitive key-revoking operation.
    Free(Expr),
    /// A nested block.
    Block(Block),
}

/// One arm of a `switch`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchArm {
    /// Constructor name (without tick).
    pub ctor: Ident,
    /// Binders for the constructor's value arguments.
    pub binders: Vec<PatBinder>,
    /// Arm body.
    pub body: Vec<Stmt>,
    /// Span of the arm.
    pub span: Span,
}

/// A pattern binder: a fresh name or `_`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatBinder {
    /// Bind the component to a name.
    Name(Ident),
    /// Ignore the component.
    Wild(Span),
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Expr {
    /// The expression form.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Expression forms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// `true`/`false`.
    BoolLit(bool),
    /// String literal.
    StrLit(String),
    /// A name: variable, parameter, or function.
    Var(Ident),
    /// `e.f` — field access, or module qualifier in call position.
    Field(Box<Expr>, Ident),
    /// `e[i]`
    Index(Box<Expr>, Box<Expr>),
    /// `callee<targs>(args)`
    Call {
        /// The callee (a `Var` or `Field` path).
        callee: Box<Expr>,
        /// Explicit type arguments (usually empty; inferred).
        targs: Vec<TypeArg>,
        /// Value arguments.
        args: Vec<Expr>,
    },
    /// `'Ctor(args){keys}`
    Ctor {
        /// Constructor name (without tick).
        name: Ident,
        /// Value arguments.
        args: Vec<Expr>,
        /// Attached keys (consumed into the value).
        keys: Vec<KeyStateRef>,
    },
    /// `new tracked T {f=e; ...}` (heap, fresh key) or
    /// `new(rgn) T {f=e; ...}` (region allocation, guarded by rgn's key).
    New {
        /// The region expression; `None` for `new tracked`.
        region: Option<Box<Expr>>,
        /// The allocated type name.
        ty: Ident,
        /// Type arguments for the allocated type.
        targs: Vec<TypeArg>,
        /// Field initializers.
        inits: Vec<FieldInit>,
    },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

/// A field initializer inside `new ... { f = e; }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldInit {
    /// Field name.
    pub name: Ident,
    /// Initial value.
    pub value: Expr,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `!e`
    Not,
    /// `-e`
    Neg,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator takes and yields integers.
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// Whether the operator compares two operands yielding bool.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is boolean (`&&`/`||`).
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Operator token as written.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl Program {
    /// Iterate over all function declarations, flattening interfaces.
    pub fn functions(&self) -> Vec<&FunDecl> {
        fn walk<'a>(decls: &'a [Decl], out: &mut Vec<&'a FunDecl>) {
            for d in decls {
                match d {
                    Decl::Fun(f) => out.push(f),
                    Decl::Interface(i) => walk(&i.decls, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.decls, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Add.is_arith());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::Le.is_comparison());
        assert!(BinOp::And.is_logic());
        assert_eq!(BinOp::Ne.symbol(), "!=");
    }

    #[test]
    fn program_functions_flattens_interfaces() {
        let f = FunDecl {
            ret: Type {
                kind: TypeKind::Void,
                span: Span::DUMMY,
            },
            name: Ident::synthetic("create"),
            tparams: vec![],
            params: vec![],
            effect: None,
            body: None,
            span: Span::DUMMY,
        };
        let prog = Program {
            decls: vec![
                Decl::Interface(InterfaceDecl {
                    name: Ident::synthetic("REGION"),
                    decls: vec![Decl::Fun(f.clone())],
                    span: Span::DUMMY,
                }),
                Decl::Fun(FunDecl {
                    name: Ident::synthetic("main"),
                    ..f.clone()
                }),
            ],
            syms: Arc::default(),
        };
        let names: Vec<_> = prog
            .functions()
            .iter()
            .map(|f| f.name.name.clone())
            .collect();
        assert_eq!(names, vec!["create", "main"]);
    }
}
