//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] so that diagnostics can point
//! back into the original source text. A [`SourceMap`] owns the text of one
//! compilation unit and converts byte offsets to line/column pairs.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// The empty span at offset zero, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Length in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A line/column position (both 1-based) for human-readable diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Owns the source text of a compilation unit and resolves spans.
#[derive(Clone, Debug)]
pub struct SourceMap {
    name: String,
    text: String,
    /// Byte offsets at which each line starts (line 1 starts at `line_starts[0]`).
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Build a source map for `text`, labelled `name` in diagnostics.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// The unit name given at construction (usually a file name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The text covered by `span`. Out-of-range spans yield `""`.
    pub fn snippet(&self, span: Span) -> &str {
        self.text
            .get(span.start as usize..span.end as usize)
            .unwrap_or("")
    }

    /// Line/column of a byte offset.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// The full text of the (1-based) line containing `offset`.
    pub fn line_text(&self, offset: u32) -> &str {
        let lc = self.line_col(offset);
        let start = self.line_starts[(lc.line - 1) as usize] as usize;
        let end = self
            .line_starts
            .get(lc.line as usize)
            .map(|&e| e as usize)
            .unwrap_or(self.text.len());
        self.text[start..end].trim_end_matches('\n')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 5).len(), 3);
        assert!(Span::new(4, 4).is_empty());
        assert!(!Span::new(4, 5).is_empty());
    }

    #[test]
    fn line_col_resolution() {
        let sm = SourceMap::new("t.vlt", "ab\ncd\n\nef");
        assert_eq!(sm.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(sm.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(sm.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(sm.line_col(7), LineCol { line: 4, col: 1 });
        assert_eq!(sm.line_col(8), LineCol { line: 4, col: 2 });
    }

    #[test]
    fn snippet_and_line_text() {
        let sm = SourceMap::new("t.vlt", "let x;\nfree(p);\n");
        assert_eq!(sm.snippet(Span::new(7, 11)), "free");
        assert_eq!(sm.line_text(9), "free(p);");
        assert_eq!(sm.snippet(Span::new(100, 200)), "");
    }

    #[test]
    fn line_col_at_exact_line_starts() {
        let sm = SourceMap::new("t", "x\ny\nz");
        // offsets 0,2,4 are line starts
        assert_eq!(sm.line_col(2).line, 2);
        assert_eq!(sm.line_col(4).line, 3);
    }
}
