//! Exhaustive identifier collection over a parsed [`Program`].
//!
//! The checker interns identifiers into per-unit symbols whose ordering
//! must match string ordering (see `vault-types::intern`); that only
//! holds if the interner is seeded with **every** identifier the
//! program can mention before checking begins. This walker visits every
//! AST node that carries an [`Ident`] — declarations, type expressions,
//! effect clauses, statements, patterns, and expressions — and collects
//! the names into a sorted set.
//!
//! Exhaustiveness matters for correctness, not just performance: a name
//! missed here would intern to the unknown sentinel, and two such names
//! would collide. Every `match` below is non-wildcard over the node
//! kinds that contain identifiers, so adding an AST variant is a
//! compile error until this walker handles it.

use crate::ast::*;
use std::collections::BTreeSet;

/// Collect the name of every identifier appearing anywhere in `program`,
/// in sorted order (the iteration order of the returned set).
pub fn ident_names(program: &Program) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    for d in &program.decls {
        decl(d, &mut names);
    }
    names
}

fn decl<'a>(d: &'a Decl, out: &mut BTreeSet<&'a str>) {
    match d {
        Decl::Interface(i) => {
            out.insert(&i.name.name);
            for d in &i.decls {
                decl(d, out);
            }
        }
        Decl::Struct(s) => {
            out.insert(&s.name.name);
            tparams(&s.params, out);
            for f in &s.fields {
                out.insert(&f.name.name);
                ty(&f.ty, out);
            }
        }
        Decl::Variant(v) => {
            out.insert(&v.name.name);
            tparams(&v.params, out);
            for c in &v.ctors {
                out.insert(&c.name.name);
                for t in &c.args {
                    ty(t, out);
                }
                for k in &c.captures {
                    key_state_ref(k, out);
                }
            }
        }
        Decl::TypeAlias(a) => {
            out.insert(&a.name.name);
            tparams(&a.params, out);
            if let Some(t) = &a.body {
                ty(t, out);
            }
        }
        Decl::Stateset(s) => {
            out.insert(&s.name.name);
            for chain in &s.chains {
                for state in chain {
                    out.insert(&state.name);
                }
            }
        }
        Decl::GlobalKey(g) => {
            out.insert(&g.name.name);
            if let Some(s) = &g.stateset {
                out.insert(&s.name);
            }
        }
        Decl::Fun(f) => fun_decl(f, out),
    }
}

fn fun_decl<'a>(f: &'a FunDecl, out: &mut BTreeSet<&'a str>) {
    out.insert(&f.name.name);
    ty(&f.ret, out);
    tparams(&f.tparams, out);
    for p in &f.params {
        ty(&p.ty, out);
        if let Some(n) = &p.name {
            out.insert(&n.name);
        }
    }
    if let Some(e) = &f.effect {
        effect(e, out);
    }
    if let Some(b) = &f.body {
        block(b, out);
    }
}

fn tparams<'a>(ps: &'a [TParam], out: &mut BTreeSet<&'a str>) {
    for p in ps {
        match p {
            TParam::Type(n) | TParam::Key(n) => {
                out.insert(&n.name);
            }
            TParam::State { name, bound } => {
                out.insert(&name.name);
                if let Some(b) = bound {
                    out.insert(&b.name);
                }
            }
        }
    }
}

fn key_state_ref<'a>(k: &'a KeyStateRef, out: &mut BTreeSet<&'a str>) {
    out.insert(&k.key.name);
    if let Some(s) = &k.state {
        state_ref(s, out);
    }
}

fn state_ref<'a>(s: &'a StateRef, out: &mut BTreeSet<&'a str>) {
    match s {
        StateRef::Name(n) => {
            out.insert(&n.name);
        }
        StateRef::Bounded { var, bound } => {
            out.insert(&var.name);
            out.insert(&bound.name);
        }
    }
}

fn ty<'a>(t: &'a Type, out: &mut BTreeSet<&'a str>) {
    match &t.kind {
        TypeKind::Void | TypeKind::Int | TypeKind::Bool | TypeKind::Byte | TypeKind::Str => {}
        TypeKind::Named { name, args } => {
            out.insert(&name.name);
            for a in args {
                match a {
                    TypeArg::Type(t) => ty(t, out),
                }
            }
        }
        TypeKind::Array(inner) => ty(inner, out),
        TypeKind::Tuple(items) => {
            for t in items {
                ty(t, out);
            }
        }
        TypeKind::Tracked { key, inner } => {
            if let Some(k) = key {
                out.insert(&k.name);
            }
            ty(inner, out);
        }
        TypeKind::Guarded { guards, inner } => {
            for g in guards {
                key_state_ref(g, out);
            }
            ty(inner, out);
        }
        TypeKind::Fn(f) => {
            ty(&f.ret, out);
            for p in &f.params {
                ty(p, out);
            }
            if let Some(e) = &f.effect {
                effect(e, out);
            }
        }
    }
}

fn effect<'a>(e: &'a Effect, out: &mut BTreeSet<&'a str>) {
    for item in &e.items {
        match item {
            EffectItem::Keep { key, from, to } => {
                out.insert(&key.name);
                if let Some(s) = from {
                    state_ref(s, out);
                }
                if let Some(t) = to {
                    out.insert(&t.name);
                }
            }
            EffectItem::Consume { key, state } => {
                out.insert(&key.name);
                if let Some(s) = state {
                    state_ref(s, out);
                }
            }
            EffectItem::Produce { key, state } | EffectItem::Fresh { key, state } => {
                out.insert(&key.name);
                if let Some(s) = state {
                    out.insert(&s.name);
                }
            }
        }
    }
}

fn block<'a>(b: &'a Block, out: &mut BTreeSet<&'a str>) {
    for s in &b.stmts {
        stmt(s, out);
    }
}

fn stmt<'a>(s: &'a Stmt, out: &mut BTreeSet<&'a str>) {
    match &s.kind {
        StmtKind::Local { ty: t, name, init } => {
            ty(t, out);
            out.insert(&name.name);
            if let Some(e) = init {
                expr(e, out);
            }
        }
        StmtKind::NestedFun(f) => fun_decl(f, out),
        StmtKind::Expr(e) | StmtKind::Incr(e) | StmtKind::Decr(e) | StmtKind::Free(e) => {
            expr(e, out)
        }
        StmtKind::Assign { lhs, rhs } => {
            expr(lhs, out);
            expr(rhs, out);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr(cond, out);
            stmt(then_branch, out);
            if let Some(e) = else_branch {
                stmt(e, out);
            }
        }
        StmtKind::While { cond, body } => {
            expr(cond, out);
            stmt(body, out);
        }
        StmtKind::Switch { scrutinee, arms } => {
            expr(scrutinee, out);
            for arm in arms {
                out.insert(&arm.ctor.name);
                for b in &arm.binders {
                    match b {
                        PatBinder::Name(n) => {
                            out.insert(&n.name);
                        }
                        PatBinder::Wild(_) => {}
                    }
                }
                for s in &arm.body {
                    stmt(s, out);
                }
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                expr(e, out);
            }
        }
        StmtKind::Block(b) => block(b, out),
    }
}

fn expr<'a>(e: &'a Expr, out: &mut BTreeSet<&'a str>) {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) => {}
        ExprKind::Var(n) => {
            out.insert(&n.name);
        }
        ExprKind::Field(base, name) => {
            expr(base, out);
            out.insert(&name.name);
        }
        ExprKind::Index(base, index) => {
            expr(base, out);
            expr(index, out);
        }
        ExprKind::Call {
            callee,
            targs,
            args,
        } => {
            expr(callee, out);
            for a in targs {
                match a {
                    TypeArg::Type(t) => ty(t, out),
                }
            }
            for a in args {
                expr(a, out);
            }
        }
        ExprKind::Ctor { name, args, keys } => {
            out.insert(&name.name);
            for a in args {
                expr(a, out);
            }
            for k in keys {
                key_state_ref(k, out);
            }
        }
        ExprKind::New {
            region,
            ty: name,
            targs,
            inits,
        } => {
            if let Some(r) = region {
                expr(r, out);
            }
            out.insert(&name.name);
            for a in targs {
                match a {
                    TypeArg::Type(t) => ty(t, out),
                }
            }
            for init in inits {
                out.insert(&init.name.name);
                expr(&init.value, out);
            }
        }
        ExprKind::Unary(_, inner) => expr(inner, out),
        ExprKind::Binary(_, lhs, rhs) => {
            expr(lhs, out);
            expr(rhs, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_names_from_every_layer() {
        let mut diags = crate::diag::DiagSink::new();
        let p = crate::parse_program(
            r#"
            interface REGION {
              type region;
              tracked(R) region create() [new R];
              void delete(tracked(R) region) [-R];
            }
            stateset FS = [ open < closed ];
            key IRQL @ FS;
            struct point { int x; int y; }
            variant opt<key K> [ 'None | 'Some {K@open} ];
            type pair = (int, bool);
            void main(bool flag) {
              tracked(R) region rgn = Region.create();
              R:point pt = new(rgn) point {x=1; y=2;};
              if (flag) { pt.x++; }
              switch ('None) { case 'None: return; case 'Some(v): return; }
              Region.delete(rgn);
            }
            "#,
            &mut diags,
        );
        let names = ident_names(&p);
        for want in [
            "REGION", "region", "create", "delete", "R", "FS", "open", "closed", "IRQL", "point",
            "x", "y", "opt", "K", "None", "Some", "pair", "main", "flag", "rgn", "pt", "Region",
            "v",
        ] {
            assert!(names.contains(want), "missing `{want}`");
        }
        // Sorted iteration, by BTreeSet construction.
        let v: Vec<&str> = names.iter().copied().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(v, sorted);
    }
}
