//! Exhaustive identifier collection over a parsed [`Program`].
//!
//! The checker interns identifiers into per-unit symbols whose ordering
//! must match string ordering (see `vault-types::intern`); that only
//! holds if the interner is seeded with **every** identifier the
//! program can mention before checking begins. This walker visits every
//! AST node that carries an [`Ident`] — declarations, type expressions,
//! effect clauses, statements, patterns, and expressions — and collects
//! the names into a sorted set.
//!
//! Exhaustiveness matters for correctness, not just performance: a name
//! missed here would intern to the unknown sentinel, and two such names
//! would collide. Every `match` below is non-wildcard over the node
//! kinds that contain identifiers, so adding an AST variant is a
//! compile error until this walker handles it.

use crate::ast::*;
use std::collections::BTreeSet;

/// Collect the name of every identifier appearing anywhere in `program`,
/// in sorted order (the iteration order of the returned set).
pub fn ident_names(program: &Program) -> BTreeSet<&str> {
    let mut names = BTreeSet::new();
    for d in &program.decls {
        decl(d, &mut names);
    }
    names
}

fn decl<'a>(d: &'a Decl, out: &mut BTreeSet<&'a str>) {
    match d {
        Decl::Interface(i) => {
            out.insert(&i.name.name);
            for d in &i.decls {
                decl(d, out);
            }
        }
        Decl::Struct(s) => {
            out.insert(&s.name.name);
            tparams(&s.params, out);
            for f in &s.fields {
                out.insert(&f.name.name);
                ty(&f.ty, out);
            }
        }
        Decl::Variant(v) => {
            out.insert(&v.name.name);
            tparams(&v.params, out);
            for c in &v.ctors {
                out.insert(&c.name.name);
                for t in &c.args {
                    ty(t, out);
                }
                for k in &c.captures {
                    key_state_ref(k, out);
                }
            }
        }
        Decl::TypeAlias(a) => {
            out.insert(&a.name.name);
            tparams(&a.params, out);
            if let Some(t) = &a.body {
                ty(t, out);
            }
        }
        Decl::Stateset(s) => {
            out.insert(&s.name.name);
            for chain in &s.chains {
                for state in chain {
                    out.insert(&state.name);
                }
            }
        }
        Decl::GlobalKey(g) => {
            out.insert(&g.name.name);
            if let Some(s) = &g.stateset {
                out.insert(&s.name);
            }
        }
        Decl::Fun(f) => fun_decl(f, out),
        // The import path is a string literal, not an identifier.
        Decl::Import(_) => {}
    }
}

fn fun_decl<'a>(f: &'a FunDecl, out: &mut BTreeSet<&'a str>) {
    out.insert(&f.name.name);
    ty(&f.ret, out);
    tparams(&f.tparams, out);
    for p in &f.params {
        ty(&p.ty, out);
        if let Some(n) = &p.name {
            out.insert(&n.name);
        }
    }
    if let Some(e) = &f.effect {
        effect(e, out);
    }
    if let Some(b) = &f.body {
        block(b, out);
    }
}

fn tparams<'a>(ps: &'a [TParam], out: &mut BTreeSet<&'a str>) {
    for p in ps {
        match p {
            TParam::Type(n) | TParam::Key(n) => {
                out.insert(&n.name);
            }
            TParam::State { name, bound } => {
                out.insert(&name.name);
                if let Some(b) = bound {
                    out.insert(&b.name);
                }
            }
        }
    }
}

fn key_state_ref<'a>(k: &'a KeyStateRef, out: &mut BTreeSet<&'a str>) {
    out.insert(&k.key.name);
    if let Some(s) = &k.state {
        state_ref(s, out);
    }
}

fn state_ref<'a>(s: &'a StateRef, out: &mut BTreeSet<&'a str>) {
    match s {
        StateRef::Name(n) => {
            out.insert(&n.name);
        }
        StateRef::Bounded { var, bound } => {
            out.insert(&var.name);
            out.insert(&bound.name);
        }
    }
}

fn ty<'a>(t: &'a Type, out: &mut BTreeSet<&'a str>) {
    match &t.kind {
        TypeKind::Void | TypeKind::Int | TypeKind::Bool | TypeKind::Byte | TypeKind::Str => {}
        TypeKind::Named { name, args } => {
            out.insert(&name.name);
            for a in args {
                match a {
                    TypeArg::Type(t) => ty(t, out),
                }
            }
        }
        TypeKind::Array(inner) => ty(inner, out),
        TypeKind::Tuple(items) => {
            for t in items {
                ty(t, out);
            }
        }
        TypeKind::Tracked { key, inner } => {
            if let Some(k) = key {
                out.insert(&k.name);
            }
            ty(inner, out);
        }
        TypeKind::Guarded { guards, inner } => {
            for g in guards {
                key_state_ref(g, out);
            }
            ty(inner, out);
        }
        TypeKind::Fn(f) => {
            ty(&f.ret, out);
            for p in &f.params {
                ty(p, out);
            }
            if let Some(e) = &f.effect {
                effect(e, out);
            }
        }
    }
}

fn effect<'a>(e: &'a Effect, out: &mut BTreeSet<&'a str>) {
    for item in &e.items {
        match item {
            EffectItem::Keep { key, from, to } => {
                out.insert(&key.name);
                if let Some(s) = from {
                    state_ref(s, out);
                }
                if let Some(t) = to {
                    out.insert(&t.name);
                }
            }
            EffectItem::Consume { key, state } => {
                out.insert(&key.name);
                if let Some(s) = state {
                    state_ref(s, out);
                }
            }
            EffectItem::Produce { key, state } | EffectItem::Fresh { key, state } => {
                out.insert(&key.name);
                if let Some(s) = state {
                    out.insert(&s.name);
                }
            }
            EffectItem::Uses { cap } => {
                out.insert(&cap.name);
            }
        }
    }
}

fn block<'a>(b: &'a Block, out: &mut BTreeSet<&'a str>) {
    for s in &b.stmts {
        stmt(s, out);
    }
}

fn stmt<'a>(s: &'a Stmt, out: &mut BTreeSet<&'a str>) {
    match &s.kind {
        StmtKind::Local { ty: t, name, init } => {
            ty(t, out);
            out.insert(&name.name);
            if let Some(e) = init {
                expr(e, out);
            }
        }
        StmtKind::NestedFun(f) => fun_decl(f, out),
        StmtKind::Expr(e) | StmtKind::Incr(e) | StmtKind::Decr(e) | StmtKind::Free(e) => {
            expr(e, out)
        }
        StmtKind::Assign { lhs, rhs } => {
            expr(lhs, out);
            expr(rhs, out);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr(cond, out);
            stmt(then_branch, out);
            if let Some(e) = else_branch {
                stmt(e, out);
            }
        }
        StmtKind::While { cond, body } => {
            expr(cond, out);
            stmt(body, out);
        }
        StmtKind::Switch { scrutinee, arms } => {
            expr(scrutinee, out);
            for arm in arms {
                out.insert(&arm.ctor.name);
                for b in &arm.binders {
                    match b {
                        PatBinder::Name(n) => {
                            out.insert(&n.name);
                        }
                        PatBinder::Wild(_) => {}
                    }
                }
                for s in &arm.body {
                    stmt(s, out);
                }
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                expr(e, out);
            }
        }
        StmtKind::Block(b) => block(b, out),
    }
}

fn expr<'a>(e: &'a Expr, out: &mut BTreeSet<&'a str>) {
    match &e.kind {
        ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) => {}
        ExprKind::Var(n) => {
            out.insert(&n.name);
        }
        ExprKind::Field(base, name) => {
            expr(base, out);
            out.insert(&name.name);
        }
        ExprKind::Index(base, index) => {
            expr(base, out);
            expr(index, out);
        }
        ExprKind::Call {
            callee,
            targs,
            args,
        } => {
            expr(callee, out);
            for a in targs {
                match a {
                    TypeArg::Type(t) => ty(t, out),
                }
            }
            for a in args {
                expr(a, out);
            }
        }
        ExprKind::Ctor { name, args, keys } => {
            out.insert(&name.name);
            for a in args {
                expr(a, out);
            }
            for k in keys {
                key_state_ref(k, out);
            }
        }
        ExprKind::New {
            region,
            ty: name,
            targs,
            inits,
        } => {
            if let Some(r) = region {
                expr(r, out);
            }
            out.insert(&name.name);
            for a in targs {
                match a {
                    TypeArg::Type(t) => ty(t, out),
                }
            }
            for init in inits {
                out.insert(&init.name.name);
                expr(&init.value, out);
            }
        }
        ExprKind::Unary(_, inner) => expr(inner, out),
        ExprKind::Binary(_, lhs, rhs) => {
            expr(lhs, out);
            expr(rhs, out);
        }
    }
}

// ---------------------------------------------------------------------------
// Mutable walk: visit every `Ident` in place.
//
// The parser lexes into a growable interner (first-seen order) and then
// freezes it into string-sorted order; this walk is how it rewrites every
// `Ident::sym` in the finished AST through the freeze's remap table. The
// incremental engine reuses it to re-intern a spliced `FunDecl` against a
// cached unit's interner. Mirrors the collection walk above node for node,
// with the same exhaustiveness discipline: every `match` is non-wildcard
// over identifier-carrying variants.
// ---------------------------------------------------------------------------

/// Apply `f` to every [`Ident`] appearing anywhere in `program`.
pub fn remap_idents(program: &mut Program, f: &mut impl FnMut(&mut Ident)) {
    for d in &mut program.decls {
        decl_mut(d, f);
    }
}

/// Apply `f` to every [`Ident`] appearing anywhere in `e`.
pub fn remap_idents_expr(e: &mut Expr, f: &mut impl FnMut(&mut Ident)) {
    expr_mut(e, f);
}

/// Apply `f` to every [`Ident`] appearing anywhere in the function
/// declaration `fun` (signature, effect clause, and body).
pub fn remap_idents_fun(fun: &mut FunDecl, f: &mut impl FnMut(&mut Ident)) {
    fun_decl_mut(fun, f);
}

fn decl_mut(d: &mut Decl, f: &mut impl FnMut(&mut Ident)) {
    match d {
        Decl::Interface(i) => {
            f(&mut i.name);
            for d in &mut i.decls {
                decl_mut(d, f);
            }
        }
        Decl::Struct(s) => {
            f(&mut s.name);
            tparams_mut(&mut s.params, f);
            for field in &mut s.fields {
                f(&mut field.name);
                ty_mut(&mut field.ty, f);
            }
        }
        Decl::Variant(v) => {
            f(&mut v.name);
            tparams_mut(&mut v.params, f);
            for c in &mut v.ctors {
                f(&mut c.name);
                for t in &mut c.args {
                    ty_mut(t, f);
                }
                for k in &mut c.captures {
                    key_state_ref_mut(k, f);
                }
            }
        }
        Decl::TypeAlias(a) => {
            f(&mut a.name);
            tparams_mut(&mut a.params, f);
            if let Some(t) = &mut a.body {
                ty_mut(t, f);
            }
        }
        Decl::Stateset(s) => {
            f(&mut s.name);
            for chain in &mut s.chains {
                for state in chain {
                    f(state);
                }
            }
        }
        Decl::GlobalKey(g) => {
            f(&mut g.name);
            if let Some(s) = &mut g.stateset {
                f(s);
            }
        }
        Decl::Fun(fun) => fun_decl_mut(fun, f),
        // The import path is a string literal, not an identifier.
        Decl::Import(_) => {}
    }
}

fn fun_decl_mut(fun: &mut FunDecl, f: &mut impl FnMut(&mut Ident)) {
    f(&mut fun.name);
    ty_mut(&mut fun.ret, f);
    tparams_mut(&mut fun.tparams, f);
    for p in &mut fun.params {
        ty_mut(&mut p.ty, f);
        if let Some(n) = &mut p.name {
            f(n);
        }
    }
    if let Some(e) = &mut fun.effect {
        effect_mut(e, f);
    }
    if let Some(b) = &mut fun.body {
        block_mut(b, f);
    }
}

fn tparams_mut(ps: &mut [TParam], f: &mut impl FnMut(&mut Ident)) {
    for p in ps {
        match p {
            TParam::Type(n) | TParam::Key(n) => f(n),
            TParam::State { name, bound } => {
                f(name);
                if let Some(b) = bound {
                    f(b);
                }
            }
        }
    }
}

fn key_state_ref_mut(k: &mut KeyStateRef, f: &mut impl FnMut(&mut Ident)) {
    f(&mut k.key);
    if let Some(s) = &mut k.state {
        state_ref_mut(s, f);
    }
}

fn state_ref_mut(s: &mut StateRef, f: &mut impl FnMut(&mut Ident)) {
    match s {
        StateRef::Name(n) => f(n),
        StateRef::Bounded { var, bound } => {
            f(var);
            f(bound);
        }
    }
}

fn ty_mut(t: &mut Type, f: &mut impl FnMut(&mut Ident)) {
    match &mut t.kind {
        TypeKind::Void | TypeKind::Int | TypeKind::Bool | TypeKind::Byte | TypeKind::Str => {}
        TypeKind::Named { name, args } => {
            f(name);
            for a in args {
                match a {
                    TypeArg::Type(t) => ty_mut(t, f),
                }
            }
        }
        TypeKind::Array(inner) => ty_mut(inner, f),
        TypeKind::Tuple(items) => {
            for t in items {
                ty_mut(t, f);
            }
        }
        TypeKind::Tracked { key, inner } => {
            if let Some(k) = key {
                f(k);
            }
            ty_mut(inner, f);
        }
        TypeKind::Guarded { guards, inner } => {
            for g in guards {
                key_state_ref_mut(g, f);
            }
            ty_mut(inner, f);
        }
        TypeKind::Fn(sig) => {
            ty_mut(&mut sig.ret, f);
            for p in &mut sig.params {
                ty_mut(p, f);
            }
            if let Some(e) = &mut sig.effect {
                effect_mut(e, f);
            }
        }
    }
}

fn effect_mut(e: &mut Effect, f: &mut impl FnMut(&mut Ident)) {
    for item in &mut e.items {
        match item {
            EffectItem::Keep { key, from, to } => {
                f(key);
                if let Some(s) = from {
                    state_ref_mut(s, f);
                }
                if let Some(t) = to {
                    f(t);
                }
            }
            EffectItem::Consume { key, state } => {
                f(key);
                if let Some(s) = state {
                    state_ref_mut(s, f);
                }
            }
            EffectItem::Produce { key, state } | EffectItem::Fresh { key, state } => {
                f(key);
                if let Some(s) = state {
                    f(s);
                }
            }
            EffectItem::Uses { cap } => f(cap),
        }
    }
}

fn block_mut(b: &mut Block, f: &mut impl FnMut(&mut Ident)) {
    for s in &mut b.stmts {
        stmt_mut(s, f);
    }
}

fn stmt_mut(s: &mut Stmt, f: &mut impl FnMut(&mut Ident)) {
    match &mut s.kind {
        StmtKind::Local { ty: t, name, init } => {
            ty_mut(t, f);
            f(name);
            if let Some(e) = init {
                expr_mut(e, f);
            }
        }
        StmtKind::NestedFun(fun) => fun_decl_mut(fun, f),
        StmtKind::Expr(e) | StmtKind::Incr(e) | StmtKind::Decr(e) | StmtKind::Free(e) => {
            expr_mut(e, f)
        }
        StmtKind::Assign { lhs, rhs } => {
            expr_mut(lhs, f);
            expr_mut(rhs, f);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expr_mut(cond, f);
            stmt_mut(then_branch, f);
            if let Some(e) = else_branch {
                stmt_mut(e, f);
            }
        }
        StmtKind::While { cond, body } => {
            expr_mut(cond, f);
            stmt_mut(body, f);
        }
        StmtKind::Switch { scrutinee, arms } => {
            expr_mut(scrutinee, f);
            for arm in arms {
                f(&mut arm.ctor);
                for b in &mut arm.binders {
                    match b {
                        PatBinder::Name(n) => f(n),
                        PatBinder::Wild(_) => {}
                    }
                }
                for s in &mut arm.body {
                    stmt_mut(s, f);
                }
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                expr_mut(e, f);
            }
        }
        StmtKind::Block(b) => block_mut(b, f),
    }
}

fn expr_mut(e: &mut Expr, f: &mut impl FnMut(&mut Ident)) {
    match &mut e.kind {
        ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::StrLit(_) => {}
        ExprKind::Var(n) => f(n),
        ExprKind::Field(base, name) => {
            expr_mut(base, f);
            f(name);
        }
        ExprKind::Index(base, index) => {
            expr_mut(base, f);
            expr_mut(index, f);
        }
        ExprKind::Call {
            callee,
            targs,
            args,
        } => {
            expr_mut(callee, f);
            for a in targs {
                match a {
                    TypeArg::Type(t) => ty_mut(t, f),
                }
            }
            for a in args {
                expr_mut(a, f);
            }
        }
        ExprKind::Ctor { name, args, keys } => {
            f(name);
            for a in args {
                expr_mut(a, f);
            }
            for k in keys {
                key_state_ref_mut(k, f);
            }
        }
        ExprKind::New {
            region,
            ty: name,
            targs,
            inits,
        } => {
            if let Some(r) = region {
                expr_mut(r, f);
            }
            f(name);
            for a in targs {
                match a {
                    TypeArg::Type(t) => ty_mut(t, f),
                }
            }
            for init in inits {
                f(&mut init.name);
                expr_mut(&mut init.value, f);
            }
        }
        ExprKind::Unary(_, inner) => expr_mut(inner, f),
        ExprKind::Binary(_, lhs, rhs) => {
            expr_mut(lhs, f);
            expr_mut(rhs, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_names_from_every_layer() {
        let mut diags = crate::diag::DiagSink::new();
        let p = crate::parse_program(
            r#"
            interface REGION {
              type region;
              tracked(R) region create() [new R];
              void delete(tracked(R) region) [-R];
            }
            stateset FS = [ open < closed ];
            key IRQL @ FS;
            struct point { int x; int y; }
            variant opt<key K> [ 'None | 'Some {K@open} ];
            type pair = (int, bool);
            void main(bool flag) {
              tracked(R) region rgn = Region.create();
              R:point pt = new(rgn) point {x=1; y=2;};
              if (flag) { pt.x++; }
              switch ('None) { case 'None: return; case 'Some(v): return; }
              Region.delete(rgn);
            }
            "#,
            &mut diags,
        );
        let names = ident_names(&p);
        for want in [
            "REGION", "region", "create", "delete", "R", "FS", "open", "closed", "IRQL", "point",
            "x", "y", "opt", "K", "None", "Some", "pair", "main", "flag", "rgn", "pt", "Region",
            "v",
        ] {
            assert!(names.contains(want), "missing `{want}`");
        }
        // Sorted iteration, by BTreeSet construction.
        let v: Vec<&str> = names.iter().copied().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(v, sorted);
    }

    #[test]
    fn remap_visits_the_same_idents_the_collector_sees() {
        let mut diags = crate::diag::DiagSink::new();
        let mut p = crate::parse_program(
            r#"
            stateset FS = [ open < closed ];
            key IRQL @ FS;
            variant opt<key K> [ 'None | 'Some {K@open} ];
            void main(bool flag) {
              tracked(R) region rgn = Region.create();
              switch ('None) { case 'None: return; case 'Some(v): return; }
            }
            "#,
            &mut diags,
        );
        let collected: BTreeSet<String> = ident_names(&p).iter().map(|s| s.to_string()).collect();
        let mut visited = BTreeSet::new();
        remap_idents(&mut p, &mut |id| {
            visited.insert(id.name.to_string());
        });
        assert_eq!(collected, visited);
    }

    #[test]
    fn parser_symbols_resolve_to_their_names() {
        // After parsing, every ident's symbol must resolve (through the
        // program's frozen interner) back to exactly its textual name.
        let mut diags = crate::diag::DiagSink::new();
        let mut p = crate::parse_program(
            r#"
            struct point { int x; int y; }
            void main() { point pt = new point {x=1; y=2;}; pt.x++; }
            "#,
            &mut diags,
        );
        assert!(!diags.has_errors());
        let syms = std::sync::Arc::clone(&p.syms);
        remap_idents(&mut p, &mut |id| {
            assert_ne!(id.sym, crate::intern::Symbol::UNKNOWN, "{}", id.name);
            assert_eq!(syms.resolve(id.sym), &*id.name, "symbol/name mismatch");
            assert_eq!(syms.sym(&id.name), id.sym, "intern round-trip");
        });
    }
}
