//! Robustness: the front end must never panic, whatever bytes arrive. It
//! either parses or reports diagnostics.

// Requires the real `proptest` crate, unavailable in the offline build
// environment; enable the `proptests` feature after vendoring it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use vault_syntax::{lexer, parse_program, DiagSink};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total over arbitrary strings.
    #[test]
    fn lexer_never_panics(src in ".{0,200}") {
        let mut diags = DiagSink::new();
        let toks = lexer::lex(&src, &mut diags);
        // Always terminated by EOF.
        prop_assert!(matches!(
            toks.last().map(|t| &t.kind),
            Some(vault_syntax::token::TokenKind::Eof)
        ));
    }

    /// The parser is total over arbitrary strings.
    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let mut diags = DiagSink::new();
        let _ = parse_program(&src, &mut diags);
    }

    /// The parser is total over token-shaped soup (valid lexemes, random
    /// order) — the harder case for recovery logic.
    #[test]
    fn parser_survives_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("struct"), Just("variant"), Just("type"), Just("stateset"),
                Just("key"), Just("tracked"), Just("new"), Just("free"),
                Just("switch"), Just("case"), Just("if"), Just("else"),
                Just("while"), Just("return"), Just("int"), Just("void"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
                Just("<"), Just(">"), Just(","), Just(";"), Just(":"), Just("@"),
                Just("="), Just("->"), Just("|"), Just("'Ctor"), Just("x"),
                Just("K"), Just("42"), Just("+"), Just("-"),
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let mut diags = DiagSink::new();
        let _ = parse_program(&src, &mut diags);
    }

    /// Checking arbitrary near-miss programs never panics either (the
    /// full pipeline is total).
    #[test]
    fn checker_total_over_mutated_sources(
        seed_choice in 0usize..3,
        cut_at in 0usize..400,
        insert in "[a-z{}();@ ]{0,12}",
    ) {
        let bases = [
            "type FILE;\ntracked(F) FILE fopen(string p) [new F];\nvoid fclose(tracked(F) FILE f) [-F];\nvoid f() { tracked(F) FILE x = fopen(\"a\"); fclose(x); }",
            "variant v<key K> [ 'A | 'B {K} ];\nvoid g(tracked(X) int p) [-X];",
            "stateset S = [ a < b ];\nkey G @ S;\nvoid h() [G@a] { }",
        ];
        let base = bases[seed_choice];
        let cut = cut_at.min(base.len());
        // Cut at a char boundary.
        let mut cut_fixed = cut;
        while !base.is_char_boundary(cut_fixed) {
            cut_fixed -= 1;
        }
        let mutated = format!("{}{}{}", &base[..cut_fixed], insert, &base[cut_fixed..]);
        vault_core_smoke(&mutated);
    }
}

/// Minimal shim so this test crate doesn't depend on vault-core: run just
/// the front end (vault-core's totality is covered by its own fuzz-ish
/// tests through the corpus).
fn vault_core_smoke(src: &str) {
    let mut diags = DiagSink::new();
    let _ = parse_program(src, &mut diags);
}
