//! Property-based round-trip tests: pretty-printing a parsed program and
//! re-parsing it reaches a fixpoint, for randomly generated expressions,
//! types, and effect clauses.

// Requires the real `proptest` crate, unavailable in the offline build
// environment; enable the `proptests` feature after vendoring it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use vault_syntax::{parse_expr, parse_program, pretty, DiagSink};

// ---------------------------------------------------------------------
// Random source generators (strings in the surface grammar)
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        vault_syntax::token::TokenKind::keyword(s).is_none()
    })
}

fn expr_src(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|n| n.to_string()),
        ident(),
        Just("true".to_string()),
        Just("false".to_string()),
    ];
    leaf.prop_recursive(depth, 64, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("=="),
                    Just("!="),
                    Just("<"),
                    Just("<="),
                    Just("&&"),
                    Just("||"),
                ]
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (inner.clone(),).prop_map(|(a,)| format!("!({a})")),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| format!("{f}({})", args.join(", "))),
            (inner, ident()).prop_map(|(a, f)| format!("({a}).{f}")),
        ]
    })
    .boxed()
}

fn type_src() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("int".to_string()),
        Just("bool".to_string()),
        Just("void".to_string()),
        Just("byte[]".to_string()),
        ident(),
        ident().prop_map(|k| format!("tracked({}) sometype", k.to_uppercase())),
        Just("tracked sometype".to_string()),
    ]
}

fn effect_src() -> impl Strategy<Value = String> {
    let item = prop_oneof![
        ident().prop_map(|k| k.to_uppercase()),
        ident().prop_map(|k| format!("-{}", k.to_uppercase())),
        ident().prop_map(|k| format!("+{}", k.to_uppercase())),
        ident().prop_map(|k| format!("new {}", k.to_uppercase())),
        (ident(), ident()).prop_map(|(k, s)| format!("{}@{s}", k.to_uppercase())),
        (ident(), ident(), ident())
            .prop_map(|(k, a, b)| format!("{}@{a} -> {b}", k.to_uppercase())),
    ];
    proptest::collection::vec(item, 1..4).prop_map(|items| format!("[{}]", items.join(", ")))
}

fn parse_print_fixpoint(src: &str) -> Result<(), TestCaseError> {
    let mut d1 = DiagSink::new();
    let p1 = parse_program(src, &mut d1);
    prop_assume!(!d1.has_errors()); // generator may produce junk idents only
    let printed1 = pretty::program_to_string(&p1);
    let mut d2 = DiagSink::new();
    let p2 = parse_program(&printed1, &mut d2);
    prop_assert!(
        !d2.has_errors(),
        "printed output failed to reparse:\n{printed1}\n{:?}",
        d2.diagnostics()
    );
    let printed2 = pretty::program_to_string(&p2);
    prop_assert_eq!(printed1, printed2);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Expressions round-trip through print → parse → print.
    #[test]
    fn expr_round_trip(src in expr_src(3)) {
        let mut d1 = DiagSink::new();
        let Some(e1) = parse_expr(&src, &mut d1) else {
            return Err(TestCaseError::fail(format!("generator produced unparseable `{src}`")));
        };
        prop_assert!(!d1.has_errors(), "{src}: {:?}", d1.diagnostics());
        let printed1 = pretty::expr_to_string(&e1);
        let mut d2 = DiagSink::new();
        let e2 = parse_expr(&printed1, &mut d2).expect("reparse");
        prop_assert!(!d2.has_errors());
        let printed2 = pretty::expr_to_string(&e2);
        prop_assert_eq!(printed1, printed2);
    }

    /// Function signatures with random types and effects round-trip.
    #[test]
    fn signature_round_trip(
        ret in type_src(),
        name in ident(),
        ptys in proptest::collection::vec(type_src(), 0..3),
        eff in effect_src(),
    ) {
        prop_assume!(ret != "byte[]"); // return arrays aside, keep it simple
        let params: Vec<String> = ptys
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{t} p{i}"))
            .collect();
        let src = format!("type sometype;\n{ret} {name}({}) {eff};", params.join(", "));
        parse_print_fixpoint(&src)?;
    }

    /// Statement-heavy bodies round-trip.
    #[test]
    fn body_round_trip(
        exprs in proptest::collection::vec(expr_src(2), 1..6),
        cond in expr_src(1),
    ) {
        let stmts: Vec<String> = exprs.iter().map(|e| format!("  x = {e};")).collect();
        let src = format!(
            "void f(int x, bool b) {{\n{}\n  if ({cond}) {{ x = 1; }} else {{ x = 2; }}\n  \
             while (b) {{ x = x + 1; }}\n  return;\n}}",
            stmts.join("\n")
        );
        parse_print_fixpoint(&src)?;
    }
}
