//! Every corpus program must produce exactly its recorded verdict — this
//! is the single source of truth the benches and the report binary rely
//! on.

use vault_core::{check_source, Verdict};
use vault_corpus::synth::Shape;
use vault_corpus::{all_programs, synth, Expectation};

#[test]
fn every_corpus_program_matches_its_expectation() {
    let mut failures = Vec::new();
    for p in all_programs() {
        let r = check_source(p.id, &p.source);
        match &p.expect {
            Expectation::Accept => {
                if r.verdict() != Verdict::Accepted {
                    failures.push(format!(
                        "{}: expected acceptance, got:\n{}",
                        p.id,
                        r.render_diagnostics()
                    ));
                }
            }
            Expectation::Reject(codes) => {
                if r.verdict() != Verdict::Rejected {
                    failures.push(format!("{}: expected rejection, was accepted", p.id));
                } else {
                    for c in codes {
                        if !r.has_code(*c) {
                            failures.push(format!(
                                "{}: expected {c}, got {:?}:\n{}",
                                p.id,
                                r.error_codes(),
                                r.render_diagnostics()
                            ));
                        }
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus mismatches:\n{}",
        failures.len(),
        failures.join("\n---\n")
    );
}

#[test]
fn unused_capability_warns_without_rejecting() {
    // V704 is a warning: the verdict stays `Accepted`, so this mutant
    // lives outside the Reject corpus and is asserted directly.
    use vault_syntax::Code;
    let r = check_source(
        "sock_unused_cap",
        &vault_corpus::sockets::unused_cap_source(),
    );
    assert_eq!(r.verdict(), Verdict::Accepted, "{}", r.render_diagnostics());
    assert!(r.has_code(Code::CapUnused), "{}", r.render_diagnostics());
}

#[test]
fn clean_synthetic_programs_are_accepted() {
    for seed in 0..5 {
        let p = synth::generate(&synth::SynthConfig {
            functions: 8,
            stmts_per_fn: 15,
            seed,
            bug_rate: 0.0,
            shape: Shape::Mixed,
        });
        let r = check_source("synth", &p.source);
        assert_eq!(
            r.verdict(),
            Verdict::Accepted,
            "seed {seed}:\n{}\n{}",
            p.source,
            r.render_diagnostics()
        );
    }
}

#[test]
fn every_shape_generates_well_typed_programs() {
    for shape in [
        Shape::Mixed,
        Shape::Straight,
        Shape::Branchy,
        Shape::Loopy,
        Shape::VariantHeavy,
        Shape::Sockets,
    ] {
        let p = synth::generate(&synth::SynthConfig {
            functions: 5,
            stmts_per_fn: 12,
            seed: 77,
            bug_rate: 0.0,
            shape,
        });
        let r = check_source("synth", &p.source);
        assert_eq!(
            r.verdict(),
            Verdict::Accepted,
            "shape {shape:?}:\n{}\n{}",
            p.source,
            r.render_diagnostics()
        );
    }
}

#[test]
fn sockets_shape_bugs_are_detected_with_their_codes() {
    for seed in 0..6 {
        let p = synth::generate(&synth::SynthConfig {
            functions: 6,
            stmts_per_fn: 10,
            seed,
            bug_rate: 0.7,
            shape: Shape::Sockets,
        });
        let r = check_source("synth_sockets", &p.source);
        if p.expect_accept() {
            assert_eq!(r.verdict(), Verdict::Accepted, "seed {seed}");
            continue;
        }
        assert_eq!(r.verdict(), Verdict::Rejected, "seed {seed}");
        for (i, bug) in &p.seeded {
            assert!(
                r.has_code(bug.expected_code()),
                "seed {seed}: fn {i} seeded {bug:?} but {} missing:\n{}",
                bug.expected_code(),
                r.render_diagnostics()
            );
        }
    }
}

#[test]
fn synthetic_project_units_carry_their_ground_truth() {
    // Flatten each worker unit against the interface unit and check it
    // alone: clean units are accepted, seeded units are rejected with
    // the recorded code. (The project-mode variant of this assertion
    // lives in the server crate's socket tests.)
    let p = synth::generate_project(&synth::ProjectConfig {
        units: 10,
        fns_per_unit: 3,
        stmts_per_fn: 10,
        seed: 21,
        bug_rate: 0.5,
    });
    assert!(!p.seeded.is_empty(), "seed produced no buggy units");
    assert!(p.seeded.len() < 10, "seed produced no clean units");
    let iface = &p.units[0].1;
    for (i, (name, src)) in p.units.iter().enumerate().skip(1) {
        let body = src.replacen("import \"net_iface\";\n", "", 1);
        let r = check_source(name, &format!("{iface}\n{body}"));
        match p.seeded.iter().find(|(u, _)| *u == i) {
            None => assert_eq!(
                r.verdict(),
                Verdict::Accepted,
                "{name}:\n{}",
                r.render_diagnostics()
            ),
            Some((_, bug)) => {
                assert_eq!(r.verdict(), Verdict::Rejected, "{name} seeded {bug:?}");
                assert!(
                    r.has_code(bug.expected_code()),
                    "{name}: {bug:?} but {} missing:\n{}",
                    bug.expected_code(),
                    r.render_diagnostics()
                );
            }
        }
    }
}

#[test]
fn seeded_synthetic_bugs_are_all_detected() {
    for seed in 0..5 {
        let p = synth::generate(&synth::SynthConfig {
            functions: 8,
            stmts_per_fn: 12,
            seed,
            bug_rate: 0.6,
            shape: Shape::Mixed,
        });
        let r = check_source("synth", &p.source);
        if p.expect_accept() {
            assert_eq!(r.verdict(), Verdict::Accepted, "seed {seed}");
        } else {
            assert_eq!(
                r.verdict(),
                Verdict::Rejected,
                "seed {seed}: seeded {:?} but accepted",
                p.seeded
            );
            // Every seeded bug class shows up.
            use vault_corpus::synth::SeededBug;
            use vault_syntax::Code;
            if p.seeded.iter().any(|(_, b)| *b == SeededBug::Leak) {
                assert!(r.has_code(Code::KeyLeak), "seed {seed}");
            }
            if p.seeded.iter().any(|(_, b)| *b == SeededBug::Dangling) {
                assert!(r.has_code(Code::KeyNotHeld), "seed {seed}");
            }
        }
    }
}
