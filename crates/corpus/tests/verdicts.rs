//! Every corpus program must produce exactly its recorded verdict — this
//! is the single source of truth the benches and the report binary rely
//! on.

use vault_core::{check_source, Verdict};
use vault_corpus::synth::Shape;
use vault_corpus::{all_programs, synth, Expectation};

#[test]
fn every_corpus_program_matches_its_expectation() {
    let mut failures = Vec::new();
    for p in all_programs() {
        let r = check_source(p.id, &p.source);
        match &p.expect {
            Expectation::Accept => {
                if r.verdict() != Verdict::Accepted {
                    failures.push(format!(
                        "{}: expected acceptance, got:\n{}",
                        p.id,
                        r.render_diagnostics()
                    ));
                }
            }
            Expectation::Reject(codes) => {
                if r.verdict() != Verdict::Rejected {
                    failures.push(format!("{}: expected rejection, was accepted", p.id));
                } else {
                    for c in codes {
                        if !r.has_code(*c) {
                            failures.push(format!(
                                "{}: expected {c}, got {:?}:\n{}",
                                p.id,
                                r.error_codes(),
                                r.render_diagnostics()
                            ));
                        }
                    }
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus mismatches:\n{}",
        failures.len(),
        failures.join("\n---\n")
    );
}

#[test]
fn clean_synthetic_programs_are_accepted() {
    for seed in 0..5 {
        let p = synth::generate(&synth::SynthConfig {
            functions: 8,
            stmts_per_fn: 15,
            seed,
            bug_rate: 0.0,
            shape: Shape::Mixed,
        });
        let r = check_source("synth", &p.source);
        assert_eq!(
            r.verdict(),
            Verdict::Accepted,
            "seed {seed}:\n{}\n{}",
            p.source,
            r.render_diagnostics()
        );
    }
}

#[test]
fn every_shape_generates_well_typed_programs() {
    for shape in [
        Shape::Mixed,
        Shape::Straight,
        Shape::Branchy,
        Shape::Loopy,
        Shape::VariantHeavy,
    ] {
        let p = synth::generate(&synth::SynthConfig {
            functions: 5,
            stmts_per_fn: 12,
            seed: 77,
            bug_rate: 0.0,
            shape,
        });
        let r = check_source("synth", &p.source);
        assert_eq!(
            r.verdict(),
            Verdict::Accepted,
            "shape {shape:?}:\n{}\n{}",
            p.source,
            r.render_diagnostics()
        );
    }
}

#[test]
fn seeded_synthetic_bugs_are_all_detected() {
    for seed in 0..5 {
        let p = synth::generate(&synth::SynthConfig {
            functions: 8,
            stmts_per_fn: 12,
            seed,
            bug_rate: 0.6,
            shape: Shape::Mixed,
        });
        let r = check_source("synth", &p.source);
        if p.expect_accept() {
            assert_eq!(r.verdict(), Verdict::Accepted, "seed {seed}");
        } else {
            assert_eq!(
                r.verdict(),
                Verdict::Rejected,
                "seed {seed}: seeded {:?} but accepted",
                p.seeded
            );
            // Every seeded bug class shows up.
            use vault_corpus::synth::SeededBug;
            use vault_syntax::Code;
            if p.seeded.iter().any(|(_, b)| *b == SeededBug::Leak) {
                assert!(r.has_code(Code::KeyLeak), "seed {seed}");
            }
            if p.seeded.iter().any(|(_, b)| *b == SeededBug::Dangling) {
                assert!(r.has_code(Code::KeyNotHeld), "seed {seed}");
            }
        }
    }
}
