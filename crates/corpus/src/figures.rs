//! The paper's figure programs: regions (Figs. 1–2), sockets (Fig. 3,
//! §2.3), keyed variants (§2.1), anonymizing collections (Fig. 4), and
//! join points (Fig. 5).

use crate::{CorpusProgram, Expectation};
use vault_syntax::Code;

/// Fig. 1: the region interface, shared by all region programs.
pub const REGION_IFACE: &str = r#"
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
struct point { int x; int y; }
"#;

/// Fig. 3 interface plus the stateset the paper describes informally.
pub const SOCKET_IFACE: &str = r#"
stateset SOCK_STATE = [ raw < named < listening < ready ];
type sock;
struct sockaddr { int addr; int port; }
variant domain [ 'UNIX | 'INET ];
variant comm_style [ 'STREAM | 'DGRAM ];
tracked(S) sock socket(domain d, comm_style c, int proto) [new S@raw];
void bind(tracked(S) sock, sockaddr) [S@raw->named];
void listen(tracked(S) sock, int) [S@named->listening];
tracked(N) sock accept(tracked(S) sock, sockaddr) [S@listening, new N@ready];
void receive(tracked(S) sock, byte[]) [S@ready];
void close(tracked(S) sock) [-S];
"#;

/// §2.3: the failure-aware bind returning a keyed status variant.
pub const SOCKET_STATUS_IFACE: &str = r#"
variant status<key K> [ 'Ok {K@named} | 'Error(int){K@raw} ];
tracked status<S> bind2(tracked(S) sock, sockaddr) [-S@raw];
"#;

/// §2.1: files with open/closed states and the opt_key variant.
pub const FILE_IFACE: &str = r#"
stateset FILE_STATE = [ open < closed ];
type FILE;
tracked(F) FILE fopen(string path) [new F@open];
void fclose(tracked(F) FILE f) [-F];
variant opt_key<key K> [ 'NoKey | 'SomeKey {K} ];
"#;

fn p(
    id: &'static str,
    experiment: &'static str,
    description: &'static str,
    source: String,
    expect: Expectation,
) -> CorpusProgram {
    CorpusProgram {
        id,
        experiment,
        description,
        source,
        expect,
    }
}

/// All figure programs (experiments E1–E5 plus E2/E3 interfaces).
pub fn programs() -> Vec<CorpusProgram> {
    let mut v = Vec::new();

    // --- E1: Fig. 2 -----------------------------------------------------
    v.push(p(
        "fig2_okay",
        "E1",
        "Fig. 2 `okay`: correct region create/use/delete",
        format!(
            "{REGION_IFACE}
void okay() {{
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {{x=1; y=2;}};
  pt.x++;
  Region.delete(rgn);
}}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "fig2_dangling",
        "E1",
        "Fig. 2 `dangling`: access after Region.delete",
        format!(
            "{REGION_IFACE}
void dangling() {{
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {{x=1; y=2;}};
  Region.delete(rgn);
  pt.x++;
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "fig2_leaky",
        "E1",
        "Fig. 2 `leaky`: region never deleted",
        format!(
            "{REGION_IFACE}
void leaky() {{
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {{x=1; y=2;}};
  pt.x++;
}}"
        ),
        Expectation::reject(Code::KeyLeak),
    ));
    v.push(p(
        "region_double_delete",
        "E1",
        "double delete through the same key",
        format!(
            "{REGION_IFACE}
void twice() {{
  tracked(R) region rgn = Region.create();
  Region.delete(rgn);
  Region.delete(rgn);
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "region_alias_delete",
        "E1",
        "§3.1: deleting through an alias invalidates every name",
        format!(
            "{REGION_IFACE}
void alias() {{
  tracked(R) region rgn1 = Region.create();
  tracked(R) region rgn2 = rgn1;
  Region.delete(rgn2);
  R:point pt = new(rgn1) point {{x=1; y=2;}};
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));

    // --- E2: Fig. 3 / §2.3 sockets ---------------------------------------
    v.push(p(
        "sock_server_ok",
        "E2",
        "Fig. 3: the correct socket setup sequence",
        format!(
            "{SOCKET_IFACE}
void server(sockaddr a, byte[] buf) {{
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, a);
  listen(s, 5);
  tracked(N) sock conn = accept(s, a);
  receive(conn, buf);
  close(conn);
  close(s);
}}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "sock_skip_bind",
        "E2",
        "listen on a raw socket (skipped bind)",
        format!(
            "{SOCKET_IFACE}
void bad(sockaddr a) {{
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
  listen(s, 5);
  close(s);
}}"
        ),
        Expectation::reject(Code::WrongKeyState),
    ));
    v.push(p(
        "sock_skip_listen",
        "E2",
        "accept on a named socket (skipped listen)",
        format!(
            "{SOCKET_IFACE}
void bad(sockaddr a) {{
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, a);
  tracked(N) sock conn = accept(s, a);
  close(conn);
  close(s);
}}"
        ),
        Expectation::reject(Code::WrongKeyState),
    ));
    v.push(p(
        "sock_recv_unready",
        "E2",
        "receive on a listening (not accepted) socket",
        format!(
            "{SOCKET_IFACE}
void bad(sockaddr a, byte[] buf) {{
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
  bind(s, a);
  listen(s, 5);
  receive(s, buf);
  close(s);
}}"
        ),
        Expectation::reject(Code::WrongKeyState),
    ));
    v.push(p(
        "sock_leak",
        "E2",
        "socket never closed",
        format!(
            "{SOCKET_IFACE}
void bad(sockaddr a) {{
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
}}"
        ),
        Expectation::reject(Code::KeyLeak),
    ));
    v.push(p(
        "sock_bind2_unchecked",
        "E2",
        "§2.3: ignoring bind's failure status loses the key",
        format!(
            "{SOCKET_IFACE}{SOCKET_STATUS_IFACE}
void forgot(sockaddr a) {{
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
  bind2(s, a);
  listen(s, 0);
  close(s);
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "sock_bind2_checked",
        "E2",
        "§2.3: switching on the status restores the key per constructor",
        format!(
            "{SOCKET_IFACE}{SOCKET_STATUS_IFACE}
void checked(sockaddr a) {{
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
  switch (bind2(s, a)) {{
    case 'Ok:
      listen(s, 0);
      close(s);
    case 'Error(code):
      close(s);
  }}
}}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "sock_bind2_retry",
        "E2",
        "§2.3: in the 'Error case the socket is back in `raw` and may be re-bound",
        format!(
            "{SOCKET_IFACE}{SOCKET_STATUS_IFACE}
void retry(sockaddr a, sockaddr b) {{
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
  switch (bind2(s, a)) {{
    case 'Ok:
      listen(s, 0);
      close(s);
    case 'Error(code):
      bind(s, b);
      listen(s, 0);
      close(s);
  }}
}}"
        ),
        Expectation::Accept,
    ));

    // --- E3: §2.1 keyed variants -----------------------------------------
    v.push(p(
        "optkey_early_close",
        "E3",
        "§2.1: opt_key records whether F was consumed; switch recovers it",
        format!(
            "{FILE_IFACE}
void foo(tracked(F) FILE f, bool close_early) [-F] {{
  tracked opt_key<F> flag;
  if (close_early) {{
    fclose(f);
    flag = 'NoKey;
  }} else {{
    flag = 'SomeKey{{F}};
  }}
  switch (flag) {{
    case 'NoKey:
      return;
    case 'SomeKey:
      fclose(f);
  }}
}}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "optkey_forgot_switch",
        "E3",
        "§2.1: forgetting to test the flag leaves an extra key at exit",
        format!(
            "{FILE_IFACE}
void foo(tracked(F) FILE f, bool close_early) [-F] {{
  tracked opt_key<F> flag;
  if (close_early) {{
    fclose(f);
    flag = 'NoKey;
  }} else {{
    flag = 'SomeKey{{F}};
  }}
}}"
        ),
        Expectation::reject(Code::KeyLeak),
    ));
    v.push(p(
        "optkey_double_extract",
        "E3",
        "keys cannot be extracted twice from a flag",
        format!(
            "{FILE_IFACE}
void foo(tracked(F) FILE f) [-F] {{
  tracked opt_key<F> flag = 'SomeKey{{F}};
  switch (flag) {{
    case 'NoKey:
      return;
    case 'SomeKey:
      fclose(f);
      fclose(f);
  }}
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "optkey_nonexhaustive",
        "E3",
        "a keyed variant switch must cover every constructor",
        format!(
            "{FILE_IFACE}
void foo(tracked(F) FILE f) [-F] {{
  tracked opt_key<F> flag = 'SomeKey{{F}};
  switch (flag) {{
    case 'NoKey:
      return;
  }}
}}"
        ),
        Expectation::reject(Code::NonExhaustiveSwitch),
    ));

    // --- E4: Fig. 4 collections -------------------------------------------
    let list_iface = format!(
        "{REGION_IFACE}
variant reglist [ 'Nil | 'Cons(tracked region, tracked reglist) ];"
    );
    v.push(p(
        "fig4_anonymized",
        "E4",
        "Fig. 4: a region stored in a list comes back with a fresh key",
        format!(
            "{list_iface}
void main() {{
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {{x=4; y=2;}};
  tracked reglist list = 'Cons(rgn, 'Nil);
  switch (list) {{
    case 'Nil:
      return;
    case 'Cons(rgn2, rest):
      pt.x++;
      Region.delete(rgn2);
      free(rest);
  }}
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "fig4_fix_pairs",
        "E4",
        "Fig. 4 fix: pairs keep the region/point correlation through the pack",
        format!(
            "{list_iface}
variant regpt [ 'RegPt(tracked(P) region, P:point) ];
void main() {{
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {{x=4; y=2;}};
  tracked regpt pair = 'RegPt(rgn, pt);
  switch (pair) {{
    case 'RegPt(rgn2, pt2):
      pt2.x++;
      Region.delete(rgn2);
  }}
}}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "fig4_roundtrip_consume",
        "E4",
        "storing and fully consuming a list of regions is fine",
        format!(
            "{list_iface}
void main() {{
  tracked(R) region rgn = Region.create();
  tracked reglist list = 'Cons(rgn, 'Nil);
  switch (list) {{
    case 'Nil:
      return;
    case 'Cons(rgn2, rest):
      Region.delete(rgn2);
      free(rest);
  }}
}}"
        ),
        Expectation::Accept,
    ));

    // --- E5: Fig. 5 join points --------------------------------------------
    v.push(p(
        "fig5_join_reject",
        "E5",
        "Fig. 5: data-correlated deletion is rejected at the join point",
        format!(
            "{REGION_IFACE}
void main() {{
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {{x=4; y=2;}};
  if (pt.x > 0) {{
    pt.y = 0;
    Region.delete(rgn);
  }} else {{
    pt.y = pt.x;
  }}
  if (pt.x <= 0)
    Region.delete(rgn);
}}"
        ),
        Expectation::reject(Code::JoinMismatch),
    ));
    v.push(p(
        "fig5_variant_fix",
        "E5",
        "Fig. 5 fix: the correlation made explicit with a keyed variant",
        format!(
            "{REGION_IFACE}
variant opt_key<key K> [ 'NoKey | 'SomeKey {{K}} ];
void main() {{
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {{x=4; y=2;}};
  tracked opt_key<R> flag;
  if (pt.x > 0) {{
    pt.y = 0;
    Region.delete(rgn);
    flag = 'NoKey;
  }} else {{
    flag = 'SomeKey{{R}};
  }}
  switch (flag) {{
    case 'NoKey:
      return;
    case 'SomeKey:
      Region.delete(rgn);
  }}
}}"
        ),
        Expectation::Accept,
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_programs_cover_e1_to_e5() {
        let ids: Vec<&str> = programs().iter().map(|p| p.experiment).collect();
        for e in ["E1", "E2", "E3", "E4", "E5"] {
            assert!(ids.contains(&e), "missing {e}");
        }
    }

    #[test]
    fn every_figure_program_has_source() {
        for p in programs() {
            assert!(p.loc() > 3, "{} suspiciously small", p.id);
        }
    }
}
