//! X6: execution-heavy kernels for the runtime benchmarks.
//!
//! The rest of the corpus exists to exercise the *checker*; these
//! programs exist to exercise the *engines*. Each is a statically
//! accepted, zero-argument kernel that burns a six-figure fuel count in
//! a steady-state loop, so `BENCH_exec.json` measures throughput rather
//! than startup, and the differential suite covers hot loops:
//!
//! * `exec_loop_sum` — tight arithmetic loop (register pressure, `Bin`
//!   dispatch).
//! * `exec_branch_mix` — branch-heavy collatz-style stepping (jumps,
//!   short-circuit logic, increments).
//! * `exec_region_churn` — region create/alloc/access/delete per
//!   iteration (the generation-checked oracle on the hot path).

use crate::figures::REGION_IFACE;
use crate::{CorpusProgram, Expectation};

/// All execution-kernel programs.
pub fn programs() -> Vec<CorpusProgram> {
    vec![
        CorpusProgram {
            id: "exec_loop_sum",
            experiment: "X6",
            description: "steady-state arithmetic loop kernel (throughput baseline)",
            source: "
int main() {
  int acc = 0;
  int i = 0;
  while (i < 10000) {
    acc = acc + i * 3 - i / 2;
    acc = acc % 1000003;
    i++;
  }
  return acc;
}"
            .to_string(),
            expect: Expectation::Accept,
        },
        CorpusProgram {
            id: "exec_branch_mix",
            experiment: "X6",
            description: "branch-heavy collatz-style kernel (jumps and short-circuit logic)",
            source: "
int main() {
  int x = 7;
  int odd_steps = 0;
  int rounds = 0;
  while (rounds < 4000) {
    if (x % 2 == 0) {
      x = x / 2;
    } else {
      x = 3 * x + 1;
      odd_steps++;
    }
    if (x == 1 || x < 0) x = rounds + 7;
    rounds++;
  }
  return x + odd_steps;
}"
            .to_string(),
            expect: Expectation::Accept,
        },
        CorpusProgram {
            id: "exec_region_churn",
            experiment: "X6",
            description: "region create/alloc/access/delete per iteration (oracle on the hot path)",
            source: format!(
                "{REGION_IFACE}
int main() {{
  int acc = 0;
  int i = 0;
  while (i < 1500) {{
    tracked(R) region rgn = Region.create();
    R:point pt = new(rgn) point {{x=i; y=i+i;}};
    pt.x++;
    acc = acc + pt.x + pt.y;
    acc = acc % 1000003;
    Region.delete(rgn);
    i++;
  }}
  return acc;
}}"
            ),
            expect: Expectation::Accept,
        },
    ]
}
