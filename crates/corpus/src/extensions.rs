//! Extension programs beyond the paper's figures, reproducing its
//! forward-looking remarks:
//!
//! * **X1** — §6: "we are writing a front-end for Vault in Vault. This
//!   system is a multi-stage pipeline where each stage's results are
//!   stored in its own region."
//! * **X2** — footnote 7: "In practice, `new` returns a variant
//!   indicating success or failure."
//! * **X3** — §4: drivers sit in stacks ("a file system driver; a driver
//!   for a generic storage device; a floppy disk driver; and a bus
//!   driver") — a pass-through filter driver over the same interface.
//! * **X4** — §4.2: "This approach however is inadequate to model
//!   reentrant locks" — the documented limitation, demonstrated.
//! * **X5** — §6: "we need to continue validating these features in other
//!   domains, like graphic interfaces" — a GDI-style device-context and
//!   pen-selection protocol.

use crate::figures::REGION_IFACE;
use crate::kernel::KERNEL_IFACE;
use crate::{CorpusProgram, Expectation};
use vault_syntax::Code;

fn p(
    id: &'static str,
    experiment: &'static str,
    description: &'static str,
    source: String,
    expect: Expectation,
) -> CorpusProgram {
    CorpusProgram {
        id,
        experiment,
        description,
        source,
        expect,
    }
}

/// All extension programs.
pub fn programs() -> Vec<CorpusProgram> {
    let mut v = Vec::new();

    // --- X1: the compiler pipeline with per-stage regions (§6) -----------
    let pipeline_iface = format!(
        "{REGION_IFACE}
type token_stream;
type ast;
type typed_ast;
type c_code;
R:token_stream lex(tracked(R) region stage, string src) [R];
A:ast parse(tracked(A) region stage, T:token_stream toks) [A, T];
B:typed_ast typecheck(tracked(B) region stage, A:ast tree) [B, A];
C:c_code emit(tracked(C) region stage, B:typed_ast tree) [C, B];
void write_output(C:c_code code) [C];"
    );
    v.push(p(
        "pipeline_staged_regions",
        "X1",
        "§6: a multi-stage compiler pipeline, one region per stage, freed as \
         soon as the next stage no longer needs it",
        format!(
            "{pipeline_iface}
void compile(string src) {{
  tracked(L) region lex_stage = Region.create();
  L:token_stream toks = lex(lex_stage, src);
  tracked(P) region parse_stage = Region.create();
  P:ast tree = parse(parse_stage, toks);
  Region.delete(lex_stage);
  tracked(T) region type_stage = Region.create();
  T:typed_ast typed = typecheck(type_stage, tree);
  Region.delete(parse_stage);
  tracked(E) region emit_stage = Region.create();
  E:c_code code = emit(emit_stage, typed);
  Region.delete(type_stage);
  write_output(code);
  Region.delete(emit_stage);
}}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "pipeline_stage_freed_too_early",
        "X1",
        "freeing the parse-stage region while the type checker still reads it",
        format!(
            "{pipeline_iface}
void compile(string src) {{
  tracked(L) region lex_stage = Region.create();
  L:token_stream toks = lex(lex_stage, src);
  tracked(P) region parse_stage = Region.create();
  P:ast tree = parse(parse_stage, toks);
  Region.delete(lex_stage);
  Region.delete(parse_stage);
  tracked(T) region type_stage = Region.create();
  T:typed_ast typed = typecheck(type_stage, tree);
  tracked(E) region emit_stage = Region.create();
  E:c_code code = emit(emit_stage, typed);
  Region.delete(type_stage);
  write_output(code);
  Region.delete(emit_stage);
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "pipeline_stage_leaked",
        "X1",
        "a pipeline stage region never freed",
        format!(
            "{pipeline_iface}
void compile(string src) {{
  tracked(L) region lex_stage = Region.create();
  L:token_stream toks = lex(lex_stage, src);
  tracked(P) region parse_stage = Region.create();
  P:ast tree = parse(parse_stage, toks);
  Region.delete(parse_stage);
}}"
        ),
        Expectation::reject(Code::KeyLeak),
    ));

    // --- X2: failure-aware allocation (footnote 7) --------------------------
    let allocfail_iface = format!(
        "{REGION_IFACE}
variant alloc_result<key R> [ 'Alloc(R:point) {{R}} | 'OutOfMemory {{R}} ];
tracked alloc_result<R> try_new_point(tracked(R) region rgn, int x, int y) [-R];"
    );
    v.push(p(
        "allocfail_checked",
        "X2",
        "footnote 7: `new` returning a success/failure variant forces the check",
        format!(
            "{allocfail_iface}
void robust() {{
  tracked(R) region rgn = Region.create();
  switch (try_new_point(rgn, 1, 2)) {{
    case 'Alloc(pt):
      pt.x++;
      Region.delete(rgn);
    case 'OutOfMemory:
      Region.delete(rgn);
  }}
}}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "allocfail_unchecked",
        "X2",
        "using the region after an unchecked fallible allocation",
        format!(
            "{allocfail_iface}
void careless() {{
  tracked(R) region rgn = Region.create();
  try_new_point(rgn, 1, 2);
  R:point pt = new(rgn) point {{x=1; y=2;}};
  Region.delete(rgn);
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));

    // --- X3: a pass-through filter driver (the §4 driver stack) -------------
    v.push(p(
        "filter_driver_passthrough",
        "X3",
        "a storage-class filter driver: forwards every request down the stack",
        format!(
            "{KERNEL_IFACE}
DSTATUS<I> FilterDispatch(DEVICE_OBJECT lower, tracked(I) IRP irp)
    [-I, IRQL@PASSIVE_LEVEL] {{
  IoCopyCurrentIrpStackLocationToNext(irp);
  return IoCallDriver(lower, irp);
}}
DSTATUS<I> FilterWithBookkeeping(DEVICE_OBJECT lower, tracked(I) IRP irp,
                                 KSPIN_LOCK<L> stats_lock, L:FILTER_STATS stats)
    [-I, IRQL@PASSIVE_LEVEL] {{
  KIRQL<old> prev = KeAcquireSpinLock(stats_lock);
  stats.forwarded++;
  KeReleaseSpinLock(stats_lock, prev);
  IoCopyCurrentIrpStackLocationToNext(irp);
  return IoCallDriver(lower, irp);
}}
struct FILTER_STATS {{ int forwarded; }}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "filter_driver_snoops_after_forward",
        "X3",
        "a filter that inspects the request after forwarding it",
        format!(
            "{KERNEL_IFACE}
DSTATUS<I> BadFilter(DEVICE_OBJECT lower, tracked(I) IRP irp)
    [-I, IRQL@PASSIVE_LEVEL] {{
  IoCopyCurrentIrpStackLocationToNext(irp);
  DSTATUS<I> st = IoCallDriver(lower, irp);
  IO_STACK_LOCATION sl = IoGetCurrentIrpStackLocation(irp);
  return st;
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));

    // --- X5: graphics contexts (§6: "other domains, like graphic
    // interfaces") ------------------------------------------------------------
    let gdi_iface = "
type HDC;
type HPEN;
type HWND;
stateset DC_STATE = [ clean < dirty ];
HPEN GetStockPen(int which);
tracked(D) HDC BeginPaint(HWND wnd) [new D@clean];
void EndPaint(HWND wnd, tracked(D) HDC dc) [-D@clean];
HPEN SelectPen(tracked(D) HDC dc, HPEN pen) [D@clean->dirty];
void RestorePen(tracked(D) HDC dc, HPEN old) [D@dirty->clean];
void MoveTo(tracked(D) HDC dc, int x, int y) [D];
void LineTo(tracked(D) HDC dc, int x, int y) [D@dirty];";
    v.push(p(
        "gdi_paint_ok",
        "X5",
        "GDI-style paint cycle: select, draw, restore, end",
        format!(
            "{gdi_iface}
void on_paint(HWND wnd) {{
  tracked(D) HDC dc = BeginPaint(wnd);
  HPEN old = SelectPen(dc, GetStockPen(1));
  MoveTo(dc, 0, 0);
  LineTo(dc, 100, 100);
  RestorePen(dc, old);
  EndPaint(wnd, dc);
}}"
        ),
        Expectation::Accept,
    ));
    v.push(p(
        "gdi_forgot_restore",
        "X5",
        "EndPaint with the stock pen still swapped out",
        format!(
            "{gdi_iface}
void on_paint(HWND wnd) {{
  tracked(D) HDC dc = BeginPaint(wnd);
  HPEN old = SelectPen(dc, GetStockPen(1));
  LineTo(dc, 100, 100);
  EndPaint(wnd, dc);
}}"
        ),
        Expectation::reject(Code::WrongKeyState),
    ));
    v.push(p(
        "gdi_draw_after_end",
        "X5",
        "drawing on a released device context",
        format!(
            "{gdi_iface}
void on_paint(HWND wnd) {{
  tracked(D) HDC dc = BeginPaint(wnd);
  EndPaint(wnd, dc);
  MoveTo(dc, 0, 0);
}}"
        ),
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "gdi_dc_leak",
        "X5",
        "a paint cycle that never calls EndPaint",
        format!(
            "{gdi_iface}
void on_paint(HWND wnd) {{
  tracked(D) HDC dc = BeginPaint(wnd);
  MoveTo(dc, 0, 0);
}}"
        ),
        Expectation::reject(Code::KeyLeak),
    ));

    // --- X4: the reentrant-lock limitation (§4.2) ----------------------------
    v.push(p(
        "reentrant_lock_limitation",
        "X4",
        "§4.2: re-acquiring a held lock is always rejected — by design, the \
         key model cannot express reentrant locks",
        format!(
            "{KERNEL_IFACE}
struct shared {{ int value; }}
void reentrant_attempt(KSPIN_LOCK<K> lock, K:shared data) [IRQL@PASSIVE_LEVEL] {{
  KIRQL<a> outer = KeAcquireSpinLock(lock);
  data.value++;
  // A reentrant lock would allow this; Vault's linear keys cannot.
  KIRQL<b> inner = KeAcquireSpinLock(lock);
  KeReleaseSpinLock(lock, inner);
  KeReleaseSpinLock(lock, outer);
}}"
        ),
        Expectation::reject(Code::DuplicateKey),
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_cover_x1_to_x4() {
        let ids: Vec<&str> = programs().iter().map(|p| p.experiment).collect();
        for e in ["X1", "X2", "X3", "X4", "X5"] {
            assert!(ids.contains(&e), "missing {e}");
        }
    }
}
