//! Synthetic Vault program generator for the checker-scaling benchmarks
//! (experiment E13) and for randomized detection-rate measurements.
//!
//! Generated programs exercise the region protocol (create / allocate /
//! access / delete), branching, loops, and cross-function calls. With
//! `bug_rate > 0` a deterministic fraction of functions receives one
//! seeded protocol violation (a leak or a dangling access).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The statement mix of generated functions — used by the ablation
/// benches to isolate what each checker feature costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Shape {
    /// The default mix of everything.
    #[default]
    Mixed,
    /// Straight-line arithmetic on guarded data (no joins, no loops).
    Straight,
    /// Branch-heavy (many join points exercising the key abstraction).
    Branchy,
    /// Loop-heavy (many loop-invariant inferences).
    Loopy,
    /// Keyed-variant-heavy (pack/unpack on every other statement).
    VariantHeavy,
}

/// Parameters for the generator.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of functions to generate.
    pub functions: usize,
    /// Approximate statements per function.
    pub stmts_per_fn: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Fraction of functions that receive exactly one seeded bug.
    pub bug_rate: f64,
    /// Statement mix.
    pub shape: Shape,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            functions: 10,
            stmts_per_fn: 20,
            seed: 0x5eed,
            bug_rate: 0.0,
            shape: Shape::Mixed,
        }
    }
}

/// The kind of bug seeded into a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededBug {
    /// The region is never deleted.
    Leak,
    /// The point is accessed after the region is deleted.
    Dangling,
}

/// A generated program plus its ground truth.
#[derive(Clone, Debug)]
pub struct SynthProgram {
    /// The Vault source.
    pub source: String,
    /// Which functions received which bug, by function index.
    pub seeded: Vec<(usize, SeededBug)>,
}

impl SynthProgram {
    /// Whether the program should be accepted by the checker.
    pub fn expect_accept(&self) -> bool {
        self.seeded.is_empty()
    }
}

const PRELUDE: &str = r#"
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
struct point { int x; int y; }
variant opt_key<key K> [ 'Empty | 'Held {K} ];
"#;

/// Generate a program according to the configuration.
pub fn generate(cfg: &SynthConfig) -> SynthProgram {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut src = String::from(PRELUDE);
    let mut seeded = Vec::new();
    for i in 0..cfg.functions {
        let bug = if rng.gen_bool(cfg.bug_rate.clamp(0.0, 1.0)) {
            let b = if rng.gen_bool(0.5) {
                SeededBug::Leak
            } else {
                SeededBug::Dangling
            };
            seeded.push((i, b));
            Some(b)
        } else {
            None
        };
        gen_function(&mut src, i, cfg, &mut rng, bug);
    }
    SynthProgram {
        source: src,
        seeded,
    }
}

fn gen_function(
    src: &mut String,
    index: usize,
    cfg: &SynthConfig,
    rng: &mut StdRng,
    bug: Option<SeededBug>,
) {
    if cfg.shape == Shape::VariantHeavy {
        gen_variant_heavy_function(src, index, cfg);
        return;
    }
    let _ = writeln!(src, "void synth_fn_{index}(bool flag, int n) {{");
    // One tracked region + guarded point per function; statements operate
    // on them so guard checks are exercised throughout.
    let _ = writeln!(src, "  tracked(R{index}) region rgn = Region.create();");
    let _ = writeln!(
        src,
        "  R{index}:point pt = new(rgn) point {{x={index}; y=0;}};"
    );
    let mut emitted = 2usize;
    // Where the dangling access goes, if any: delete early, touch after.
    let dangle = bug == Some(SeededBug::Dangling);
    if dangle {
        let _ = writeln!(src, "  Region.delete(rgn);");
        let _ = writeln!(src, "  pt.x++;");
        emitted += 2;
    }
    while emitted < cfg.stmts_per_fn {
        let choice: u8 = match cfg.shape {
            Shape::Mixed => rng.gen_range(0..6u8),
            Shape::Straight => rng.gen_range(0..2u8),
            Shape::Branchy => 2,
            Shape::Loopy => 3,
            Shape::VariantHeavy => unreachable!("handled separately"),
        };
        match choice {
            0 => {
                let _ = writeln!(src, "  pt.x = pt.x + {};", rng.gen_range(1..5));
            }
            1 => {
                let _ = writeln!(src, "  pt.y = pt.x * 2;");
            }
            2 => {
                let _ = writeln!(src, "  if (flag) {{ pt.x++; }} else {{ pt.y = pt.y - 1; }}");
            }
            3 => {
                let _ = writeln!(src, "  while (n > 0) {{ pt.x = pt.x + 1; n = n - 1; }}");
            }
            4 if index > 0 => {
                let callee = rng.gen_range(0..index);
                let _ = writeln!(src, "  synth_fn_{callee}(flag, n);");
            }
            _ => {
                // A nested, balanced region lifetime.
                let k = emitted;
                let _ = writeln!(
                    src,
                    "  tracked(T{index}_{k}) region tmp{k} = Region.create();"
                );
                let _ = writeln!(
                    src,
                    "  T{index}_{k}:point tp{k} = new(tmp{k}) point {{x=1; y=1;}};"
                );
                let _ = writeln!(src, "  tp{k}.x++;");
                let _ = writeln!(src, "  Region.delete(tmp{k});");
                emitted += 3;
            }
        }
        emitted += 1;
    }
    match bug {
        Some(SeededBug::Leak) => {
            let _ = writeln!(src, "  // seeded bug: region leaked");
        }
        Some(SeededBug::Dangling) | None if dangle => {}
        _ => {
            let _ = writeln!(src, "  Region.delete(rgn);");
        }
    }
    let _ = writeln!(src, "}}");
}

/// A function whose body is keyed-variant packs and unpacks (§2.1 style),
/// one block per ~4 statements. Bug seeding is not applied to this shape
/// (it exists for the ablation benches only).
fn gen_variant_heavy_function(src: &mut String, index: usize, cfg: &SynthConfig) {
    let _ = writeln!(src, "void synth_fn_{index}(bool flag, int n) {{");
    let blocks = (cfg.stmts_per_fn / 4).max(1);
    for k in 0..blocks {
        let _ = writeln!(
            src,
            "  tracked(V{index}_{k}) region vr{k} = Region.create();"
        );
        let _ = writeln!(
            src,
            "  tracked opt_key<V{index}_{k}> fl{k} = 'Held{{V{index}_{k}}};"
        );
        let _ = writeln!(src, "  switch (fl{k}) {{");
        let _ = writeln!(src, "    case 'Empty:");
        let _ = writeln!(src, "      return;");
        let _ = writeln!(src, "    case 'Held:");
        let _ = writeln!(src, "      Region.delete(vr{k});");
        let _ = writeln!(src, "  }}");
    }
    let _ = writeln!(src, "}}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig {
            functions: 5,
            stmts_per_fn: 12,
            seed: 42,
            bug_rate: 0.5,
            shape: Shape::Mixed,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.source, b.source);
        assert_eq!(a.seeded, b.seeded);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SynthConfig::default();
        let a = generate(&cfg);
        cfg.seed += 1;
        let b = generate(&cfg);
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn size_scales_with_config() {
        let small = generate(&SynthConfig {
            functions: 2,
            stmts_per_fn: 5,
            seed: 1,
            bug_rate: 0.0,
            shape: Shape::Mixed,
        });
        let large = generate(&SynthConfig {
            functions: 40,
            stmts_per_fn: 30,
            seed: 1,
            bug_rate: 0.0,
            shape: Shape::Mixed,
        });
        assert!(crate::count_loc(&large.source) > 5 * crate::count_loc(&small.source));
    }

    #[test]
    fn bug_rate_one_seeds_every_function() {
        let p = generate(&SynthConfig {
            functions: 8,
            stmts_per_fn: 8,
            seed: 3,
            bug_rate: 1.0,
            shape: Shape::Mixed,
        });
        assert_eq!(p.seeded.len(), 8);
        assert!(!p.expect_accept());
    }
}
