//! Synthetic Vault program generator for the checker-scaling benchmarks
//! (experiment E13) and for randomized detection-rate measurements.
//!
//! Generated programs exercise the region protocol (create / allocate /
//! access / delete), branching, loops, and cross-function calls. With
//! `bug_rate > 0` a deterministic fraction of functions receives one
//! seeded protocol violation (a leak or a dangling access).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The statement mix of generated functions — used by the ablation
/// benches to isolate what each checker feature costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Shape {
    /// The default mix of everything.
    #[default]
    Mixed,
    /// Straight-line arithmetic on guarded data (no joins, no loops).
    Straight,
    /// Branch-heavy (many join points exercising the key abstraction).
    Branchy,
    /// Loop-heavy (many loop-invariant inferences).
    Loopy,
    /// Keyed-variant-heavy (pack/unpack on every other statement).
    VariantHeavy,
    /// Socket-protocol-shaped: every function drives a channel through
    /// the open → ready → transfer → close lifecycle under declared
    /// `uses` capabilities (the concurrent-server workload of E15/E16).
    Sockets,
}

/// Parameters for the generator.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Number of functions to generate.
    pub functions: usize,
    /// Approximate statements per function.
    pub stmts_per_fn: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Fraction of functions that receive exactly one seeded bug.
    pub bug_rate: f64,
    /// Statement mix.
    pub shape: Shape,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            functions: 10,
            stmts_per_fn: 20,
            seed: 0x5eed,
            bug_rate: 0.0,
            shape: Shape::Mixed,
        }
    }
}

/// The kind of bug seeded into a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededBug {
    /// The region (or channel) is never deleted/closed.
    Leak,
    /// The resource is accessed after the region is deleted (or the
    /// channel closed).
    Dangling,
    /// The function drops a `uses` capability its body still needs
    /// (Sockets shape only — other shapes declare no capabilities).
    CapMissing,
}

impl SeededBug {
    /// The diagnostic code the checker must report for this bug.
    pub fn expected_code(self) -> vault_syntax::Code {
        match self {
            SeededBug::Leak => vault_syntax::Code::KeyLeak,
            SeededBug::Dangling => vault_syntax::Code::KeyNotHeld,
            SeededBug::CapMissing => vault_syntax::Code::CapMissing,
        }
    }
}

/// A generated program plus its ground truth.
#[derive(Clone, Debug)]
pub struct SynthProgram {
    /// The Vault source.
    pub source: String,
    /// Which functions received which bug, by function index.
    pub seeded: Vec<(usize, SeededBug)>,
}

impl SynthProgram {
    /// Whether the program should be accepted by the checker.
    pub fn expect_accept(&self) -> bool {
        self.seeded.is_empty()
    }
}

const PRELUDE: &str = r#"
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
struct point { int x; int y; }
variant opt_key<key K> [ 'Empty | 'Held {K} ];
"#;

/// The interface the `Sockets` shape (and every generated project unit)
/// programs against: a two-state channel protocol whose operations all
/// carry `uses` capability requirements.
pub const SOCKET_PRELUDE: &str = r#"
// ----- Generated socket/channel interface -------------------------------
stateset CHAN_STATE = [ idle < open ];
type chan;
tracked(H) chan chan_open() [new H@idle, uses net];
void chan_ready(tracked(H) chan h) [H@idle->open, uses net];
void chan_xfer(tracked(H) chan h, int n) [H@open, uses net, uses io];
void chan_close(tracked(H) chan h) [-H, uses net];
"#;

/// Generate a program according to the configuration.
pub fn generate(cfg: &SynthConfig) -> SynthProgram {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut src = String::from(PRELUDE);
    if cfg.shape == Shape::Sockets {
        src.push_str(SOCKET_PRELUDE);
    }
    let mut seeded = Vec::new();
    for i in 0..cfg.functions {
        let bug = if rng.gen_bool(cfg.bug_rate.clamp(0.0, 1.0)) {
            // Capability bugs only exist where capabilities are
            // declared, i.e. in the Sockets shape.
            let b = if cfg.shape == Shape::Sockets {
                match rng.gen_range(0..3u8) {
                    0 => SeededBug::Leak,
                    1 => SeededBug::Dangling,
                    _ => SeededBug::CapMissing,
                }
            } else if rng.gen_bool(0.5) {
                SeededBug::Leak
            } else {
                SeededBug::Dangling
            };
            seeded.push((i, b));
            Some(b)
        } else {
            None
        };
        gen_function(&mut src, i, cfg, &mut rng, bug);
    }
    SynthProgram {
        source: src,
        seeded,
    }
}

fn gen_function(
    src: &mut String,
    index: usize,
    cfg: &SynthConfig,
    rng: &mut StdRng,
    bug: Option<SeededBug>,
) {
    if cfg.shape == Shape::VariantHeavy {
        gen_variant_heavy_function(src, index, cfg);
        return;
    }
    if cfg.shape == Shape::Sockets {
        let callees: Vec<String> = (0..index).map(|k| format!("synth_fn_{k}")).collect();
        gen_socket_function(
            src,
            &format!("synth_fn_{index}"),
            &callees,
            cfg.stmts_per_fn,
            rng,
            bug,
        );
        return;
    }
    let _ = writeln!(src, "void synth_fn_{index}(bool flag, int n) {{");
    // One tracked region + guarded point per function; statements operate
    // on them so guard checks are exercised throughout.
    let _ = writeln!(src, "  tracked(R{index}) region rgn = Region.create();");
    let _ = writeln!(
        src,
        "  R{index}:point pt = new(rgn) point {{x={index}; y=0;}};"
    );
    let mut emitted = 2usize;
    // Where the dangling access goes, if any: delete early, touch after.
    let dangle = bug == Some(SeededBug::Dangling);
    if dangle {
        let _ = writeln!(src, "  Region.delete(rgn);");
        let _ = writeln!(src, "  pt.x++;");
        emitted += 2;
    }
    while emitted < cfg.stmts_per_fn {
        let choice: u8 = match cfg.shape {
            Shape::Mixed => rng.gen_range(0..6u8),
            Shape::Straight => rng.gen_range(0..2u8),
            Shape::Branchy => 2,
            Shape::Loopy => 3,
            Shape::VariantHeavy | Shape::Sockets => unreachable!("handled separately"),
        };
        match choice {
            0 => {
                let _ = writeln!(src, "  pt.x = pt.x + {};", rng.gen_range(1..5));
            }
            1 => {
                let _ = writeln!(src, "  pt.y = pt.x * 2;");
            }
            2 => {
                let _ = writeln!(src, "  if (flag) {{ pt.x++; }} else {{ pt.y = pt.y - 1; }}");
            }
            3 => {
                let _ = writeln!(src, "  while (n > 0) {{ pt.x = pt.x + 1; n = n - 1; }}");
            }
            4 if index > 0 => {
                let callee = rng.gen_range(0..index);
                let _ = writeln!(src, "  synth_fn_{callee}(flag, n);");
            }
            _ => {
                // A nested, balanced region lifetime.
                let k = emitted;
                let _ = writeln!(
                    src,
                    "  tracked(T{index}_{k}) region tmp{k} = Region.create();"
                );
                let _ = writeln!(
                    src,
                    "  T{index}_{k}:point tp{k} = new(tmp{k}) point {{x=1; y=1;}};"
                );
                let _ = writeln!(src, "  tp{k}.x++;");
                let _ = writeln!(src, "  Region.delete(tmp{k});");
                emitted += 3;
            }
        }
        emitted += 1;
    }
    match bug {
        Some(SeededBug::Leak) => {
            let _ = writeln!(src, "  // seeded bug: region leaked");
        }
        Some(SeededBug::Dangling) | None if dangle => {}
        _ => {
            let _ = writeln!(src, "  Region.delete(rgn);");
        }
    }
    let _ = writeln!(src, "}}");
}

/// A function whose body is keyed-variant packs and unpacks (§2.1 style),
/// one block per ~4 statements. Bug seeding is not applied to this shape
/// (it exists for the ablation benches only).
fn gen_variant_heavy_function(src: &mut String, index: usize, cfg: &SynthConfig) {
    let _ = writeln!(src, "void synth_fn_{index}(bool flag, int n) {{");
    let blocks = (cfg.stmts_per_fn / 4).max(1);
    for k in 0..blocks {
        let _ = writeln!(
            src,
            "  tracked(V{index}_{k}) region vr{k} = Region.create();"
        );
        let _ = writeln!(
            src,
            "  tracked opt_key<V{index}_{k}> fl{k} = 'Held{{V{index}_{k}}};"
        );
        let _ = writeln!(src, "  switch (fl{k}) {{");
        let _ = writeln!(src, "    case 'Empty:");
        let _ = writeln!(src, "      return;");
        let _ = writeln!(src, "    case 'Held:");
        let _ = writeln!(src, "      Region.delete(vr{k});");
        let _ = writeln!(src, "  }}");
    }
    let _ = writeln!(src, "}}");
}

/// A function driving the [`SOCKET_PRELUDE`] channel protocol under
/// declared capabilities: open → ready → a run of transfers → close.
/// `callees` are earlier functions eligible for cross-function calls.
fn gen_socket_function(
    src: &mut String,
    name: &str,
    callees: &[String],
    stmts: usize,
    rng: &mut StdRng,
    bug: Option<SeededBug>,
) {
    let caps = if bug == Some(SeededBug::CapMissing) {
        // seeded bug: `uses net` dropped while the body still opens,
        // drives, and closes the channel.
        "[uses io]"
    } else {
        "[uses net, uses io]"
    };
    let _ = writeln!(src, "void {name}(bool flag, int n) {caps} {{");
    let _ = writeln!(src, "  tracked(H_{name}) chan ch = chan_open();");
    let _ = writeln!(src, "  chan_ready(ch);");
    let mut emitted = 2usize;
    // Where the dangling transfer goes, if any: close early, touch after.
    if bug == Some(SeededBug::Dangling) {
        let _ = writeln!(src, "  chan_close(ch);");
        let _ = writeln!(src, "  chan_xfer(ch, 1);");
        emitted += 2;
    }
    while emitted < stmts {
        match rng.gen_range(0..5u8) {
            0 => {
                let _ = writeln!(src, "  chan_xfer(ch, {});", rng.gen_range(1..9));
            }
            1 => {
                let _ = writeln!(
                    src,
                    "  if (flag) {{ chan_xfer(ch, 1); }} else {{ chan_xfer(ch, 2); }}"
                );
            }
            2 => {
                let _ = writeln!(src, "  while (n > 0) {{ chan_xfer(ch, n); n = n - 1; }}");
            }
            3 if !callees.is_empty() => {
                let callee = &callees[rng.gen_range(0..callees.len())];
                let _ = writeln!(src, "  {callee}(flag, n);");
            }
            _ => {
                // A nested, balanced channel lifetime.
                let k = emitted;
                let _ = writeln!(src, "  tracked(H_{name}_{k}) chan tmp{k} = chan_open();");
                let _ = writeln!(src, "  chan_ready(tmp{k});");
                let _ = writeln!(src, "  chan_xfer(tmp{k}, {k});");
                let _ = writeln!(src, "  chan_close(tmp{k});");
                emitted += 3;
            }
        }
        emitted += 1;
    }
    match bug {
        Some(SeededBug::Leak) => {
            let _ = writeln!(src, "  // seeded bug: channel leaked");
        }
        // The dangling variant already consumed the key up front.
        Some(SeededBug::Dangling) => {}
        _ => {
            let _ = writeln!(src, "  chan_close(ch);");
        }
    }
    let _ = writeln!(src, "}}");
}

/// Parameters for the multi-unit project generator.
#[derive(Clone, Copy, Debug)]
pub struct ProjectConfig {
    /// Number of worker units (the interface unit comes on top).
    pub units: usize,
    /// Functions per worker unit.
    pub fns_per_unit: usize,
    /// Approximate statements per function.
    pub stmts_per_fn: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Fraction of worker units that receive exactly one seeded bug.
    pub bug_rate: f64,
}

impl Default for ProjectConfig {
    fn default() -> Self {
        ProjectConfig {
            units: 20,
            fns_per_unit: 4,
            stmts_per_fn: 12,
            seed: 0x50c7,
            bug_rate: 0.0,
        }
    }
}

/// A generated multi-unit project plus its ground truth.
#[derive(Clone, Debug)]
pub struct SynthProject {
    /// `(unit name, source)` in manifest order; unit 0 is always the
    /// `net_iface` interface unit every worker imports.
    pub units: Vec<(String, String)>,
    /// `vault.toml` text referencing `<name>.vlt` for each unit.
    pub manifest: String,
    /// Which units received which bug, by index into [`Self::units`].
    pub seeded: Vec<(usize, SeededBug)>,
}

impl SynthProject {
    /// Whether a project-mode check should accept every unit.
    pub fn expect_accept(&self) -> bool {
        self.seeded.is_empty()
    }

    /// Write the manifest and every unit source under `dir`
    /// (`dir/vault.toml`, `dir/<name>.vlt`), creating the directory.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("vault.toml"), &self.manifest)?;
        for (name, source) in &self.units {
            std::fs::write(dir.join(format!("{name}.vlt")), source)?;
        }
        Ok(())
    }
}

/// Generate a scaling project: one shared socket-interface unit plus
/// `cfg.units` worker units that import it, each a bundle of
/// [`Shape::Sockets`]-style functions. With `bug_rate > 0` a
/// deterministic fraction of worker units receives exactly one seeded
/// protocol or capability bug; `seeded` records the ground truth.
pub fn generate_project(cfg: &ProjectConfig) -> SynthProject {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x50c4e7);
    let iface = format!("// Shared interface unit (generated)\n{SOCKET_PRELUDE}");
    let mut units = vec![("net_iface".to_string(), iface)];
    let mut manifest = String::from(
        "# generated by `vaultc synth` — do not edit\n[[unit]]\npath = \"net_iface.vlt\"\n",
    );
    let mut seeded = Vec::new();
    for u in 1..=cfg.units {
        let name = format!("unit_{u:04}");
        let mut src = String::from("import \"net_iface\";\n");
        let bug = if rng.gen_bool(cfg.bug_rate.clamp(0.0, 1.0)) {
            Some(match rng.gen_range(0..3u8) {
                0 => SeededBug::Leak,
                1 => SeededBug::Dangling,
                _ => SeededBug::CapMissing,
            })
        } else {
            None
        };
        // Drawn unconditionally so the RNG stream (and thus every clean
        // unit) is identical whichever units are seeded.
        let bug_fn = rng.gen_range(0..cfg.fns_per_unit.max(1));
        let mut callees: Vec<String> = Vec::new();
        for i in 0..cfg.fns_per_unit {
            let fn_name = format!("u{u}_fn_{i}");
            let this_bug = if i == bug_fn { bug } else { None };
            gen_socket_function(
                &mut src,
                &fn_name,
                &callees,
                cfg.stmts_per_fn,
                &mut rng,
                this_bug,
            );
            callees.push(fn_name);
        }
        if let Some(b) = bug {
            seeded.push((units.len(), b));
        }
        let _ = writeln!(manifest, "[[unit]]\npath = \"{name}.vlt\"");
        units.push((name, src));
    }
    SynthProject {
        units,
        manifest,
        seeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig {
            functions: 5,
            stmts_per_fn: 12,
            seed: 42,
            bug_rate: 0.5,
            shape: Shape::Mixed,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.source, b.source);
        assert_eq!(a.seeded, b.seeded);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SynthConfig::default();
        let a = generate(&cfg);
        cfg.seed += 1;
        let b = generate(&cfg);
        assert_ne!(a.source, b.source);
    }

    #[test]
    fn size_scales_with_config() {
        let small = generate(&SynthConfig {
            functions: 2,
            stmts_per_fn: 5,
            seed: 1,
            bug_rate: 0.0,
            shape: Shape::Mixed,
        });
        let large = generate(&SynthConfig {
            functions: 40,
            stmts_per_fn: 30,
            seed: 1,
            bug_rate: 0.0,
            shape: Shape::Mixed,
        });
        assert!(crate::count_loc(&large.source) > 5 * crate::count_loc(&small.source));
    }

    #[test]
    fn project_generation_is_deterministic() {
        let cfg = ProjectConfig {
            units: 12,
            fns_per_unit: 3,
            stmts_per_fn: 10,
            seed: 9,
            bug_rate: 0.5,
        };
        let a = generate_project(&cfg);
        let b = generate_project(&cfg);
        assert_eq!(a.units, b.units);
        assert_eq!(a.manifest, b.manifest);
        assert_eq!(a.seeded, b.seeded);
    }

    #[test]
    fn project_has_one_manifest_row_per_unit() {
        let p = generate_project(&ProjectConfig {
            units: 30,
            ..ProjectConfig::default()
        });
        assert_eq!(p.units.len(), 31); // 30 workers + the interface unit
        assert_eq!(p.manifest.matches("[[unit]]").count(), 31);
        assert_eq!(p.units[0].0, "net_iface");
        for (name, src) in &p.units[1..] {
            assert!(src.starts_with("import \"net_iface\";"), "{name}");
        }
    }

    #[test]
    fn project_bug_rate_one_seeds_every_worker_unit() {
        let p = generate_project(&ProjectConfig {
            units: 8,
            bug_rate: 1.0,
            seed: 4,
            ..ProjectConfig::default()
        });
        assert_eq!(p.seeded.len(), 8);
        assert!(!p.expect_accept());
        // Every bug class appears somewhere across a handful of seeds.
        let mut classes: Vec<SeededBug> = Vec::new();
        for seed in 0..6 {
            let p = generate_project(&ProjectConfig {
                units: 8,
                bug_rate: 1.0,
                seed,
                ..ProjectConfig::default()
            });
            for (_, b) in p.seeded {
                if !classes.contains(&b) {
                    classes.push(b);
                }
            }
        }
        assert_eq!(classes.len(), 3, "bug classes seen: {classes:?}");
    }

    #[test]
    fn clean_and_seeded_project_units_differ_only_by_the_bug() {
        let clean = generate_project(&ProjectConfig {
            units: 6,
            bug_rate: 0.0,
            seed: 11,
            ..ProjectConfig::default()
        });
        let buggy = generate_project(&ProjectConfig {
            units: 6,
            bug_rate: 1.0,
            seed: 11,
            ..ProjectConfig::default()
        });
        // The RNG stream is stable: unseeded structure matches, so the
        // two projects have identical unit names in identical order.
        let names = |p: &SynthProject| p.units.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>();
        assert_eq!(names(&clean), names(&buggy));
    }

    #[test]
    fn bug_rate_one_seeds_every_function() {
        let p = generate(&SynthConfig {
            functions: 8,
            stmts_per_fn: 8,
            seed: 3,
            bug_rate: 1.0,
            shape: Shape::Mixed,
        });
        assert_eq!(p.seeded.len(), 8);
        assert!(!p.expect_accept());
    }
}
