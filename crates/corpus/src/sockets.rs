//! The concurrent socket-server case study (paper Fig. 3 grown into a
//! workload): a three-unit project — the capability-annotated socket
//! interface, a library of per-connection handlers that each consume the
//! connection key, and the accept-loop server — plus a family of seeded
//! mutants covering both the protocol codes (V301/V302/V304) and the
//! capability-effect codes (V701–V704).

use crate::{CorpusProgram, Expectation};
use vault_syntax::Code;

/// The socket interface unit: Fig. 3's protocol with `uses` capability
/// annotations on every operation. `bind` keeps the §2.3 failure-aware
/// keyed variant, so servers must handle `'BindError` before listening.
pub const SOCKET_IFACE: &str = r#"
// ----- Socket interface (Fig. 3, capability-annotated) ------------------
stateset SOCK_STATE = [ raw < named < listening < ready ];

type sock;
struct sockaddr { int addr; int port; }
variant domain [ 'UNIX | 'INET ];
variant comm_style [ 'STREAM | 'DGRAM ];

tracked(S) sock socket(domain d, comm_style c, int proto) [new S@raw, uses net];
void listen(tracked(S) sock s, int backlog) [S@named->listening, uses net];
tracked(N) sock accept(tracked(S) sock s, sockaddr peer) [S@listening, new N@ready, uses net];
void send(tracked(S) sock s, byte[] buf) [S@ready, uses net, uses io];
void receive(tracked(S) sock s, byte[] buf) [S@ready, uses net, uses io];
void close(tracked(S) sock s) [-S, uses net];

// §2.3: bind can fail; the keyed status variant forces callers to check.
variant bind_status<key K> [ 'Bound {K@named} | 'BindError(int){K@raw} ];
tracked bind_status<S> bind(tracked(S) sock s, sockaddr a) [-S@raw, uses net];

// Diagnostics channel (io only, no socket key involved).
void log_event(int code) [uses io];
"#;

/// Per-connection handlers: each takes the connection key `C` and
/// consumes it (`-C`), so a handler that forgets to close — or closes
/// twice — is a protocol error at its own signature.
pub const HANDLERS: &str = r#"
// ======================================================================
// Per-connection handlers: the connection key is transferred in (-C)
// ======================================================================

struct conn_stats { int reads; int writes; }

// Echo one message back, then shut the connection down.
void handle_echo(tracked(C) sock conn, byte[] buf) [-C@ready, uses net, uses io] {
  receive(conn, buf);
  send(conn, buf);
  log_event(1);
  close(conn);
}

// Drain `n` messages without replying.
void handle_drain(tracked(C) sock conn, byte[] buf, int n) [-C@ready, uses net, uses io] {
  while (n > 0) {
    receive(conn, buf);
    n = n - 1;
  }
  close(conn);
}

// Refuse the connection outright.
void handle_reject(tracked(C) sock conn) [-C@ready, uses net] {
  close(conn);
}
"#;

/// The accept-loop server unit: sets the listener up through the
/// failure-aware `bind`, then serves a bounded number of connections,
/// dispatching each to a handler that takes the connection key.
pub const SERVER: &str = r#"
// ======================================================================
// Accept-loop server
// ======================================================================

// Accept one connection and hand its key to a handler.
void serve_one(tracked(S) sock listener, sockaddr peer, byte[] buf, int kind)
    [S@listening, uses net, uses io] {
  tracked(C) sock conn = accept(listener, peer);
  if (kind == 0) {
    handle_echo(conn, buf);
  } else {
    handle_drain(conn, buf, 4);
  }
}

// The accept loop: the listener key stays at `listening` throughout.
void accept_loop(tracked(S) sock listener, sockaddr peer, byte[] buf, int budget)
    [S@listening, uses net, uses io] {
  while (budget > 0) {
    serve_one(listener, peer, buf, budget % 2);
    budget = budget - 1;
  }
}

// Bring a listener up (retrying on the fallback address) and serve.
void server_main(sockaddr addr, sockaddr fallback, sockaddr peer, byte[] buf, int budget)
    [uses net, uses io] {
  tracked(S) sock s = socket('UNIX, 'STREAM, 0);
  switch (bind(s, addr)) {
    case 'Bound:
      listen(s, 16);
      accept_loop(s, peer, buf, budget);
      close(s);
    case 'BindError(code):
      log_event(code);
      switch (bind(s, fallback)) {
        case 'Bound:
          listen(s, 16);
          accept_loop(s, peer, buf, budget);
          close(s);
        case 'BindError(code2):
          log_event(code2);
          close(s);
      }
  }
}
"#;

/// The full, correct server source (interface + handlers + server).
pub fn server_source() -> String {
    format!("{SOCKET_IFACE}\n{HANDLERS}\n{SERVER}")
}

/// The case study split into project-mode units. Unit order matches the
/// [`server_source`] concatenation, so a flattened check and a project
/// check see the same declarations in the same order.
pub fn project_units() -> Vec<(&'static str, String)> {
    vec![
        ("net", SOCKET_IFACE.to_string()),
        ("handlers", format!("import \"net\";\n{HANDLERS}")),
        (
            "server",
            format!("import \"net\";\nimport \"handlers\";\n{SERVER}"),
        ),
    ]
}

/// A seeded-bug mutant: one protocol or capability violation applied to
/// a single unit of the project.
struct Mutant {
    id: &'static str,
    description: &'static str,
    /// Which unit const the marker lives in: 0 = iface, 1 = handlers,
    /// 2 = server.
    unit: usize,
    /// Exact text in the unit source to replace (must be present).
    from: &'static str,
    /// Replacement introducing the bug.
    to: &'static str,
    /// Expected diagnostic.
    code: Code,
}

const UNIT_SOURCES: [&str; 3] = [SOCKET_IFACE, HANDLERS, SERVER];
const UNIT_NAMES: [&str; 3] = ["net", "handlers", "server"];

const MUTANTS: &[Mutant] = &[
    // ----- Protocol bugs (V3xx) -----------------------------------------
    Mutant {
        id: "sock_mut_double_close",
        description: "handle_reject closes the connection twice",
        unit: 1,
        from: "void handle_reject(tracked(C) sock conn) [-C@ready, uses net] {\n  close(conn);\n}",
        to: "void handle_reject(tracked(C) sock conn) [-C@ready, uses net] {\n  close(conn);\n  close(conn);\n}",
        code: Code::KeyNotHeld,
    },
    Mutant {
        id: "sock_mut_use_after_close",
        description: "handle_echo sends on the connection after closing it",
        unit: 1,
        from: "  send(conn, buf);\n  log_event(1);\n  close(conn);",
        to: "  log_event(1);\n  close(conn);\n  send(conn, buf);",
        code: Code::KeyNotHeld,
    },
    Mutant {
        id: "sock_mut_leaked_connection",
        description: "serve_one accepts a connection but never hands its key to a handler",
        unit: 2,
        from: "  if (kind == 0) {\n    handle_echo(conn, buf);\n  } else {\n    handle_drain(conn, buf, 4);\n  }",
        to: "  // BUG: dispatch elided; the connection key leaks\n  log_event(kind);",
        code: Code::KeyLeak,
    },
    Mutant {
        id: "sock_mut_accept_before_listen",
        description: "server_main enters the accept loop with the socket still `named`",
        unit: 2,
        from: "    case 'Bound:\n      listen(s, 16);\n      accept_loop(s, peer, buf, budget);\n      close(s);\n    case 'BindError(code):",
        to: "    case 'Bound:\n      accept_loop(s, peer, buf, budget);\n      close(s);\n    case 'BindError(code):",
        code: Code::WrongKeyState,
    },
    // ----- Capability bugs (V7xx) ----------------------------------------
    Mutant {
        id: "sock_mut_cap_missing",
        description: "handle_drain drops `uses net` but still drives the socket",
        unit: 1,
        from: "void handle_drain(tracked(C) sock conn, byte[] buf, int n) [-C@ready, uses net, uses io] {",
        to: "void handle_drain(tracked(C) sock conn, byte[] buf, int n) [-C@ready, uses io] {",
        code: Code::CapMissing,
    },
    Mutant {
        id: "sock_mut_cap_unknown",
        description: "the interface declares `socket` with a capability outside the universe",
        unit: 0,
        from: "tracked(S) sock socket(domain d, comm_style c, int proto) [new S@raw, uses net];",
        to: "tracked(S) sock socket(domain d, comm_style c, int proto) [new S@raw, uses radio];",
        code: Code::CapUnknown,
    },
    Mutant {
        id: "sock_mut_cap_duplicate",
        description: "server_main declares `uses net` twice",
        unit: 2,
        from: "    [uses net, uses io] {",
        to: "    [uses net, uses net, uses io] {",
        code: Code::CapDuplicate,
    },
];

/// The warning-only mutant: `handle_reject` declares `uses time` but
/// never exercises it. The verdict stays `Accepted` (V704 is a warning),
/// so this cannot be an [`Expectation::Reject`] corpus row — tests assert
/// the warning's presence directly.
pub fn unused_cap_source() -> String {
    let marker = "void handle_reject(tracked(C) sock conn) [-C@ready, uses net] {";
    let mutated = HANDLERS.replacen(
        marker,
        "void handle_reject(tracked(C) sock conn) [-C@ready, uses net, uses time] {",
        1,
    );
    assert_ne!(mutated, HANDLERS, "unused-cap marker drifted");
    format!("{SOCKET_IFACE}\n{mutated}\n{SERVER}")
}

/// Multi-unit mutants: each seeded bug applied to its unit of the
/// project split. Returns `(id, units, expected code)` rows; the other
/// two units are always pristine, so the expected diagnostic must
/// surface in the mutated unit's report (or, for the interface mutant,
/// in the interface unit itself).
pub fn project_mutants() -> Vec<(&'static str, Vec<(&'static str, String)>, Code)> {
    MUTANTS
        .iter()
        .map(|m| {
            let base = UNIT_SOURCES[m.unit];
            assert!(
                base.contains(m.from),
                "mutant {} marker drifted out of unit `{}`",
                m.id,
                UNIT_NAMES[m.unit]
            );
            let mutated = base.replacen(m.from, m.to, 1);
            let mut units = project_units();
            units[m.unit] = (
                UNIT_NAMES[m.unit],
                match m.unit {
                    0 => mutated,
                    1 => format!("import \"net\";\n{mutated}"),
                    _ => format!("import \"net\";\nimport \"handlers\";\n{mutated}"),
                },
            );
            (m.id, units, m.code)
        })
        .collect()
}

/// The unit index (into [`project_units`]) each mutant targets, keyed by
/// mutant id — the detection tests use this to assert the diagnostic
/// surfaces in the right unit.
pub fn mutant_unit(id: &str) -> Option<usize> {
    MUTANTS.iter().find(|m| m.id == id).map(|m| m.unit)
}

/// Server + mutants as corpus programs (experiments E14/E15).
pub fn programs() -> Vec<CorpusProgram> {
    let mut v = vec![CorpusProgram {
        id: "socket_server",
        experiment: "E14",
        description: "the accept-loop socket server, protocol- and capability-clean",
        source: server_source(),
        expect: Expectation::Accept,
    }];
    for m in MUTANTS {
        let base = UNIT_SOURCES[m.unit];
        assert!(
            base.contains(m.from),
            "mutant {} marker drifted out of unit `{}`",
            m.id,
            UNIT_NAMES[m.unit]
        );
        let mutated = base.replacen(m.from, m.to, 1);
        let source = match m.unit {
            0 => format!("{mutated}\n{HANDLERS}\n{SERVER}"),
            1 => format!("{SOCKET_IFACE}\n{mutated}\n{SERVER}"),
            _ => format!("{SOCKET_IFACE}\n{HANDLERS}\n{mutated}"),
        };
        v.push(CorpusProgram {
            id: m.id,
            experiment: "E15",
            description: m.description,
            source,
            expect: Expectation::reject(m.code),
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_source_is_substantial() {
        assert!(crate::count_loc(&server_source()) > 60);
    }

    #[test]
    fn all_mutant_markers_present() {
        // `programs` panics on drift; this makes it a named test.
        assert_eq!(programs().len(), 1 + MUTANTS.len());
    }

    #[test]
    fn mutants_cover_protocol_and_capability_codes() {
        let codes: Vec<Code> = MUTANTS.iter().map(|m| m.code).collect();
        for want in [
            Code::KeyNotHeld,
            Code::WrongKeyState,
            Code::KeyLeak,
            Code::CapMissing,
            Code::CapUnknown,
            Code::CapDuplicate,
        ] {
            assert!(codes.contains(&want), "no mutant for {want}");
        }
    }

    #[test]
    fn project_split_covers_the_whole_server() {
        let units = project_units();
        assert_eq!(units.len(), 3);
        assert!(units[0].1.contains("SOCK_STATE"));
        assert!(units[1].1.starts_with("import \"net\";"));
        assert!(units[2].1.contains("server_main"));
        assert_eq!(project_mutants().len(), MUTANTS.len());
        for (id, mutated, _) in project_mutants() {
            assert_eq!(mutated.len(), 3, "{id}");
            let unit = mutant_unit(id).unwrap();
            assert_ne!(
                mutated[unit].1,
                project_units()[unit].1,
                "{id} did not mutate"
            );
        }
    }

    #[test]
    fn mutants_differ_from_server() {
        for p in programs().iter().skip(1) {
            assert_ne!(p.source, server_source(), "{} identical", p.id);
        }
    }

    #[test]
    fn unused_cap_source_differs() {
        assert_ne!(unused_cap_source(), server_source());
        assert!(unused_cap_source().contains("uses time"));
    }
}
