//! The floppy-driver case study (paper §4): a driver written in Vault
//! against the kernel interface of [`crate::kernel::KERNEL_IFACE`], plus a
//! family of seeded-bug mutants — one per protocol category — that the
//! checker must each reject with the matching diagnostic.

use crate::kernel::KERNEL_IFACE;
use crate::{CorpusProgram, Expectation};
use vault_syntax::Code;

/// Driver-internal hardware interface: the floppy controller and motor.
/// The motor has its own protocol (`off → spinning → off`), enforced the
/// same way the kernel protocols are.
pub const FLOPPY_HW_IFACE: &str = r#"
// ----- Floppy hardware (driver-internal interface) ----------------------
stateset MOTOR = [ off < spinning ];
type motor;
tracked(M) motor FlAcquireMotor() [new M@off, IRQL@PASSIVE_LEVEL];
void FlStartMotor(tracked(M) motor m) [M@off->spinning];
void FlStopMotor(tracked(M) motor m) [M@spinning->off];
void FlReleaseMotor(tracked(M) motor m) [-M@off];
void FlIssueCommand(tracked(M) motor m, int cmd) [M@spinning];
void FlSeek(tracked(M) motor m, int cylinder) [M@spinning];
void FlTransferSector(tracked(M) motor m, int cylinder, int sector, bool is_write)
  [M@spinning];
void FlFormatTrack(tracked(M) motor m, int cylinder) [M@spinning];
int FlReadControllerStatus();

// Media sensing: a keyed variant ties the sensor's key state to the
// sensed outcome, exactly like the failure-aware bind of section 2.3.
stateset MEDIA_STATE = [ unknown < loaded, unknown < empty ];
type media;
tracked(E) media FlAcquireMediaSensor() [new E@unknown, IRQL@PASSIVE_LEVEL];
variant media_status<key E> [ 'MediaLoaded {E@loaded} | 'MediaMissing {E@empty} ];
tracked media_status<E> FlSenseMedia(tracked(E) media m) [-E@unknown];
void FlReleaseMediaSensor(tracked(E) media m) [-E];

// ----- Driver data structures -------------------------------------------
struct CONTROLLER_STATE {
  int motor_running;
  int current_cylinder;
  int commands_issued;
}
struct DRIVE_CONFIG {
  int drive_select;
  int data_rate;
}

// ----- Request constants ---------------------------------------------------
int IRP_MJ_CREATE();
int IRP_MJ_CLOSE();
int IRP_MJ_READ();
int IRP_MJ_WRITE();
int IRP_MJ_DEVICE_CONTROL();
int IRP_MJ_PNP();
int IRP_MJ_POWER();
int IOCTL_GET_MEDIA_TYPES();
int IOCTL_SET_DATA_RATE();
int IOCTL_FORMAT_TRACKS();
int IOCTL_CHECK_MEDIA();
int SECTORS_PER_TRACK();
"#;

/// The floppy driver itself, in Vault.
pub const FLOPPY_DRIVER: &str = r#"
// ======================================================================
// Floppy driver (case study, paper section 4)
// ======================================================================

// ----- Fast-path requests: create and close -----------------------------
DSTATUS<I> FloppyCreate(DEVICE_OBJECT dev, tracked(I) IRP irp)
    [-I, IRQL@PASSIVE_LEVEL] {
  IoSetIrpInformation(irp, 0);
  return IoCompleteRequest(irp, STATUS_SUCCESS());
}

DSTATUS<I> FloppyClose(DEVICE_OBJECT dev, tracked(I) IRP irp)
    [-I, IRQL@PASSIVE_LEVEL] {
  IoSetIrpInformation(irp, 0);
  return IoCompleteRequest(irp, STATUS_SUCCESS());
}

// ----- Read/write: validate, record, pend --------------------------------
DSTATUS<I> FloppyReadWrite(DEVICE_OBJECT dev, tracked(I) IRP irp,
                           tracked(Q) irp_queue queue,
                           KSPIN_LOCK<L> ctrl_lock, L:CONTROLLER_STATE ctrl,
                           paged<DRIVE_CONFIG> config)
    [-I, Q, IRQL@PASSIVE_LEVEL] {
  IO_STACK_LOCATION sl = IoGetCurrentIrpStackLocation(irp);
  if (sl.Length == 0) {
    return IoCompleteRequest(irp, STATUS_INVALID_PARAMETER());
  }
  if (sl.Offset < 0) {
    return IoCompleteRequest(irp, STATUS_INVALID_PARAMETER());
  }
  // Touch the paged per-drive configuration while still at PASSIVE_LEVEL.
  int rate = config.data_rate;
  // Account for the request under the controller spin lock.
  KIRQL<entry_level> prev = KeAcquireSpinLock(ctrl_lock);
  ctrl.commands_issued++;
  KeReleaseSpinLock(ctrl_lock, prev);
  // Pend the request for the start-I/O path.
  DSTATUS<I> pending = IoMarkIrpPending(irp);
  FlEnqueueIrp(queue, irp);
  return pending;
}

// ----- The start-I/O path: drain the queue with the motor spinning --------
DSTATUS<J> FloppyExecuteRequest(DEVICE_OBJECT dev, tracked(J) IRP irp,
                                tracked(M) motor m)
    [-J, M@spinning, IRQL@PASSIVE_LEVEL] {
  IO_STACK_LOCATION sl = IoGetCurrentIrpStackLocation(irp);
  int cylinder = sl.Offset / SECTORS_PER_TRACK();
  int sector = sl.Offset % SECTORS_PER_TRACK();
  FlSeek(m, cylinder);
  bool is_write = sl.MajorFunction == IRP_MJ_WRITE();
  int remaining = sl.Length;
  while (remaining > 0) {
    // Floppy hardware is unreliable: retry each sector a few times.
    int attempts = 3;
    bool done = false;
    while (attempts > 0 && !done) {
      FlTransferSector(m, cylinder, sector, is_write);
      if (FlReadControllerStatus() == 0) {
        done = true;
      }
      attempts = attempts - 1;
    }
    remaining = remaining - 1;
    sector = sector + 1;
  }
  IoSetIrpInformation(irp, sl.Length);
  return IoCompleteRequest(irp, STATUS_SUCCESS());
}

void FloppyProcessQueue(DEVICE_OBJECT dev, tracked(Q) irp_queue queue,
                        tracked(M) motor m, bool more)
    [Q, M@spinning, IRQL@PASSIVE_LEVEL] {
  while (more) {
    switch (FlDequeueIrp(queue)) {
      case 'NoIrp:
        more = false;
      case 'GotIrp(pending):
        DSTATUS<J> done = FloppyExecuteRequest(dev, pending, m);
        more = true;
    }
  }
}

void FloppyStartDevice(DEVICE_OBJECT dev, tracked(Q) irp_queue queue, bool more)
    [Q, IRQL@PASSIVE_LEVEL] {
  tracked(M) motor m = FlAcquireMotor();
  FlStartMotor(m);
  FloppyProcessQueue(dev, queue, m, more);
  FlStopMotor(m);
  FlReleaseMotor(m);
}

// ----- Formatting: a motor lifetime scoped to one request ------------------
DSTATUS<I> FloppyFormat(DEVICE_OBJECT dev, tracked(I) IRP irp, tracked(M) motor m)
    [-I, M@spinning, IRQL@PASSIVE_LEVEL] {
  IO_STACK_LOCATION sl = IoGetCurrentIrpStackLocation(irp);
  int cylinder = sl.Offset;
  int count = sl.Length;
  while (count > 0) {
    FlFormatTrack(m, cylinder);
    cylinder = cylinder + 1;
    count = count - 1;
  }
  IoSetIrpInformation(irp, sl.Length);
  return IoCompleteRequest(irp, STATUS_SUCCESS());
}

DSTATUS<I> FloppyFormatRequest(DEVICE_OBJECT dev, tracked(I) IRP irp)
    [-I, IRQL@PASSIVE_LEVEL] {
  tracked(M) motor m = FlAcquireMotor();
  FlStartMotor(m);
  DSTATUS<I> st = FloppyFormat(dev, irp, m);
  FlStopMotor(m);
  FlReleaseMotor(m);
  return st;
}

// ----- Media sensing: the keyed-variant status forces the check -------------
DSTATUS<I> FloppyCheckMedia(DEVICE_OBJECT dev, tracked(I) IRP irp)
    [-I, IRQL@PASSIVE_LEVEL] {
  tracked(E) media sensor = FlAcquireMediaSensor();
  switch (FlSenseMedia(sensor)) {
    case 'MediaLoaded:
      FlReleaseMediaSensor(sensor);
      IoSetIrpInformation(irp, 1);
      return IoCompleteRequest(irp, STATUS_SUCCESS());
    case 'MediaMissing:
      FlReleaseMediaSensor(sensor);
      IoSetIrpInformation(irp, 0);
      return IoCompleteRequest(irp, STATUS_NO_MEDIA());
  }
}

// ----- Device control: paged configuration at PASSIVE_LEVEL ---------------
DSTATUS<I> FloppyDeviceControl(DEVICE_OBJECT dev, tracked(I) IRP irp,
                               paged<DRIVE_CONFIG> config)
    [-I, IRQL@PASSIVE_LEVEL] {
  IO_STACK_LOCATION sl = IoGetCurrentIrpStackLocation(irp);
  if (sl.IoControlCode == IOCTL_GET_MEDIA_TYPES()) {
    IoSetIrpInformation(irp, config.data_rate);
    return IoCompleteRequest(irp, STATUS_SUCCESS());
  }
  if (sl.IoControlCode == IOCTL_FORMAT_TRACKS()) {
    return FloppyFormatRequest(dev, irp);
  }
  if (sl.IoControlCode == IOCTL_CHECK_MEDIA()) {
    return FloppyCheckMedia(dev, irp);
  }
  if (sl.IoControlCode == IOCTL_SET_DATA_RATE()) {
    config.data_rate = sl.Length;
    IoSetIrpInformation(irp, 1);
    return IoCompleteRequest(irp, STATUS_SUCCESS());
  }
  return IoCompleteRequest(irp, STATUS_UNSUCCESSFUL());
}

// ----- PnP: the Fig. 7 idiom (pass down, regain, complete) -----------------
DSTATUS<I> FloppyPnp(DEVICE_OBJECT lower, tracked(I) IRP irp)
    [-I, IRQL@PASSIVE_LEVEL] {
  KEVENT<I> IrpIsBack = KeInitializeEvent(irp);
  tracked COMPLETION_RESULT<I> RegainIrp(DEVICE_OBJECT d, tracked(I) IRP j)
      [-I, IRQL@(cl <= DISPATCH_LEVEL)] {
    KeSignalEvent(IrpIsBack);
    return 'MoreProcessingRequired;
  }
  IoCopyCurrentIrpStackLocationToNext(irp);
  IoSetCompletionRoutine(irp, RegainIrp);
  DSTATUS<I> lower_status = IoCallDriver(lower, irp);
  KeWaitForEvent(IrpIsBack);
  return IoCompleteRequest(irp, STATUS_SUCCESS());
}

// ----- Power: pass straight down --------------------------------------------
DSTATUS<I> FloppyPower(DEVICE_OBJECT lower, tracked(I) IRP irp)
    [-I, IRQL@PASSIVE_LEVEL] {
  IoCopyCurrentIrpStackLocationToNext(irp);
  return IoCallDriver(lower, irp);
}

// ----- Top-level dispatch -----------------------------------------------------
DSTATUS<I> FloppyDispatch(DEVICE_OBJECT dev, DEVICE_OBJECT lower,
                          tracked(I) IRP irp, tracked(Q) irp_queue queue,
                          KSPIN_LOCK<L> ctrl_lock, L:CONTROLLER_STATE ctrl,
                          paged<DRIVE_CONFIG> config)
    [-I, Q, IRQL@PASSIVE_LEVEL] {
  IO_STACK_LOCATION sl = IoGetCurrentIrpStackLocation(irp);
  if (sl.MajorFunction == IRP_MJ_CREATE()) {
    return FloppyCreate(dev, irp);
  }
  if (sl.MajorFunction == IRP_MJ_CLOSE()) {
    return FloppyClose(dev, irp);
  }
  if (sl.MajorFunction == IRP_MJ_READ() || sl.MajorFunction == IRP_MJ_WRITE()) {
    return FloppyReadWrite(dev, irp, queue, ctrl_lock, ctrl, config);
  }
  if (sl.MajorFunction == IRP_MJ_DEVICE_CONTROL()) {
    return FloppyDeviceControl(dev, irp, config);
  }
  if (sl.MajorFunction == IRP_MJ_POWER()) {
    return FloppyPower(lower, irp);
  }
  return FloppyPnp(lower, irp);
}

// ----- Initialization -----------------------------------------------------------
int DriverEntry(DRIVER_OBJECT driver, DEVICE_OBJECT physical, bool more)
    [IRQL@PASSIVE_LEVEL] {
  DEVICE_OBJECT dev = IoCreateDevice(driver, 7);
  DEVICE_OBJECT lower = IoAttachDeviceToDeviceStack(dev, physical);
  tracked(Q) irp_queue queue = FlAllocateQueue();
  tracked(C) CONTROLLER_STATE ctrl = new tracked CONTROLLER_STATE {
    motor_running=0; current_cylinder=0; commands_issued=0;
  };
  KSPIN_LOCK<C> ctrl_lock = KeInitializeSpinLock(ctrl);
  FloppyStartDevice(dev, queue, more);
  FlFreeQueue(queue);
  return 0;
}
"#;

/// The full, correct driver source (kernel interface + hardware + driver).
pub fn driver_source() -> String {
    format!("{KERNEL_IFACE}\n{FLOPPY_HW_IFACE}\n{FLOPPY_DRIVER}")
}

/// The same case study split into project-mode units: the kernel
/// interface, the driver-internal hardware interface (which needs the
/// kernel's `IRQL` protocol), and the driver itself. Unit order matches
/// the [`driver_source`] concatenation, so a flattened check and a
/// project check see the same declarations in the same order.
pub fn project_units() -> Vec<(&'static str, String)> {
    vec![
        ("kernel", KERNEL_IFACE.to_string()),
        (
            "floppy_hw",
            format!("import \"kernel\";\n{FLOPPY_HW_IFACE}"),
        ),
        (
            "driver",
            format!("import \"kernel\";\nimport \"floppy_hw\";\n{FLOPPY_DRIVER}"),
        ),
    ]
}

/// Multi-unit mutants: each seeded bug from [`programs`] applied to the
/// *driver unit* of the project split. Returns
/// `(id, units, expected code)` rows — the interface units are always
/// pristine, so every expected diagnostic must surface in the driver
/// unit's report.
pub fn project_mutants() -> Vec<(&'static str, Vec<(&'static str, String)>, Code)> {
    MUTANTS
        .iter()
        .map(|m| {
            assert!(
                FLOPPY_DRIVER.contains(m.from),
                "mutant {} marker drifted out of the driver source",
                m.id
            );
            let mutated = FLOPPY_DRIVER.replacen(m.from, m.to, 1);
            let mut units = project_units();
            units[2] = (
                "driver",
                format!("import \"kernel\";\nimport \"floppy_hw\";\n{mutated}"),
            );
            (m.id, units, m.code)
        })
        .collect()
}

/// A seeded-bug mutant: one protocol violation applied to the driver.
struct Mutant {
    id: &'static str,
    description: &'static str,
    /// Exact text in [`FLOPPY_DRIVER`] to replace (must be present).
    from: &'static str,
    /// Replacement introducing the bug.
    to: &'static str,
    /// Expected diagnostic.
    code: Code,
}

const MUTANTS: &[Mutant] = &[
    Mutant {
        id: "floppy_mut_missing_release",
        description: "spin lock never released in FloppyReadWrite (lock leak)",
        from: "  KeReleaseSpinLock(ctrl_lock, prev);\n  // Pend the request",
        to: "  // BUG: release elided\n  // Pend the request",
        code: Code::KeyLeak,
    },
    Mutant {
        id: "floppy_mut_irp_dropped",
        description: "invalid-parameter path marks the IRP pending but never queues it",
        from: "  if (sl.Offset < 0) {\n    return IoCompleteRequest(irp, STATUS_INVALID_PARAMETER());\n  }",
        to: "  if (sl.Offset < 0) {\n    return IoMarkIrpPending(irp);\n  }",
        code: Code::KeyLeak,
    },
    Mutant {
        id: "floppy_mut_use_after_pass",
        description: "FloppyPower touches the IRP after IoCallDriver",
        from: "  IoCopyCurrentIrpStackLocationToNext(irp);\n  return IoCallDriver(lower, irp);\n}",
        to: "  IoCopyCurrentIrpStackLocationToNext(irp);\n  DSTATUS<I> st = IoCallDriver(lower, irp);\n  IoSetIrpInformation(irp, 1);\n  return st;\n}",
        code: Code::KeyNotHeld,
    },
    Mutant {
        id: "floppy_mut_no_wait",
        description: "FloppyPnp completes the IRP without waiting for the completion event",
        from: "  DSTATUS<I> lower_status = IoCallDriver(lower, irp);\n  KeWaitForEvent(IrpIsBack);",
        to: "  DSTATUS<I> lower_status = IoCallDriver(lower, irp);\n  // BUG: wait elided",
        code: Code::KeyNotHeld,
    },
    Mutant {
        id: "floppy_mut_paged_under_lock",
        description: "paged config touched at DISPATCH_LEVEL inside the spin lock",
        from: "  ctrl.commands_issued++;\n  KeReleaseSpinLock(ctrl_lock, prev);",
        to: "  ctrl.commands_issued++;\n  config.data_rate = 9;\n  KeReleaseSpinLock(ctrl_lock, prev);",
        code: Code::StateBound,
    },
    Mutant {
        id: "floppy_mut_double_complete",
        description: "FloppyDeviceControl completes the unsupported-ioctl IRP twice",
        from: "  return IoCompleteRequest(irp, STATUS_UNSUCCESSFUL());\n}",
        to: "  DSTATUS<I> first = IoCompleteRequest(irp, STATUS_UNSUCCESSFUL());\n  return IoCompleteRequest(irp, STATUS_UNSUCCESSFUL());\n}",
        code: Code::KeyNotHeld,
    },
    Mutant {
        id: "floppy_mut_motor_not_started",
        description: "queue processed with the motor still off",
        from: "  FlStartMotor(m);\n  FloppyProcessQueue(dev, queue, m, more);",
        to: "  // BUG: spin-up elided\n  FloppyProcessQueue(dev, queue, m, more);",
        code: Code::WrongKeyState,
    },
    Mutant {
        id: "floppy_mut_motor_leaked",
        description: "motor neither stopped nor released after processing",
        from: "  FlStopMotor(m);\n  FlReleaseMotor(m);\n}",
        to: "  // BUG: shutdown elided\n}",
        code: Code::KeyLeak,
    },
];

/// Driver + mutants as corpus programs (experiments E11/E12).
pub fn programs() -> Vec<CorpusProgram> {
    let mut v = vec![CorpusProgram {
        id: "floppy_driver",
        experiment: "E11",
        description: "the floppy-driver case study, protocol-clean",
        source: driver_source(),
        expect: Expectation::Accept,
    }];
    for m in MUTANTS {
        assert!(
            FLOPPY_DRIVER.contains(m.from),
            "mutant {} marker drifted out of the driver source",
            m.id
        );
        let mutated = FLOPPY_DRIVER.replacen(m.from, m.to, 1);
        v.push(CorpusProgram {
            id: m.id,
            experiment: "E12",
            description: m.description,
            source: format!("{KERNEL_IFACE}\n{FLOPPY_HW_IFACE}\n{mutated}"),
            expect: Expectation::reject(m.code),
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_source_is_substantial() {
        assert!(crate::count_loc(&driver_source()) > 200);
    }

    #[test]
    fn all_mutant_markers_present() {
        // `programs` panics on drift; this makes it a named test.
        assert_eq!(programs().len(), 1 + MUTANTS.len());
    }

    #[test]
    fn project_split_covers_the_whole_driver() {
        let units = project_units();
        assert_eq!(units.len(), 3);
        assert!(units[0].1.contains("IRQL"));
        assert!(units[1].1.starts_with("import \"kernel\";"));
        assert!(units[2].1.contains("FloppyDispatch"));
        assert_eq!(project_mutants().len(), MUTANTS.len());
        for (id, units, _) in project_mutants() {
            assert_eq!(units.len(), 3, "{id}");
            assert_ne!(units[2].1, project_units()[2].1, "{id} did not mutate");
        }
    }

    #[test]
    fn mutants_differ_from_driver() {
        for p in programs().iter().skip(1) {
            assert_ne!(p.source, driver_source(), "{} identical", p.id);
        }
    }
}
