//! # vault-corpus
//!
//! The program corpus for the Vault reproduction: every example from the
//! paper (Figs. 1–5, 7, §2.1, §2.3, §4.1–§4.4), the Vault description of
//! the Windows 2000 kernel/driver interface, the floppy-driver case study
//! with seeded-bug mutants, and a synthetic program generator for the
//! checker-scaling benchmarks.
//!
//! Each [`CorpusProgram`] records the experiment it belongs to and the
//! expected checker outcome, so the test suite, the benches, and the
//! `report` binary all assert against a single source of truth.

#![warn(missing_docs)]

pub mod exec;
pub mod extensions;
pub mod figures;
pub mod floppy;
pub mod kernel;
pub mod sockets;
pub mod synth;

use vault_syntax::Code;

/// What the checker must say about a corpus program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// The program respects every protocol.
    Accept,
    /// The program must be rejected, with at least these diagnostic codes.
    Reject(Vec<Code>),
}

impl Expectation {
    /// Shorthand for a single-code rejection.
    pub fn reject(code: Code) -> Self {
        Expectation::Reject(vec![code])
    }
}

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusProgram {
    /// Stable identifier, e.g. `fig2_dangling`.
    pub id: &'static str,
    /// Which experiment (DESIGN.md index) this belongs to, e.g. `E1`.
    pub experiment: &'static str,
    /// What the program demonstrates.
    pub description: &'static str,
    /// Vault source text.
    pub source: String,
    /// Expected checker outcome.
    pub expect: Expectation,
}

impl CorpusProgram {
    /// Non-blank, non-comment line count of the source.
    pub fn loc(&self) -> usize {
        count_loc(&self.source)
    }
}

/// Count non-blank, non-comment lines.
pub fn count_loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// Every corpus program, across all experiments.
pub fn all_programs() -> Vec<CorpusProgram> {
    let mut v = Vec::new();
    v.extend(figures::programs());
    v.extend(kernel::programs());
    v.extend(floppy::programs());
    v.extend(sockets::programs());
    v.extend(extensions::programs());
    v.extend(exec::programs());
    v
}

/// The corpus programs belonging to one experiment id (e.g. `"E2"`).
pub fn programs_for(experiment: &str) -> Vec<CorpusProgram> {
    all_programs()
        .into_iter()
        .filter(|p| p.experiment == experiment)
        .collect()
}

/// All experiment ids present in the corpus, in order.
pub fn experiment_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = Vec::new();
    for p in all_programs() {
        if !ids.contains(&p.experiment) {
            ids.push(p.experiment);
        }
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_ids_are_unique() {
        let programs = all_programs();
        let mut ids: Vec<_> = programs.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate corpus ids");
    }

    #[test]
    fn corpus_is_nonempty_per_experiment() {
        for exp in experiment_ids() {
            assert!(
                !programs_for(exp).is_empty(),
                "experiment {exp} has no programs"
            );
        }
    }

    #[test]
    fn loc_counter_skips_blanks_and_comments() {
        assert_eq!(count_loc("a\n\n// c\n  b  \n"), 2);
    }
}
