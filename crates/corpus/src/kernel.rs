//! The Vault description of the Windows 2000 kernel/driver interface
//! (paper §4) and the protocol programs of experiments E7–E10.

use crate::{CorpusProgram, Expectation};
use vault_syntax::Code;

/// The kernel interface in Vault: IRPs and the `DSTATUS` discipline
/// (§4.1), events and spin locks (§4.2), completion routines (§4.3), and
/// the IRQL stateset with paged memory (§4.4).
pub const KERNEL_IFACE: &str = r#"
// ----- Interrupt request levels (§4.4) --------------------------------
stateset IRQ_LEVEL = [ PASSIVE_LEVEL < APC_LEVEL < DISPATCH_LEVEL < DIRQL ];
key IRQL @ IRQ_LEVEL;
type KIRQL<state S>;

// ----- Core kernel objects ---------------------------------------------
type NTSTATUS;
type DEVICE_OBJECT;
type DRIVER_OBJECT;
type KTHREAD;
type KSEMAPHORE;
type IRP;
type DSTATUS<key I>;
struct IO_STACK_LOCATION {
  int MajorFunction;
  int IoControlCode;
  int Length;
  int Offset;
}

NTSTATUS STATUS_SUCCESS();
NTSTATUS STATUS_PENDING();
NTSTATUS STATUS_UNSUCCESSFUL();
NTSTATUS STATUS_INVALID_PARAMETER();
NTSTATUS STATUS_NO_MEDIA();
bool NT_SUCCESS(NTSTATUS st);

// ----- The IRP ownership protocol (§4.1) --------------------------------
// A service routine owns its IRP and must either complete it, pass it
// down the stack, or mark it pending; DSTATUS<I> is abstract, so these
// three functions are the only way to produce the required return value.
DSTATUS<I> IoCompleteRequest(tracked(I) IRP irp, NTSTATUS status) [-I];
DSTATUS<I> IoCallDriver(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I];
DSTATUS<I> IoMarkIrpPending(tracked(I) IRP irp) [I];
IO_STACK_LOCATION IoGetCurrentIrpStackLocation(tracked(I) IRP irp) [I];
void IoCopyCurrentIrpStackLocationToNext(tracked(I) IRP irp) [I];
void IoSetIrpInformation(tracked(I) IRP irp, int info) [I];

// ----- Driver-managed pending queues (§4.1) ------------------------------
// "A driver consumes the key by storing the IRP on a pending list, thus
// anonymizing and packaging the key with the IRP."
type irp_queue;
tracked(Q) irp_queue FlAllocateQueue() [new Q, IRQL@PASSIVE_LEVEL];
void FlEnqueueIrp(tracked(Q) irp_queue q, tracked(I) IRP irp) [Q, -I];
variant opt_irp [ 'NoIrp | 'GotIrp(tracked IRP) ];
tracked opt_irp FlDequeueIrp(tracked(Q) irp_queue q) [Q];
void FlFreeQueue(tracked(Q) irp_queue q) [-Q, IRQL@PASSIVE_LEVEL];

// ----- Events (§4.2) ------------------------------------------------------
type KEVENT<key K>;
KEVENT<K> KeInitializeEvent<type T>(tracked(K) T obj) [K];
void KeSignalEvent(KEVENT<K> e) [-K, IRQL@(sl <= DISPATCH_LEVEL)];
void KeWaitForEvent(KEVENT<K> e) [+K, IRQL@(wl <= APC_LEVEL)];

// ----- Spin locks (§4.2 + §4.4) -------------------------------------------
// Acquiring protects the guarded data *and* raises the interrupt level;
// releasing returns to the recorded level.
type KSPIN_LOCK<key K>;
KSPIN_LOCK<K> KeInitializeSpinLock<type T>(tracked(K) T data) [-K, IRQL@PASSIVE_LEVEL];
KIRQL<level> KeAcquireSpinLock(KSPIN_LOCK<K> lock)
  [+K, IRQL@(level <= DISPATCH_LEVEL) -> DISPATCH_LEVEL];
void KeReleaseSpinLock(KSPIN_LOCK<K> lock, KIRQL<old> prev)
  [-K, IRQL@DISPATCH_LEVEL -> old];

// ----- Completion routines (§4.3) ------------------------------------------
variant COMPLETION_RESULT<key I> [
  'MoreProcessingRequired
| 'Finished(NTSTATUS) {I}
];
type COMPLETION_ROUTINE<key K> =
  tracked COMPLETION_RESULT<K> Routine(DEVICE_OBJECT, tracked(K) IRP)
    [-K, IRQL@(crl <= DISPATCH_LEVEL)];
void IoSetCompletionRoutine(tracked(I) IRP irp, COMPLETION_ROUTINE<I> routine) [I];

// ----- Paged vs non-paged memory (§4.4) --------------------------------------
type paged<type T> = (IRQL@(pl <= APC_LEVEL)):T;
int KeReleaseSemaphore(KSEMAPHORE s, int prio, int n)
  [IRQL@(rl <= DISPATCH_LEVEL)];
KPRIORITY KeSetPriorityThread(KTHREAD t, KPRIORITY p) [IRQL@PASSIVE_LEVEL];
type KPRIORITY;
KPRIORITY LOW_REALTIME_PRIORITY();

// ----- Device management ------------------------------------------------------
DEVICE_OBJECT IoCreateDevice(DRIVER_OBJECT drv, int device_type) [IRQL@PASSIVE_LEVEL];
DEVICE_OBJECT IoAttachDeviceToDeviceStack(DEVICE_OBJECT ours, DEVICE_OBJECT target)
  [IRQL@PASSIVE_LEVEL];
void IoDeleteDevice(DEVICE_OBJECT dev) [IRQL@PASSIVE_LEVEL];
void IoDetachDevice(DEVICE_OBJECT dev) [IRQL@PASSIVE_LEVEL];
"#;

fn p(
    id: &'static str,
    experiment: &'static str,
    description: &'static str,
    body: &str,
    expect: Expectation,
) -> CorpusProgram {
    CorpusProgram {
        id,
        experiment,
        description,
        source: format!("{KERNEL_IFACE}\n{body}"),
        expect,
    }
}

/// E7–E10 kernel protocol programs.
#[allow(clippy::vec_init_then_push)] // one push per corpus entry reads best
pub fn programs() -> Vec<CorpusProgram> {
    let mut v = Vec::new();

    // --- E7: IRP ownership (§4.1) -----------------------------------------
    v.push(p(
        "irp_complete_ok",
        "E7",
        "service routine completes its IRP",
        "DSTATUS<I> Read(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
           return IoCompleteRequest(irp, STATUS_SUCCESS());
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "irp_pass_down_ok",
        "E7",
        "service routine passes its IRP to the next driver",
        "DSTATUS<I> Read(DEVICE_OBJECT lower, tracked(I) IRP irp) [-I] {
           IoCopyCurrentIrpStackLocationToNext(irp);
           return IoCallDriver(lower, irp);
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "irp_pend_ok",
        "E7",
        "service routine pends its IRP onto a driver-managed queue",
        "DSTATUS<I> Read(DEVICE_OBJECT dev, tracked(I) IRP irp, tracked(Q) irp_queue q)
             [-I, Q] {
           DSTATUS<I> st = IoMarkIrpPending(irp);
           FlEnqueueIrp(q, irp);
           return st;
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "irp_dropped_path",
        "E7",
        "a path that neither completes, passes, nor pends the IRP",
        "DSTATUS<I> Read(DEVICE_OBJECT dev, tracked(I) IRP irp, bool fast) [-I] {
           if (fast) {
             return IoCompleteRequest(irp, STATUS_SUCCESS());
           }
           return IoMarkIrpPending(irp);
         }",
        Expectation::reject(Code::KeyLeak),
    ));
    v.push(p(
        "irp_use_after_pass",
        "E7",
        "touching the IRP after IoCallDriver transferred ownership",
        "DSTATUS<I> Read(DEVICE_OBJECT lower, tracked(I) IRP irp) [-I] {
           DSTATUS<I> st = IoCallDriver(lower, irp);
           IoSetIrpInformation(irp, 512);
           return st;
         }",
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "irp_double_complete",
        "E7",
        "completing the same IRP twice",
        "DSTATUS<I> Read(DEVICE_OBJECT dev, tracked(I) IRP irp) [-I] {
           DSTATUS<I> a = IoCompleteRequest(irp, STATUS_SUCCESS());
           return IoCompleteRequest(irp, STATUS_SUCCESS());
         }",
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "irp_wrong_status",
        "E7",
        "returning the DSTATUS of a different request",
        "DSTATUS<I> Read(DEVICE_OBJECT dev, tracked(I) IRP irp, tracked(J) IRP other)
             [-I, -J] {
           DSTATUS<I> mine = IoCompleteRequest(irp, STATUS_SUCCESS());
           return IoCompleteRequest(other, STATUS_SUCCESS());
         }",
        Expectation::reject(Code::TypeMismatch),
    ));
    v.push(p(
        "irp_dequeue_drain",
        "E7",
        "draining the pending queue completes each IRP exactly once",
        "void Drain(tracked(Q) irp_queue q, bool more) [Q] {
           while (more) {
             switch (FlDequeueIrp(q)) {
               case 'NoIrp:
                 more = false;
               case 'GotIrp(irp):
                 DSTATUS<J> st = finish(irp);
                 more = true;
             }
           }
         }
         DSTATUS<J> finish(tracked(J) IRP irp) [-J] {
           return IoCompleteRequest(irp, STATUS_SUCCESS());
         }",
        Expectation::Accept,
    ));

    // --- E8: events and locks (§4.2) -----------------------------------------
    v.push(p(
        "lock_guarded_access_ok",
        "E8",
        "spin lock must be held to touch the guarded data",
        "struct shared { int value; }
         void ok(KSPIN_LOCK<K> lock, K:shared data) [IRQL@PASSIVE_LEVEL] {
           KIRQL<old> prev = KeAcquireSpinLock(lock);
           data.value++;
           KeReleaseSpinLock(lock, prev);
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "lock_access_without_acquire",
        "E8",
        "touching lock-guarded data without acquiring",
        "struct shared { int value; }
         void bad(KSPIN_LOCK<K> lock, K:shared data) [IRQL@PASSIVE_LEVEL] {
           data.value++;
         }",
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "lock_missing_release",
        "E8",
        "§4.2: a missing lock release is a key leak",
        "void bad(KSPIN_LOCK<K> lock) [IRQL@PASSIVE_LEVEL] {
           KIRQL<old> prev = KeAcquireSpinLock(lock);
           forget_level(prev);
         }
         void forget_level(KIRQL<S> prev);",
        Expectation::reject(Code::KeyLeak),
    ));
    v.push(p(
        "lock_double_acquire",
        "E8",
        "§4.2: acquiring a lock already held duplicates its key",
        "void bad(KSPIN_LOCK<K> lock) [IRQL@PASSIVE_LEVEL] {
           KIRQL<a> p1 = KeAcquireSpinLock(lock);
           KIRQL<b> p2 = KeAcquireSpinLock(lock);
           KeReleaseSpinLock(lock, p2);
           KeReleaseSpinLock(lock, p1);
         }",
        Expectation::reject(Code::DuplicateKey),
    ));
    v.push(p(
        "lock_release_unheld",
        "E8",
        "releasing a lock that is not held",
        "void bad(KSPIN_LOCK<K> lock, KIRQL<S> prev) [IRQL@DISPATCH_LEVEL] {
           KeReleaseSpinLock(lock, prev);
         }",
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "event_key_transfer",
        "E8",
        "§4.2: events pass a key from one thread's held set to another's",
        "struct msg { int data; }
         void sender(KEVENT<K> e, K:msg m) [-K, IRQL@PASSIVE_LEVEL] {
           m.data = 42;
           KeSignalEvent(e);
         }
         void receiver(KEVENT<K> e, K:msg m) [+K, IRQL@PASSIVE_LEVEL] {
           KeWaitForEvent(e);
           m.data++;
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "event_use_after_signal",
        "E8",
        "touching the protected data after signalling away its key",
        "struct msg { int data; }
         void bad(KEVENT<K> e, K:msg m) [-K, IRQL@PASSIVE_LEVEL] {
           KeSignalEvent(e);
           m.data = 42;
         }",
        Expectation::reject(Code::KeyNotHeld),
    ));

    // --- E9: completion routines (§4.3, Fig. 7) -------------------------------
    v.push(p(
        "fig7_regain_ownership",
        "E9",
        "Fig. 7: event + completion routine regains IRP ownership",
        "DSTATUS<I> PnpRequest(DEVICE_OBJECT lower, tracked(I) IRP irp)
             [-I, IRQL@PASSIVE_LEVEL] {
           KEVENT<I> IrpIsBack = KeInitializeEvent(irp);
           tracked COMPLETION_RESULT<I> RegainIrp(DEVICE_OBJECT d, tracked(I) IRP j)
               [-I, IRQL@(cl <= DISPATCH_LEVEL)] {
             KeSignalEvent(IrpIsBack);
             return 'MoreProcessingRequired;
           }
           IoSetCompletionRoutine(irp, RegainIrp);
           DSTATUS<I> st = IoCallDriver(lower, irp);
           KeWaitForEvent(IrpIsBack);
           return IoCompleteRequest(irp, STATUS_SUCCESS());
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "fig7_wait_before_callback",
        "E9",
        "accessing the IRP after IoCallDriver without waiting for the event",
        "DSTATUS<I> PnpRequest(DEVICE_OBJECT lower, tracked(I) IRP irp)
             [-I, IRQL@PASSIVE_LEVEL] {
           KEVENT<I> IrpIsBack = KeInitializeEvent(irp);
           tracked COMPLETION_RESULT<I> RegainIrp(DEVICE_OBJECT d, tracked(I) IRP j)
               [-I, IRQL@(cl <= DISPATCH_LEVEL)] {
             KeSignalEvent(IrpIsBack);
             return 'MoreProcessingRequired;
           }
           IoSetCompletionRoutine(irp, RegainIrp);
           DSTATUS<I> st = IoCallDriver(lower, irp);
           return IoCompleteRequest(irp, STATUS_SUCCESS());
         }",
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "fig7_footnote10",
        "E9",
        "footnote 10: after signalling, only 'MoreProcessingRequired type-checks",
        "tracked COMPLETION_RESULT<I> BadRoutine(DEVICE_OBJECT d, tracked(I) IRP j,
             KEVENT<I> back) [-I, IRQL@(cl <= DISPATCH_LEVEL)] {
           KeSignalEvent(back);
           return 'Finished(STATUS_SUCCESS()){I};
         }",
        Expectation::reject(Code::KeyNotHeld),
    ));
    v.push(p(
        "fig7_finished_keeps_key",
        "E9",
        "a routine that does not signal must return 'Finished with the key",
        "tracked COMPLETION_RESULT<I> OkRoutine(DEVICE_OBJECT d, tracked(I) IRP j)
             [-I, IRQL@(cl <= DISPATCH_LEVEL)] {
           return 'Finished(STATUS_SUCCESS()){I};
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "fig7_neither_leaks",
        "E9",
        "a routine that neither signals nor finishes leaks the IRP key",
        "tracked COMPLETION_RESULT<I> BadRoutine(DEVICE_OBJECT d, tracked(I) IRP j)
             [-I, IRQL@(cl <= DISPATCH_LEVEL)] {
           return 'MoreProcessingRequired;
         }",
        Expectation::reject(Code::KeyLeak),
    ));

    // --- E10: IRQL and paging (§4.4) -------------------------------------------
    v.push(p(
        "irql_passive_required_ok",
        "E10",
        "KeSetPriorityThread requires PASSIVE_LEVEL",
        "void ok(KTHREAD t) [IRQL@PASSIVE_LEVEL] {
           KeSetPriorityThread(t, LOW_REALTIME_PRIORITY());
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "irql_passive_required_bad",
        "E10",
        "calling a PASSIVE_LEVEL function at DISPATCH_LEVEL",
        "void bad(KTHREAD t) [IRQL@DISPATCH_LEVEL] {
           KeSetPriorityThread(t, LOW_REALTIME_PRIORITY());
         }",
        Expectation::reject(Code::WrongKeyState),
    ));
    v.push(p(
        "irql_bounded_ok",
        "E10",
        "KeReleaseSemaphore is polymorphic below DISPATCH_LEVEL",
        "void ok(KSEMAPHORE s) [IRQL@APC_LEVEL] {
           KeReleaseSemaphore(s, 1, 1);
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "irql_bounded_bad",
        "E10",
        "KeReleaseSemaphore at DIRQL exceeds the bound",
        "void bad(KSEMAPHORE s) [IRQL@DIRQL] {
           KeReleaseSemaphore(s, 1, 1);
         }",
        Expectation::reject(Code::StateBound),
    ));
    v.push(p(
        "irql_spinlock_restores",
        "E10",
        "KeAcquireSpinLock raises to DISPATCH_LEVEL and release restores",
        "struct shared { int value; }
         void ok(KSPIN_LOCK<K> lock, K:shared data, KTHREAD t) [IRQL@PASSIVE_LEVEL] {
           KIRQL<old> prev = KeAcquireSpinLock(lock);
           data.value++;
           KeReleaseSpinLock(lock, prev);
           KeSetPriorityThread(t, LOW_REALTIME_PRIORITY());
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "irql_forgot_restore",
        "E10",
        "exiting at DISPATCH_LEVEL when the effect promises the entry level",
        "struct shared { int value; }
         void bad(KSPIN_LOCK<K> lock, K:shared data) [IRQL@PASSIVE_LEVEL] {
           KIRQL<old> prev = KeAcquireSpinLock(lock);
           data.value++;
           release_only_key(lock, prev);
         }
         void release_only_key(KSPIN_LOCK<K> lock, KIRQL<S> prev) [-K];",
        Expectation::reject(Code::WrongKeyState),
    ));
    v.push(p(
        "paged_access_ok",
        "E10",
        "paged data accessible at PASSIVE_LEVEL",
        "struct config { int setting; }
         void ok(paged<config> c) [IRQL@PASSIVE_LEVEL] {
           c.setting++;
         }",
        Expectation::Accept,
    ));
    v.push(p(
        "paged_access_at_dispatch",
        "E10",
        "§4.4: touching paged memory at DISPATCH_LEVEL would deadlock",
        "struct config { int setting; }
         void bad(paged<config> c) [IRQL@DISPATCH_LEVEL] {
           c.setting++;
         }",
        Expectation::reject(Code::StateBound),
    ));
    v.push(p(
        "paged_access_under_lock",
        "E10",
        "paged access inside a spin-locked region is the classic deadlock",
        "struct config { int setting; }
         void bad(KSPIN_LOCK<K> lock, paged<config> c) [IRQL@PASSIVE_LEVEL] {
           KIRQL<old> prev = KeAcquireSpinLock(lock);
           c.setting++;
           KeReleaseSpinLock(lock, prev);
         }",
        Expectation::reject(Code::StateBound),
    ));
    v.push(p(
        "irql_undeclared_constraint",
        "E10",
        "a function that does not declare IRQL cannot rely on its level",
        "void bad(KTHREAD t) {
           KeSetPriorityThread(t, LOW_REALTIME_PRIORITY());
         }",
        Expectation::reject(Code::WrongKeyState),
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_iface_is_substantial() {
        assert!(crate::count_loc(KERNEL_IFACE) > 50);
    }

    #[test]
    fn kernel_programs_cover_e7_to_e10() {
        let ids: Vec<&str> = programs().iter().map(|p| p.experiment).collect();
        for e in ["E7", "E8", "E9", "E10"] {
            assert!(ids.contains(&e), "missing {e}");
        }
    }
}
