//! `vaultc` — the Vault checker command line.
//!
//! ```text
//! vaultc check [--jobs N] <file.vlt>...   check protocols, print diagnostics
//! vaultc check --project <vault.toml>     check a multi-unit project manifest
//! vaultc check --socket PATH <file.vlt>...check on a running vaultd (retries)
//! vaultc check --connect ADDR:PORT <f>... same, over TCP
//! vaultc emit-c <file.vlt>                check, then print the generated C
//! vaultc dump-cfg <file.vlt>              print each function's CFG as dot
//! vaultc stats <file.vlt>                 checker-effort statistics per unit
//! vaultc run [--engine interp|vm] [--fuel N] <file.vlt> <entry>
//!                                         check, then execute an entry function
//! vaultc explain <Vnnn>                   explain a diagnostic code
//! vaultc corpus [experiment]              run the built-in paper corpus
//! vaultc serve [--socket PATH] [--listen ADDR:PORT]
//!                                         run the vaultd checking service
//! ```
//!
//! `serve` accepts resource bounds: `--max-request-bytes N` caps request
//! lines, `--timeout-ms N` gives each unit a checking deadline, and
//! `--fuel N` caps loop-invariant fixpoint iterations. With `--socket`
//! and/or `--listen` it serves event-driven: one readiness loop
//! multiplexes every connection onto a bounded executor pool. `check
//! --socket` / `check --connect` retry transient connection failures
//! with jittered exponential backoff (`--retries N` to tune, default 5).
//!
//! `check` defaults `--jobs` to the number of available hardware
//! threads, dedupes repeated input paths (after canonicalization), and
//! with `--project` checks a whole manifest of importing units through
//! the DAG scheduler. `--verbose` echoes the resolved job count.
//!
//! `run` executes through the tree-walking interpreter by default;
//! `--engine vm` compiles the checked program to register bytecode and
//! runs it on the `vault-vm` backend — same fault vocabulary, same fuel
//! accounting, proven outcome-identical by the differential suite.
//! `--fuel N` bounds execution; exhaustion is a distinct verdict.
//!
//! Exit code 0 when every input is accepted, 1 on protocol violations,
//! 2 on usage errors or unreadable inputs, and — for `run` only — 3 when
//! the entry ran out of fuel. `check` with multiple files reports
//! unreadable files and keeps going; if any file was unreadable the
//! exit code is 2 even when the rest were accepted.

use std::process::ExitCode;
use std::sync::Arc;
use vault_core::{check_source, CheckSummary, Verdict};
use vault_server::{
    CheckService, Client, Json, MuxConfig, MuxServer, RetryPolicy, ServiceConfig, UnitIn,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "check" => check_cmd(rest),
            "emit-c" if rest.len() == 1 => emit_c(&rest[0]),
            "dump-cfg" if rest.len() == 1 => dump_cfg(&rest[0]),
            "stats" if rest.len() == 1 => stats(&rest[0]),
            "run" => run_cmd(rest),
            "explain" if rest.len() == 1 => explain(&rest[0]),
            "corpus" => run_corpus(rest.first().map(String::as_str)),
            "synth" => synth_cmd(rest),
            "serve" => serve(rest),
            _ => usage(),
        },
        None => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  vaultc check [--jobs N] [--verbose] [--socket PATH | --connect ADDR:PORT]\n               \
         [--retries N] <file.vlt>...\n  \
         vaultc check --project <vault.toml> [--jobs N] [--verbose]\n  \
         vaultc emit-c <file.vlt>\n  \
         vaultc dump-cfg <file.vlt>\n  vaultc stats <file.vlt>\n  \
         vaultc run [--engine interp|vm] [--fuel N] <file.vlt> <entry>\n  \
         vaultc explain <Vnnn>\n  vaultc corpus [E1..E15|X1..X6]\n  \
         vaultc synth --out DIR [--units N] [--fns-per-unit N] [--stmts N]\n               \
         [--seed N] [--bug-rate R]\n  \
         vaultc serve [--socket PATH] [--listen ADDR:PORT] [--jobs N] [--cache N]\n               \
         [--cache-dir PATH] [--cache-max-bytes N] [--executors N]\n               \
         [--max-request-bytes N] [--timeout-ms N] [--fuel N]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("vaultc: cannot read `{path}`: {e}");
        ExitCode::from(2)
    })
}

/// Where a remote `check` ships its batch.
enum Remote {
    /// A vaultd Unix socket path (`--socket`).
    Socket(String),
    /// A vaultd TCP address (`--connect`).
    Tcp(String),
}

impl Remote {
    fn describe(&self) -> &str {
        match self {
            Remote::Socket(path) => path,
            Remote::Tcp(addr) => addr,
        }
    }
}

/// Parsed `check` arguments.
struct CheckArgs {
    jobs: usize,
    verbose: bool,
    remote: Option<(Remote, u32)>,
    project: Option<String>,
    paths: Vec<String>,
}

/// The default worker count when `--jobs` is not given: one job per
/// available hardware thread.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parse `check` arguments: `--jobs N` / `-j N`, `--socket PATH` or
/// `--connect ADDR:PORT` (mutually exclusive), `--retries N`,
/// `--project MANIFEST`, and `--verbose` anywhere among the paths.
fn parse_check_args(rest: &[String]) -> Option<CheckArgs> {
    let mut jobs = default_jobs();
    let mut verbose = false;
    let mut socket: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut retries = 5u32;
    let mut project: Option<String> = None;
    let mut paths = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => return None,
            },
            "--verbose" | "-v" => verbose = true,
            "--socket" => match it.next() {
                Some(path) => socket = Some(path.clone()),
                None => return None,
            },
            "--connect" => match it.next() {
                Some(addr) => connect = Some(addr.clone()),
                None => return None,
            },
            "--retries" => match it.next().and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n >= 1 => retries = n,
                _ => return None,
            },
            "--project" => match it.next() {
                Some(manifest) => project = Some(manifest.clone()),
                None => return None,
            },
            flag if flag.starts_with('-') => return None,
            path => paths.push(path.to_string()),
        }
    }
    let remote = match (socket, connect) {
        (Some(_), Some(_)) => return None, // one transport at a time
        (Some(path), None) => Some(Remote::Socket(path)),
        (None, Some(addr)) => Some(Remote::Tcp(addr)),
        (None, None) => None,
    };
    // A project manifest supplies the unit list itself; mixing it with
    // loose paths (or a remote daemon) is a usage error.
    match &project {
        Some(_) if !paths.is_empty() || remote.is_some() => return None,
        Some(_) => {}
        None if paths.is_empty() => return None,
        None => {}
    }
    Some(CheckArgs {
        jobs,
        verbose,
        remote: remote.map(|r| (r, retries)),
        project,
        paths,
    })
}

/// Drop repeated inputs: the same file named twice (even via different
/// spellings — `./a.vlt` vs `a.vlt` vs an absolute path) is checked
/// once, under its first spelling. Unresolvable paths dedupe on the raw
/// string and are reported by the read loop below.
fn dedupe_paths(paths: Vec<String>) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut kept = Vec::new();
    for path in paths {
        let key = std::fs::canonicalize(&path)
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|_| path.clone());
        if seen.insert(key) {
            kept.push(path);
        }
    }
    kept
}

fn check_cmd(rest: &[String]) -> ExitCode {
    let Some(args) = parse_check_args(rest) else {
        return usage();
    };

    if let Some(manifest) = &args.project {
        return check_project_cmd(manifest, args.jobs, args.verbose);
    }

    // Read every input up front; an unreadable file is reported and
    // skipped rather than aborting the whole batch, but still forces
    // exit code 2 at the end.
    let paths = dedupe_paths(args.paths);
    let mut any_unreadable = false;
    let mut units: Vec<UnitIn> = Vec::new();
    for path in &paths {
        match read(path) {
            Ok(source) => units.push(UnitIn {
                name: path.clone(),
                source,
            }),
            Err(_) => any_unreadable = true,
        }
    }
    if args.verbose {
        eprintln!(
            "vaultc: checking {} unit(s) with {} job(s)",
            units.len(),
            args.jobs
        );
    }

    // With --socket or --connect, ship the batch to a running daemon
    // instead of checking locally; transient connection failures are
    // retried with jittered backoff.
    if let Some((remote, retries)) = args.remote {
        return check_remote(&remote, retries, units, any_unreadable);
    }

    // jobs = 1 checks inline; jobs > 1 fans out across a worker pool.
    // Both paths produce the same summaries in input order, so output
    // is byte-identical regardless of parallelism.
    let summaries: Vec<CheckSummary> = if args.jobs <= 1 {
        units
            .iter()
            .map(|u| vault_core::check_summary(&u.name, &u.source))
            .collect()
    } else {
        let svc = CheckService::new(ServiceConfig {
            jobs: args.jobs,
            cache_capacity: units.len().max(1),
            ..Default::default()
        });
        let (reports, _) = svc.check_units(units);
        reports.into_iter().map(|r| (*r.summary).clone()).collect()
    };

    let code = render_summaries(&summaries);
    if any_unreadable {
        ExitCode::from(2)
    } else {
        code
    }
}

/// Check a whole project manifest: load the ordered unit list, schedule
/// it across the worker pool, and print per-unit verdicts in manifest
/// order — byte-identical at any `--jobs`.
fn check_project_cmd(manifest: &str, jobs: usize, verbose: bool) -> ExitCode {
    let units = match vault_project::Manifest::load_units(std::path::Path::new(manifest)) {
        Ok(units) => units,
        Err(e) => {
            eprintln!("vaultc: cannot load project `{manifest}`: {e}");
            return ExitCode::from(2);
        }
    };
    if verbose {
        eprintln!(
            "vaultc: checking project `{manifest}` ({} unit(s)) with {} job(s)",
            units.len(),
            jobs
        );
    }
    let svc = CheckService::new(ServiceConfig {
        jobs,
        cache_capacity: (units.len() * 2).max(1),
        ..Default::default()
    });
    let wire: Vec<UnitIn> = units
        .into_iter()
        .map(|u| UnitIn {
            name: u.name,
            source: u.source,
        })
        .collect();
    let (reports, _) = svc.check_project(wire);
    let summaries: Vec<CheckSummary> = reports.into_iter().map(|r| (*r.summary).clone()).collect();
    render_summaries(&summaries)
}

/// Print each summary's diagnostics and verdict line; exit 1 if any
/// unit is not cleanly accepted.
fn render_summaries(summaries: &[CheckSummary]) -> ExitCode {
    let mut any_rejected = false;
    for summary in summaries {
        print!("{}", summary.render_diagnostics());
        match summary.verdict {
            Verdict::Accepted => println!("{}: accepted", summary.name),
            Verdict::Rejected => {
                println!(
                    "{}: rejected ({} error(s))",
                    summary.name,
                    summary.error_codes().len()
                );
                any_rejected = true;
            }
            // Not a protocol violation, but not a clean bill of health
            // either: the unit exhausted a resource bound or tripped an
            // internal fault, so fail closed.
            Verdict::ResourceLimit | Verdict::InternalError => {
                println!("{}: {}", summary.name, summary.verdict.as_str());
                any_rejected = true;
            }
        }
    }
    if any_rejected {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Check a batch on a running daemon, printing per-unit verdicts in the
/// same shape as the local path. Both transports answer byte-identically;
/// only the connect step differs.
fn check_remote(
    remote: &Remote,
    retries: u32,
    units: Vec<UnitIn>,
    any_unreadable: bool,
) -> ExitCode {
    let policy = RetryPolicy {
        attempts: retries,
        ..Default::default()
    };
    let mut client = match remote {
        Remote::Socket(path) => Client::with_policy(path, policy),
        Remote::Tcp(addr) => Client::tcp_with_policy(addr.clone(), policy),
    };
    let response = match client.check(&units) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "vaultc: daemon at `{}` unreachable after {retries} attempt(s): {e}",
                remote.describe()
            );
            return ExitCode::from(2);
        }
    };
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        let msg = response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed response");
        eprintln!("vaultc: daemon refused the batch: {msg}");
        return ExitCode::from(2);
    }
    let mut any_rejected = false;
    for u in response.get("units").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = u.get("name").and_then(Json::as_str).unwrap_or("<unit>");
        let verdict = u.get("verdict").and_then(Json::as_str).unwrap_or("?");
        if let Some(diags) = u.get("diagnostics").and_then(Json::as_arr) {
            for d in diags {
                if let Some(rendered) = d.get("rendered").and_then(Json::as_str) {
                    print!("{rendered}");
                }
            }
        }
        match verdict {
            "accepted" => println!("{name}: accepted"),
            "rejected" => {
                let errors = u
                    .get("error_codes")
                    .and_then(Json::as_arr)
                    .map_or(0, <[Json]>::len);
                println!("{name}: rejected ({errors} error(s))");
                any_rejected = true;
            }
            other => {
                println!("{name}: {other}");
                any_rejected = true;
            }
        }
    }
    if any_unreadable {
        ExitCode::from(2)
    } else if any_rejected {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn serve(rest: &[String]) -> ExitCode {
    let mut socket: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut config = ServiceConfig::default();
    let mut mux_config = MuxConfig::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(path) => socket = Some(path.clone()),
                None => return usage(),
            },
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => return usage(),
            },
            "--executors" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => mux_config.executors = n,
                _ => return usage(),
            },
            "--jobs" | "-j" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.jobs = n,
                _ => return usage(),
            },
            "--cache" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.cache_capacity = n,
                _ => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => config.cache_dir = Some(dir.into()),
                None => return usage(),
            },
            "--cache-max-bytes" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.cache_max_bytes = Some(n),
                _ => return usage(),
            },
            "--max-request-bytes" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.limits.max_request_bytes = n,
                _ => return usage(),
            },
            "--timeout-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => {
                    config.limits.timeout = Some(std::time::Duration::from_millis(n))
                }
                _ => return usage(),
            },
            "--fuel" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.limits.fixpoint_iters = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let svc = Arc::new(CheckService::new(config));
    if socket.is_none() && listen.is_none() {
        return match vault_server::serve_stdio(&svc) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("vaultc serve: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut mux = MuxServer::new(Arc::clone(&svc), mux_config);
    if let Some(path) = &socket {
        if let Err(e) = mux.bind_unix(path) {
            eprintln!("vaultc: cannot bind `{path}`: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "vaultc serve: listening on {path} ({} worker(s), cache {})",
            svc.workers(),
            svc.cache_capacity()
        );
    }
    if let Some(addr) = &listen {
        match mux.bind_tcp(addr) {
            Ok(local) => eprintln!(
                "vaultc serve: listening on tcp {local} ({} worker(s), cache {})",
                svc.workers(),
                svc.cache_capacity()
            ),
            Err(e) => {
                eprintln!("vaultc: cannot listen on `{addr}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    match mux.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vaultc serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn emit_c(path: &str) -> ExitCode {
    let src = match read(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let result = check_source(path, &src);
    if result.verdict() != Verdict::Accepted {
        eprint!("{}", result.render_diagnostics());
        eprintln!("{path}: {}; not emitting C", result.verdict());
        return ExitCode::from(1);
    }
    print!(
        "{}",
        vault_core::codegen::emit_c(&result.program, &result.elaborated)
    );
    ExitCode::SUCCESS
}

fn dump_cfg(path: &str) -> ExitCode {
    let src = match read(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let result = check_source(path, &src);
    for f in result.program.functions() {
        if f.body.is_some() {
            print!("{}", vault_core::cfg::build_cfg(f).to_dot());
        }
    }
    ExitCode::SUCCESS
}

fn stats(path: &str) -> ExitCode {
    let src = match read(path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let start = std::time::Instant::now();
    let result = check_source(path, &src);
    let wall = start.elapsed();
    println!("{path}: {}", result.verdict());
    println!(
        "checker: {} statements, {} calls, {} join points, {} loop iterations, {} keys",
        result.stats.statements,
        result.stats.calls,
        result.stats.joins,
        result.stats.loop_iterations,
        result.stats.keys_allocated
    );
    println!(
        "flow:    {} snapshots, {} frames copied (copy-on-write), {} micros wall",
        result.stats.snapshots,
        result.stats.frames_copied,
        wall.as_micros()
    );
    println!(
        "phases:  lex {}us, parse {}us, elaborate {}us, lower {}us, check {}us",
        result.stats.lex_micros,
        result.stats.parse_micros,
        result.stats.elaborate_micros,
        result.stats.lower_micros,
        result.stats.check_micros
    );
    let mut blocks = 0usize;
    let mut edges = 0usize;
    let mut fns = 0usize;
    for f in result.program.functions() {
        if f.body.is_some() {
            let cfg = vault_core::cfg::build_cfg(f);
            blocks += cfg.block_count();
            edges += cfg.edge_count();
            fns += 1;
        }
    }
    println!("shape:   {fns} function(s), {blocks} basic blocks, {edges} edges");
    ExitCode::SUCCESS
}

/// Which execution engine `run` uses.
enum Engine {
    /// The `vault-eval` tree-walking interpreter.
    Interp,
    /// The `vault-vm` register-bytecode backend.
    Vm,
}

/// Parse `run` arguments: `--engine interp|vm` and `--fuel N` anywhere
/// around the two positional arguments `<file.vlt> <entry>`.
fn parse_run_args(rest: &[String]) -> Option<(Engine, Option<u64>, String, String)> {
    let mut engine = Engine::Interp;
    let mut fuel: Option<u64> = None;
    let mut positional = Vec::new();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--engine" => match it.next().map(String::as_str) {
                Some("interp") => engine = Engine::Interp,
                Some("vm") => engine = Engine::Vm,
                _ => return None,
            },
            "--fuel" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => fuel = Some(n),
                None => return None,
            },
            flag if flag.starts_with('-') => return None,
            path => positional.push(path.to_string()),
        }
    }
    let [path, entry] = positional.as_slice() else {
        return None;
    };
    Some((engine, fuel, path.clone(), entry.clone()))
}

fn run_cmd(rest: &[String]) -> ExitCode {
    let Some((engine, fuel, path, entry)) = parse_run_args(rest) else {
        return usage();
    };
    let src = match read(&path) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let result = check_source(&path, &src);
    if result.verdict() != Verdict::Accepted {
        eprint!("{}", result.render_diagnostics());
        eprintln!(
            "{path}: {}; refusing to run (pass a protocol-clean program)",
            result.verdict()
        );
        return ExitCode::from(1);
    }
    // Both engines share fault vocabulary, extern table, and fuel
    // accounting — the differential suite in `vault-vm` holds them
    // outcome-identical, so `--engine` only selects speed.
    let out = match engine {
        Engine::Interp => {
            let mut machine =
                vault_eval::Machine::new(&result.program, vault_eval::ExternTable::with_regions());
            if let Some(fuel) = fuel {
                machine.set_fuel(fuel);
            }
            machine.run(&entry, vec![])
        }
        Engine::Vm => {
            let compiled = vault_vm::compile(&result.program);
            let mut vm = vault_vm::Vm::new(&compiled, vault_eval::ExternTable::with_regions());
            if let Some(fuel) = fuel {
                vm.set_fuel(fuel);
            }
            vm.run(&entry, vec![])
        }
    };
    match out.result {
        Ok(v) => {
            println!("{entry} returned {v} ({} fuel)", out.fuel_used);
            if out.leaked_regions > 0 {
                println!("warning: {} region(s) leaked", out.leaked_regions);
            }
            ExitCode::SUCCESS
        }
        // Fuel exhaustion is a resource verdict, not a protocol fault —
        // callers scripting `--fuel` budgets need to tell them apart.
        Err(vault_eval::EvalError::OutOfFuel) => {
            eprintln!("{entry} ran out of fuel after {} step(s)", out.fuel_used);
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("{entry} faulted: {e}");
            ExitCode::from(1)
        }
    }
}

fn explain(code: &str) -> ExitCode {
    match vault_syntax::Code::from_str_code(code) {
        Some(c) => {
            println!("{c}: {}", c.explain());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("vaultc: unknown diagnostic code `{code}`");
            ExitCode::from(2)
        }
    }
}

fn run_corpus(filter: Option<&str>) -> ExitCode {
    let programs = match filter {
        Some(exp) => vault_corpus::programs_for(exp),
        None => vault_corpus::all_programs(),
    };
    if programs.is_empty() {
        eprintln!("vaultc: no corpus programs match");
        return ExitCode::from(2);
    }
    let mut mismatches = 0;
    for p in &programs {
        let r = check_source(p.id, &p.source);
        let got = r.verdict();
        let ok = match &p.expect {
            vault_corpus::Expectation::Accept => got == Verdict::Accepted,
            vault_corpus::Expectation::Reject(codes) => {
                got == Verdict::Rejected && codes.iter().all(|c| r.has_code(*c))
            }
        };
        let mark = if ok { "ok " } else { "MISMATCH" };
        println!(
            "[{mark}] {:4} {:32} {} — {}",
            p.experiment, p.id, got, p.description
        );
        if !ok {
            mismatches += 1;
        }
    }
    println!(
        "corpus: {} program(s), {} mismatch(es)",
        programs.len(),
        mismatches
    );
    if mismatches == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// `vaultc synth`: write a deterministic multi-unit socket project
/// (`vault.toml` + one `.vlt` per unit) for the scaling experiments.
/// `--bug-rate R` seeds a fraction of worker units with one protocol or
/// capability bug each; the seeded ground truth is printed per unit so
/// detection runs can diff against it.
fn synth_cmd(rest: &[String]) -> ExitCode {
    let mut cfg = vault_corpus::synth::ProjectConfig::default();
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Option<usize> {
            match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => Some(n),
                _ => {
                    eprintln!("vaultc: {name} needs a positive integer");
                    None
                }
            }
        };
        match arg.as_str() {
            "--out" | "-o" => match it.next() {
                Some(dir) => out = Some(dir.clone()),
                None => return usage(),
            },
            "--units" => match num("--units") {
                Some(n) => cfg.units = n,
                None => return usage(),
            },
            "--fns-per-unit" => match num("--fns-per-unit") {
                Some(n) => cfg.fns_per_unit = n,
                None => return usage(),
            },
            "--stmts" => match num("--stmts") {
                Some(n) => cfg.stmts_per_fn = n,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => cfg.seed = n,
                None => return usage(),
            },
            "--bug-rate" => match it.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(r) if (0.0..=1.0).contains(&r) => cfg.bug_rate = r,
                _ => {
                    eprintln!("vaultc: --bug-rate needs a number in [0, 1]");
                    return usage();
                }
            },
            _ => return usage(),
        }
    }
    let Some(out) = out else {
        eprintln!("vaultc: synth needs --out DIR");
        return usage();
    };
    let project = vault_corpus::synth::generate_project(&cfg);
    if let Err(e) = project.write_to(std::path::Path::new(&out)) {
        eprintln!("vaultc: cannot write project under `{out}`: {e}");
        return ExitCode::from(2);
    }
    for (unit, bug) in &project.seeded {
        println!(
            "seeded {:12} {:?} (expect {})",
            project.units[*unit].0,
            bug,
            bug.expected_code()
        );
    }
    println!(
        "synth: wrote {} unit(s) + vault.toml under {out} (seed {}, {} seeded bug(s))",
        project.units.len(),
        cfg.seed,
        project.seeded.len()
    );
    ExitCode::SUCCESS
}
