//! Integration tests driving the `vaultc` binary end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn vaultc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vaultc"))
        .args(args)
        .output()
        .expect("vaultc runs")
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("vaultc_test_{}_{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

const GOOD: &str = "type FILE;
stateset FS = [ open < closed ];
tracked(F) FILE fopen(string p) [new F@open];
void fclose(tracked(F) FILE f) [-F];
void ok() {
  tracked(F) FILE f = fopen(\"x\");
  fclose(f);
}";

const LEAKY: &str = "type FILE;
stateset FS = [ open < closed ];
tracked(F) FILE fopen(string p) [new F@open];
void fclose(tracked(F) FILE f) [-F];
void leak() {
  tracked(F) FILE f = fopen(\"x\");
}";

#[test]
fn check_accepts_good_program() {
    let path = write_temp("good.vlt", GOOD);
    let out = vaultc(&["check", path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("accepted"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_rejects_leaky_program_with_code() {
    let path = write_temp("leaky.vlt", LEAKY);
    let out = vaultc(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("V304"), "{stdout}");
    assert!(stdout.contains("rejected"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn emit_c_produces_guard_free_output() {
    let path = write_temp("emit.vlt", GOOD);
    let out = vaultc(&["emit-c", path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FILE* fopen(const char* p)"), "{stdout}");
    assert!(!stdout.contains("tracked"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn emit_c_refuses_rejected_program() {
    let path = write_temp("emit_bad.vlt", LEAKY);
    let out = vaultc(&["emit-c", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not emitting"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn dump_cfg_emits_dot() {
    let path = write_temp("cfg.vlt", GOOD);
    let out = vaultc(&["dump-cfg", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("digraph"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn corpus_subcommand_runs_clean() {
    let out = vaultc(&["corpus", "E1"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 mismatch(es)"), "{stdout}");
}

#[test]
fn corpus_full_run_is_clean() {
    let out = vaultc(&["corpus"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("MISMATCH"), "{stdout}");
}

#[test]
fn stats_reports_shape() {
    let path = write_temp("stats.vlt", GOOD);
    let out = vaultc(&["stats", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("statements"), "{stdout}");
    assert!(stdout.contains("basic blocks"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn explain_describes_codes() {
    let out = vaultc(&["explain", "V301"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("held-key set"), "{stdout}");
    let out = vaultc(&["explain", "V999"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_on_bad_arguments() {
    for args in [&[][..], &["frobnicate"][..], &["check"][..]] {
        let out = vaultc(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    }
}

#[test]
fn run_subcommand_interprets_entry() {
    let path = write_temp(
        "runme.vlt",
        "struct point { int x; int y; }
         int forty_two() {
           tracked(K) point p = new tracked point {x=6; y=7;};
           int r = p.x * p.y;
           free(p);
           return r;
         }",
    );
    let out = vaultc(&["run", path.to_str().unwrap(), "forty_two"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("forty_two returned 42"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn run_subcommand_refuses_rejected_programs() {
    let path = write_temp("runbad.vlt", LEAKY);
    let out = vaultc(&["run", path.to_str().unwrap(), "leak"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("refusing to run"));
    std::fs::remove_file(path).ok();
}

#[test]
fn shipped_vlt_examples_have_documented_verdicts() {
    let base = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/vlt");
    for good in ["regions.vlt", "sockets.vlt", "driver_snippet.vlt"] {
        let out = vaultc(&["check", &format!("{base}/{good}")]);
        assert!(
            out.status.success(),
            "{good}: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
    let out = vaultc(&["check", &format!("{base}/regions_buggy.vlt")]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("V301"), "{stdout}");
    assert!(stdout.contains("V304"), "{stdout}");
}

#[test]
fn missing_file_reports_cleanly() {
    let out = vaultc(&["check", "/nonexistent/nope.vlt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn check_continues_past_unreadable_files() {
    // An unreadable file in the middle of a batch is reported, the
    // remaining files are still checked, and the exit code is 2.
    let good = write_temp("multi_good.vlt", GOOD);
    let leaky = write_temp("multi_leaky.vlt", LEAKY);
    let out = vaultc(&[
        "check",
        good.to_str().unwrap(),
        "/nonexistent/nope.vlt",
        leaky.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(stdout.contains("multi_good.vlt: accepted"), "{stdout}");
    assert!(stdout.contains("multi_leaky.vlt: rejected"), "{stdout}");
    assert!(stdout.contains("V304"), "{stdout}");
    std::fs::remove_file(good).ok();
    std::fs::remove_file(leaky).ok();
}

#[test]
fn check_jobs_output_is_identical_to_sequential() {
    let good = write_temp("jobs_good.vlt", GOOD);
    let leaky = write_temp("jobs_leaky.vlt", LEAKY);
    let paths = [good.to_str().unwrap(), leaky.to_str().unwrap()];
    let sequential = vaultc(&["check", paths[0], paths[1]]);
    let parallel = vaultc(&["check", "--jobs", "4", paths[0], paths[1]]);
    assert_eq!(sequential.status.code(), parallel.status.code());
    assert_eq!(
        String::from_utf8_lossy(&sequential.stdout),
        String::from_utf8_lossy(&parallel.stdout)
    );
    assert_eq!(parallel.status.code(), Some(1));
    std::fs::remove_file(good).ok();
    std::fs::remove_file(leaky).ok();
}

#[test]
fn check_rejects_bad_jobs_flag() {
    let out = vaultc(&["check", "--jobs", "zero", "x.vlt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    let out = vaultc(&["check", "--jobs", "4"]); // flags but no paths
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn serve_stdio_speaks_the_wire_protocol() {
    use std::io::Write as _;
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_vaultc"))
        .args(["serve", "--jobs", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("vaultc serve spawns");
    let mut stdin = child.stdin.take().unwrap();
    // Two checks of the same unit (second must be a cache hit), then
    // status, then EOF ends the session.
    let unit = r#"{"name":"wire.vlt","source":"void f() { }"}"#;
    writeln!(stdin, r#"{{"op":"check","id":1,"units":[{unit}]}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"check","id":2,"units":[{unit}]}}"#).unwrap();
    writeln!(stdin, r#"{{"op":"status","id":3}}"#).unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("vaultc serve exits");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].contains(r#""id":1"#), "{}", lines[0]);
    assert!(lines[0].contains(r#""verdict":"accepted""#));
    assert!(lines[0].contains(r#""cached":false"#));
    assert!(lines[1].contains(r#""cached":true"#), "{}", lines[1]);
    assert!(lines[2].contains(r#""cache_hits":1"#), "{}", lines[2]);
    assert!(lines[2].contains(r#""workers":2"#), "{}", lines[2]);
}

#[test]
fn serve_socket_checks_over_unix_socket() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::os::unix::net::UnixStream;
    use std::process::Stdio;

    let sock = std::env::temp_dir().join(format!("vaultc_serve_{}.sock", std::process::id()));
    let mut child = Command::new(env!("CARGO_BIN_EXE_vaultc"))
        .args(["serve", "--socket", sock.to_str().unwrap(), "--jobs", "2"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("vaultc serve spawns");

    // Wait for the socket to come up.
    let mut stream = None;
    for _ in 0..200 {
        if let Ok(s) = UnixStream::connect(&sock) {
            stream = Some(s);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut stream = stream.expect("daemon socket comes up");
    writeln!(
        stream,
        r#"{{"op":"check","id":1,"units":[{{"name":"s.vlt","source":"void f() {{ }}"}}]}}"#
    )
    .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""verdict":"accepted""#), "{line}");
    writeln!(stream, r#"{{"op":"shutdown"}}"#).unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains(r#""ok":true"#), "{line}");
    // The daemon exits cleanly after shutdown.
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "{status:?}");
    std::fs::remove_file(&sock).ok();
}
