//! The held-key set — the checker's abstraction of the computation's
//! global state at each program point (paper §2.1).
//!
//! A held-key set maps each held key to its current local state. The
//! operations enforce linearity: inserting a key that is already present
//! fails ([`HeldErr::Duplicate`] — the double-acquire error of §4.2), and
//! removing an absent key fails ([`HeldErr::NotHeld`]).

use crate::key::KeyId;
use crate::state::StateVal;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from held-key-set operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeldErr {
    /// The key is already in the set; keys are linear and cannot be
    /// duplicated.
    Duplicate(KeyId),
    /// The key is not in the set.
    NotHeld(KeyId),
}

impl fmt::Display for HeldErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeldErr::Duplicate(k) => write!(f, "key {k} is already in the held-key set"),
            HeldErr::NotHeld(k) => write!(f, "key {k} is not in the held-key set"),
        }
    }
}

impl std::error::Error for HeldErr {}

/// The held-key set at one program point.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeldSet {
    map: BTreeMap<KeyId, StateVal>,
}

impl HeldSet {
    /// The empty held-key set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a key in the given state. Errors if the key is already held.
    pub fn insert(&mut self, key: KeyId, state: StateVal) -> Result<(), HeldErr> {
        match self.map.entry(key) {
            std::collections::btree_map::Entry::Occupied(_) => Err(HeldErr::Duplicate(key)),
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(state);
                Ok(())
            }
        }
    }

    /// Remove a key. Errors if it is not held.
    pub fn remove(&mut self, key: KeyId) -> Result<StateVal, HeldErr> {
        self.map.remove(&key).ok_or(HeldErr::NotHeld(key))
    }

    /// Current state of a held key.
    pub fn get(&self, key: KeyId) -> Option<StateVal> {
        self.map.get(&key).copied()
    }

    /// Whether the key is held.
    pub fn holds(&self, key: KeyId) -> bool {
        self.map.contains_key(&key)
    }

    /// Change the state of a held key. Errors if it is not held.
    pub fn set_state(&mut self, key: KeyId, state: StateVal) -> Result<(), HeldErr> {
        match self.map.get_mut(&key) {
            Some(s) => {
                *s = state;
                Ok(())
            }
            None => Err(HeldErr::NotHeld(key)),
        }
    }

    /// Iterate over `(key, state)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (KeyId, StateVal)> + '_ {
        self.map.iter().map(|(&k, &s)| (k, s))
    }

    /// All held keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = KeyId> + '_ {
        self.map.keys().copied()
    }

    /// Number of held keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply a key renaming. Keys not in `rename` keep their ids. Errors
    /// with [`HeldErr::Duplicate`] if the renaming would merge two keys —
    /// renamings must be injective on the held set.
    pub fn rename(&self, rename: &BTreeMap<KeyId, KeyId>) -> Result<HeldSet, HeldErr> {
        let mut out = HeldSet::new();
        for (k, s) in self.iter() {
            let nk = rename.get(&k).copied().unwrap_or(k);
            out.insert(nk, s)?;
        }
        Ok(out)
    }

    /// Render for diagnostics, e.g. `{k0@open, k3}`.
    pub fn display(&self, states: &crate::state::StateTable) -> String {
        let items: Vec<String> = self
            .iter()
            .map(|(k, s)| {
                if s == StateVal::DEFAULT {
                    format!("{k}")
                } else {
                    format!("{k}@{}", s.display(states))
                }
            })
            .collect();
        format!("{{{}}}", items.join(", "))
    }
}

impl FromIterator<(KeyId, StateVal)> for HeldSet {
    fn from_iter<T: IntoIterator<Item = (KeyId, StateVal)>>(iter: T) -> Self {
        let mut s = HeldSet::new();
        for (k, v) in iter {
            // FromIterator is used for test fixtures; last write wins.
            s.map.insert(k, v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{StateId, StateTable};

    const S1: StateVal = StateVal::Token(StateId(1));

    #[test]
    fn insert_remove_roundtrip() {
        let mut h = HeldSet::new();
        h.insert(KeyId(0), StateVal::DEFAULT).unwrap();
        assert!(h.holds(KeyId(0)));
        assert_eq!(h.remove(KeyId(0)), Ok(StateVal::DEFAULT));
        assert!(!h.holds(KeyId(0)));
        assert!(h.is_empty());
    }

    #[test]
    fn duplicate_insert_fails() {
        let mut h = HeldSet::new();
        h.insert(KeyId(1), StateVal::DEFAULT).unwrap();
        assert_eq!(h.insert(KeyId(1), S1), Err(HeldErr::Duplicate(KeyId(1))));
        // Original state is preserved.
        assert_eq!(h.get(KeyId(1)), Some(StateVal::DEFAULT));
    }

    #[test]
    fn remove_absent_fails() {
        let mut h = HeldSet::new();
        assert_eq!(h.remove(KeyId(7)), Err(HeldErr::NotHeld(KeyId(7))));
    }

    #[test]
    fn set_state_transitions() {
        let mut h = HeldSet::new();
        h.insert(KeyId(2), StateVal::DEFAULT).unwrap();
        h.set_state(KeyId(2), S1).unwrap();
        assert_eq!(h.get(KeyId(2)), Some(S1));
        assert_eq!(h.set_state(KeyId(9), S1), Err(HeldErr::NotHeld(KeyId(9))));
    }

    #[test]
    fn rename_is_checked_injective() {
        let mut h = HeldSet::new();
        h.insert(KeyId(0), StateVal::DEFAULT).unwrap();
        h.insert(KeyId(1), S1).unwrap();
        let ok: BTreeMap<_, _> = [(KeyId(0), KeyId(5))].into_iter().collect();
        let renamed = h.rename(&ok).unwrap();
        assert!(renamed.holds(KeyId(5)));
        assert!(renamed.holds(KeyId(1)));
        let merge: BTreeMap<_, _> = [(KeyId(0), KeyId(1))].into_iter().collect();
        assert_eq!(h.rename(&merge), Err(HeldErr::Duplicate(KeyId(1))));
    }

    #[test]
    fn display_elides_default_state() {
        let t = StateTable::new();
        let mut h = HeldSet::new();
        h.insert(KeyId(0), StateVal::DEFAULT).unwrap();
        assert_eq!(h.display(&t), "{k0}");
    }

    #[test]
    fn iteration_is_ordered() {
        let mut h = HeldSet::new();
        h.insert(KeyId(3), StateVal::DEFAULT).unwrap();
        h.insert(KeyId(1), StateVal::DEFAULT).unwrap();
        h.insert(KeyId(2), StateVal::DEFAULT).unwrap();
        let keys: Vec<_> = h.keys().collect();
        assert_eq!(keys, vec![KeyId(1), KeyId(2), KeyId(3)]);
    }
}
