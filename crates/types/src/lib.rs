//! # vault-types
//!
//! The internal type language of the Vault reproduction (paper Fig. 6,
//! *Enforcing High-Level Protocols in Low-Level Software*, DeLine &
//! Fähndrich, PLDI 2001), together with the held-key set that the checker
//! propagates through each function's control-flow graph.
//!
//! Main pieces:
//!
//! * [`StateTable`] / [`StateVal`] / [`StateReq`] — key states and
//!   statesets (declared partial orders, §4.4);
//! * [`KeyId`] / [`KeyRef`] / [`KeyGen`] — linear compile-time keys;
//! * [`HeldSet`] — the held-key set with linearity-enforcing operations;
//! * [`Ty`] / [`FnSig`] / [`World`] — singleton, guarded, existential,
//!   and function types plus the declaration tables;
//! * [`unify()`] / [`subst_ty`] / [`ty_eq_mod_keys`] — call-site
//!   instantiation and the join-point key abstraction.
//!
//! ## Example
//!
//! ```
//! use vault_types::{HeldSet, HeldErr, KeyId, StateVal};
//!
//! let mut held = HeldSet::new();
//! held.insert(KeyId(0), StateVal::DEFAULT)?;
//! // Keys are linear: a second insert is the double-acquire error.
//! assert_eq!(
//!     held.insert(KeyId(0), StateVal::DEFAULT),
//!     Err(HeldErr::Duplicate(KeyId(0))),
//! );
//! # Ok::<(), vault_types::HeldErr>(())
//! ```

#![warn(missing_docs)]

pub mod heldset;
pub mod key;
pub mod state;
pub mod ty;
pub mod unify;

pub use heldset::{HeldErr, HeldSet};
// Interning moved into `vault-syntax` so the lexer can intern at lex
// time (the zero-copy front end); re-exported here so the checker's
// existing `vault_types::{Interner, Symbol}` imports keep working.
pub use key::{KeyGen, KeyId, KeyInfo, KeyOrigin, KeyRef};
pub use state::{StateId, StateReq, StateTable, StateVal, StatesetError, StatesetId};
pub use ty::{
    AbstractDef, Arg, CtorDef, EffItem, FnSig, GlobalKey, GuardAtom, ParamKind, StateArg,
    StructDef, Ty, TypeDef, TypeId, VariantDef, World,
};
pub use unify::{subst_state, subst_ty, ty_eq_mod_keys, unify, Bindings, UnifyErr};
pub use vault_syntax::intern::{FnvBuildHasher, Interner, Symbol};
