//! The internal type language (paper Fig. 6) and the declaration tables.
//!
//! Correspondence with the paper:
//!
//! * `tracked(K) T`  →  [`Ty::Tracked`] — the singleton type `s(ρ)`;
//! * `tracked T`     →  [`Ty::TrackedAnon`] — the existential
//!   `∃[ρ | {ρ@τ}]. s(ρ)`;
//! * `C : T`         →  [`Ty::Guarded`] — the guarded type `C ▷ τ`;
//! * function types  →  [`FnSig`] — `(C, σ) → (C′, σ′)` with the pre/post
//!   key sets expressed as a list of [`EffItem`]s over key variables;
//! * variants        →  [`VariantDef`]; constructor-scoped key variables
//!   ([`CtorDef::exist_keys`]) are the existentially bound names that make
//!   collections "anonymizing" (paper §2.4).

use crate::key::{KeyId, KeyRef};
use crate::state::{StateId, StateReq, StateTable, StateVal, StatesetId};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a named type (struct/variant/abstract) in a [`World`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

/// An internal type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ty {
    /// `void`
    Void,
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `byte`
    Byte,
    /// `string`
    Str,
    /// Placeholder after an error, to suppress cascading diagnostics.
    Error,
    /// An instantiated named type.
    Named {
        /// Which declaration.
        id: TypeId,
        /// Instantiation arguments, matching the declaration's parameters.
        args: Vec<Arg>,
    },
    /// `T[]`
    Array(Box<Ty>),
    /// `(T1, ..., Tn)`
    Tuple(Vec<Ty>),
    /// The singleton type `s(ρ)`: a handle to the unique resource named by
    /// the key, remembering the underlying resource type.
    Tracked {
        /// The key (a variable in signatures, concrete during checking).
        key: KeyRef,
        /// The resource type.
        inner: Box<Ty>,
    },
    /// Anonymous tracked type: `∃[ρ | {ρ@τ}]. s(ρ)`.
    TrackedAnon(Box<Ty>),
    /// Guarded type `C ▷ τ`: access requires every guard atom to hold.
    Guarded {
        /// The guard conjunction.
        guards: Vec<GuardAtom>,
        /// The guarded type.
        inner: Box<Ty>,
    },
    /// A function type (completion routines, §4.3).
    Fn(Box<FnSig>),
    /// A type variable from a `<type T>` parameter.
    Var(String),
}

impl Ty {
    /// Boxed convenience constructor for [`Ty::Tracked`].
    pub fn tracked(key: KeyRef, inner: Ty) -> Ty {
        Ty::Tracked {
            key,
            inner: Box::new(inner),
        }
    }

    /// Boxed convenience constructor for [`Ty::Guarded`].
    pub fn guarded(guards: Vec<GuardAtom>, inner: Ty) -> Ty {
        Ty::Guarded {
            guards,
            inner: Box::new(inner),
        }
    }

    /// Whether this is the error type.
    pub fn is_error(&self) -> bool {
        matches!(self, Ty::Error)
    }

    /// Collect every concrete key mentioned in the type (tracking keys,
    /// guard keys, and key arguments of named types).
    pub fn concrete_keys(&self, out: &mut Vec<KeyId>) {
        match self {
            Ty::Tracked { key, inner } => {
                if let KeyRef::Id(k) = key {
                    out.push(*k);
                }
                inner.concrete_keys(out);
            }
            Ty::TrackedAnon(inner) => inner.concrete_keys(out),
            Ty::Guarded { guards, inner } => {
                for g in guards {
                    if let KeyRef::Id(k) = &g.key {
                        out.push(*k);
                    }
                }
                inner.concrete_keys(out);
            }
            Ty::Named { args, .. } => {
                for a in args {
                    match a {
                        Arg::Ty(t) => t.concrete_keys(out),
                        Arg::Key(KeyRef::Id(k)) => out.push(*k),
                        Arg::Key(KeyRef::Var(_)) | Arg::State(_) => {}
                    }
                }
            }
            Ty::Array(t) => t.concrete_keys(out),
            Ty::Tuple(ts) => {
                for t in ts {
                    t.concrete_keys(out);
                }
            }
            Ty::Fn(_)
            | Ty::Void
            | Ty::Int
            | Ty::Bool
            | Ty::Byte
            | Ty::Str
            | Ty::Error
            | Ty::Var(_) => {}
        }
    }

    /// Human-readable rendering against a world's tables.
    pub fn display(&self, world: &World) -> String {
        match self {
            Ty::Void => "void".into(),
            Ty::Int => "int".into(),
            Ty::Bool => "bool".into(),
            Ty::Byte => "byte".into(),
            Ty::Str => "string".into(),
            Ty::Error => "<error>".into(),
            Ty::Var(v) => v.clone(),
            Ty::Named { id, args } => {
                let name = world.type_name(*id);
                if args.is_empty() {
                    name.to_string()
                } else {
                    let args: Vec<String> = args.iter().map(|a| a.display(world)).collect();
                    format!("{name}<{}>", args.join(", "))
                }
            }
            Ty::Array(t) => format!("{}[]", t.display(world)),
            Ty::Tuple(ts) => {
                let items: Vec<String> = ts.iter().map(|t| t.display(world)).collect();
                format!("({})", items.join(", "))
            }
            Ty::Tracked { key, inner } => {
                format!("tracked({key}) {}", inner.display(world))
            }
            Ty::TrackedAnon(inner) => format!("tracked {}", inner.display(world)),
            Ty::Guarded { guards, inner } => {
                let gs: Vec<String> = guards.iter().map(|g| g.display(&world.states)).collect();
                format!("{}:{}", gs.join(","), inner.display(world))
            }
            Ty::Fn(sig) => {
                let params: Vec<String> = sig.params.iter().map(|p| p.display(world)).collect();
                format!("{} fn({})", sig.ret.display(world), params.join(", "))
            }
        }
    }
}

/// One atom of a guard conjunction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardAtom {
    /// The guarding key.
    pub key: KeyRef,
    /// The state the key must be in.
    pub req: StateReq,
}

impl GuardAtom {
    /// Render for diagnostics.
    pub fn display(&self, states: &StateTable) -> String {
        match &self.req {
            StateReq::Any => format!("{}", self.key),
            StateReq::Exact(s) => format!("{}@{}", self.key, states.state_name(*s)),
            StateReq::AtMost { var, bound } => {
                let v = var.as_deref().unwrap_or("_");
                format!("{}@({} <= {})", self.key, v, states.state_name(*bound))
            }
            StateReq::Var(v) => format!("{}@{}", self.key, v),
        }
    }
}

/// An argument in a named-type instantiation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Arg {
    /// A type argument.
    Ty(Ty),
    /// A key argument.
    Key(KeyRef),
    /// A state argument.
    State(StateArg),
}

impl Arg {
    /// Render for diagnostics.
    pub fn display(&self, world: &World) -> String {
        match self {
            Arg::Ty(t) => t.display(world),
            Arg::Key(k) => k.to_string(),
            Arg::State(s) => s.display(&world.states),
        }
    }
}

/// A state argument in a type or effect postcondition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateArg {
    /// A concrete state token.
    Token(StateId),
    /// A state variable, resolved during instantiation.
    Var(String),
    /// An already-instantiated state value (checker-internal).
    Val(StateVal),
}

impl StateArg {
    /// Render for diagnostics.
    pub fn display(&self, states: &StateTable) -> String {
        match self {
            StateArg::Token(t) => states.state_name(*t).to_string(),
            StateArg::Var(v) => v.clone(),
            StateArg::Val(v) => v.display(states),
        }
    }
}

/// One item of an internal effect clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EffItem {
    /// Key held before and after, possibly changing state.
    Keep {
        /// The key.
        key: KeyRef,
        /// Required entry state.
        from: StateReq,
        /// Exit state; `None` keeps the entry state.
        to: Option<StateArg>,
    },
    /// Key held before, consumed.
    Consume {
        /// The key.
        key: KeyRef,
        /// Required entry state.
        from: StateReq,
    },
    /// Key not held before, held after (`[+K]`, e.g. `KeWaitEvent`).
    Produce {
        /// The key.
        key: KeyRef,
        /// State produced in.
        state: StateArg,
    },
    /// A fresh key held on return (`[new K]`).
    Fresh {
        /// The key variable bound in the signature scope.
        var: String,
        /// State created in.
        state: StateArg,
    },
}

impl EffItem {
    /// The key variable or id this item concerns (fresh items return their
    /// variable as a `KeyRef::Var`).
    pub fn key(&self) -> KeyRef {
        match self {
            EffItem::Keep { key, .. }
            | EffItem::Consume { key, .. }
            | EffItem::Produce { key, .. } => key.clone(),
            EffItem::Fresh { var, .. } => KeyRef::Var(var.clone()),
        }
    }
}

/// An internal function signature: `(C, σ) → (C′, σ′)` with key/state/type
/// polymorphism implicit in the variables it mentions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnSig {
    /// Function name (for diagnostics).
    pub name: String,
    /// Parameter types, over key/state/type variables.
    pub params: Vec<Ty>,
    /// Parameter names (if declared).
    pub param_names: Vec<Option<String>>,
    /// Return type.
    pub ret: Ty,
    /// The effect clause.
    pub effect: Vec<EffItem>,
    /// Declared capability set (`uses` items, sorted, deduplicated).
    /// Empty means the function opts out of the capability discipline:
    /// it imposes no requirement on callers and incurs none itself.
    pub caps: Vec<String>,
    /// Declared `<type T>` parameters.
    pub ty_params: Vec<String>,
}

/// Kinds of parameters a named type declares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// `type T`
    Type(String),
    /// `key K`
    Key(String),
    /// `state S` with optional bound
    State {
        /// The variable name.
        name: String,
        /// Optional inclusive upper bound.
        bound: Option<StateId>,
    },
}

impl ParamKind {
    /// The parameter name.
    pub fn name(&self) -> &str {
        match self {
            ParamKind::Type(n) | ParamKind::Key(n) => n,
            ParamKind::State { name, .. } => name,
        }
    }
}

/// A struct declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructDef {
    /// The struct name.
    pub name: String,
    /// Declared parameters.
    pub params: Vec<ParamKind>,
    /// Fields: name and type (over the parameters).
    pub fields: Vec<(String, Ty)>,
}

/// One constructor of a variant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtorDef {
    /// Constructor name, without the tick.
    pub name: String,
    /// Existentially bound, constructor-scoped key variables appearing in
    /// `args` (these make collection elements anonymous — paper §2.4).
    pub exist_keys: Vec<String>,
    /// Argument types, over the variant's parameters plus `exist_keys`.
    pub args: Vec<Ty>,
    /// Captured keys: each names a *key parameter* of the variant together
    /// with the state it is captured/restored in (`'Ok {K@named}`).
    pub captures: Vec<(String, StateReq)>,
}

/// A variant (algebraic data type) declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VariantDef {
    /// The variant type name.
    pub name: String,
    /// Declared parameters.
    pub params: Vec<ParamKind>,
    /// Constructors.
    pub ctors: Vec<CtorDef>,
}

impl VariantDef {
    /// Whether values of this variant carry keys and therefore must be
    /// tracked themselves (paper §2.1: "the opt_key type of the flag
    /// variable is itself tracked").
    pub fn is_keyed(&self) -> bool {
        self.ctors.iter().any(|c| {
            !c.captures.is_empty() || !c.exist_keys.is_empty() || c.args.iter().any(ty_carries_keys)
        })
    }

    /// Find a constructor by name.
    pub fn ctor(&self, name: &str) -> Option<(usize, &CtorDef)> {
        self.ctors.iter().enumerate().find(|(_, c)| c.name == name)
    }
}

/// Whether values of this type carry keys with them (tracked values and
/// tuples/arrays containing them).
pub fn ty_carries_keys(t: &Ty) -> bool {
    match t {
        Ty::Tracked { .. } | Ty::TrackedAnon(_) => true,
        Ty::Tuple(ts) => ts.iter().any(ty_carries_keys),
        Ty::Array(inner) => ty_carries_keys(inner),
        _ => false,
    }
}

/// An abstract type declaration (representation private to its module).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbstractDef {
    /// The type name.
    pub name: String,
    /// Declared parameters.
    pub params: Vec<ParamKind>,
}

/// Any named type declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeDef {
    /// A struct.
    Struct(StructDef),
    /// A variant.
    Variant(VariantDef),
    /// An abstract type.
    Abstract(AbstractDef),
}

impl TypeDef {
    /// The declared name.
    pub fn name(&self) -> &str {
        match self {
            TypeDef::Struct(s) => &s.name,
            TypeDef::Variant(v) => &v.name,
            TypeDef::Abstract(a) => &a.name,
        }
    }

    /// The declared parameters.
    pub fn params(&self) -> &[ParamKind] {
        match self {
            TypeDef::Struct(s) => &s.params,
            TypeDef::Variant(v) => &v.params,
            TypeDef::Abstract(a) => &a.params,
        }
    }
}

/// A global key declaration (e.g. `IRQL`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalKey {
    /// The key's fixed id.
    pub id: KeyId,
    /// Its stateset.
    pub stateset: StatesetId,
}

/// The elaborated program: every table the checker consults.
#[derive(Clone, Debug, Default)]
pub struct World {
    /// State tokens and statesets.
    pub states: StateTable,
    types: Vec<TypeDef>,
    types_by_name: BTreeMap<String, TypeId>,
    fns: BTreeMap<String, FnSig>,
    ctors: BTreeMap<String, (TypeId, usize)>,
    globals: BTreeMap<String, GlobalKey>,
}

impl World {
    /// An empty world with the trivial stateset.
    pub fn new() -> Self {
        World {
            states: StateTable::new(),
            ..Default::default()
        }
    }

    /// Register a named type. Returns `None` if the name is taken.
    pub fn add_type(&mut self, def: TypeDef) -> Option<TypeId> {
        let name = def.name().to_string();
        if self.types_by_name.contains_key(&name) {
            return None;
        }
        let id = TypeId(self.types.len() as u32);
        if let TypeDef::Variant(v) = &def {
            for (i, c) in v.ctors.iter().enumerate() {
                self.ctors.insert(c.name.clone(), (id, i));
            }
        }
        self.types.push(def);
        self.types_by_name.insert(name, id);
        Some(id)
    }

    /// Replace a previously added type definition (used to patch forward
    /// references during elaboration).
    pub fn replace_type(&mut self, id: TypeId, def: TypeDef) {
        debug_assert_eq!(self.types[id.0 as usize].name(), def.name());
        if let TypeDef::Variant(v) = &def {
            for (i, c) in v.ctors.iter().enumerate() {
                self.ctors.insert(c.name.clone(), (id, i));
            }
        }
        self.types[id.0 as usize] = def;
    }

    /// Look up a type by name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.types_by_name.get(name).copied()
    }

    /// The definition behind an id.
    pub fn typedef(&self, id: TypeId) -> &TypeDef {
        &self.types[id.0 as usize]
    }

    /// The name behind an id.
    pub fn type_name(&self, id: TypeId) -> &str {
        self.types[id.0 as usize].name()
    }

    /// Number of named types.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Register a function signature. Returns false if the name is taken.
    pub fn add_fn(&mut self, sig: FnSig) -> bool {
        if self.fns.contains_key(&sig.name) {
            return false;
        }
        self.fns.insert(sig.name.clone(), sig);
        true
    }

    /// Look up a function signature by (unqualified) name.
    pub fn fn_sig(&self, name: &str) -> Option<&FnSig> {
        self.fns.get(name)
    }

    /// Iterate all function signatures.
    pub fn fns(&self) -> impl Iterator<Item = &FnSig> {
        self.fns.values()
    }

    /// Find a constructor by name: the owning variant and ctor index.
    pub fn ctor(&self, name: &str) -> Option<(TypeId, usize)> {
        self.ctors.get(name).copied()
    }

    /// Register a global key.
    pub fn add_global_key(&mut self, name: &str, key: GlobalKey) -> bool {
        if self.globals.contains_key(name) {
            return false;
        }
        self.globals.insert(name.to_string(), key);
        true
    }

    /// Look up a global key by name.
    pub fn global_key(&self, name: &str) -> Option<&GlobalKey> {
        self.globals.get(name)
    }

    /// Iterate over global keys.
    pub fn global_keys(&self) -> impl Iterator<Item = (&str, &GlobalKey)> {
        self.globals.iter().map(|(n, g)| (n.as_str(), g))
    }

    /// Reverse lookup: the name of a global key id, if it is one.
    pub fn global_key_name(&self, id: KeyId) -> Option<&str> {
        self.globals
            .iter()
            .find(|(_, g)| g.id == id)
            .map(|(n, _)| n.as_str())
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_world() -> World {
        let mut w = World::new();
        w.add_type(TypeDef::Abstract(AbstractDef {
            name: "region".into(),
            params: vec![],
        }))
        .unwrap();
        w.add_type(TypeDef::Struct(StructDef {
            name: "point".into(),
            params: vec![],
            fields: vec![("x".into(), Ty::Int), ("y".into(), Ty::Int)],
        }))
        .unwrap();
        w.add_type(TypeDef::Variant(VariantDef {
            name: "opt_key".into(),
            params: vec![ParamKind::Key("K".into())],
            ctors: vec![
                CtorDef {
                    name: "NoKey".into(),
                    exist_keys: vec![],
                    args: vec![],
                    captures: vec![],
                },
                CtorDef {
                    name: "SomeKey".into(),
                    exist_keys: vec![],
                    args: vec![],
                    captures: vec![("K".into(), StateReq::Any)],
                },
            ],
        }))
        .unwrap();
        w
    }

    #[test]
    fn type_registration_and_lookup() {
        let w = sample_world();
        let region = w.type_id("region").unwrap();
        assert_eq!(w.type_name(region), "region");
        assert!(w.type_id("nope").is_none());
        assert_eq!(w.type_count(), 3);
    }

    #[test]
    fn duplicate_type_rejected() {
        let mut w = sample_world();
        assert!(w
            .add_type(TypeDef::Abstract(AbstractDef {
                name: "region".into(),
                params: vec![],
            }))
            .is_none());
    }

    #[test]
    fn ctor_lookup_finds_variant() {
        let w = sample_world();
        let (vid, idx) = w.ctor("SomeKey").unwrap();
        assert_eq!(w.type_name(vid), "opt_key");
        assert_eq!(idx, 1);
        assert!(w.ctor("Bogus").is_none());
    }

    #[test]
    fn keyed_variant_detection() {
        let w = sample_world();
        let TypeDef::Variant(v) = w.typedef(w.type_id("opt_key").unwrap()) else {
            panic!()
        };
        assert!(v.is_keyed());
        let plain = VariantDef {
            name: "domain".into(),
            params: vec![],
            ctors: vec![
                CtorDef {
                    name: "UNIX".into(),
                    exist_keys: vec![],
                    args: vec![],
                    captures: vec![],
                },
                CtorDef {
                    name: "INET".into(),
                    exist_keys: vec![],
                    args: vec![],
                    captures: vec![],
                },
            ],
        };
        assert!(!plain.is_keyed());
        let anon_carrying = VariantDef {
            name: "reglist".into(),
            params: vec![],
            ctors: vec![CtorDef {
                name: "Cons".into(),
                exist_keys: vec![],
                args: vec![Ty::TrackedAnon(Box::new(Ty::Var("r".into())))],
                captures: vec![],
            }],
        };
        assert!(anon_carrying.is_keyed());
    }

    #[test]
    fn concrete_keys_collects_all_positions() {
        let w = sample_world();
        let point = w.type_id("point").unwrap();
        let t = Ty::Tuple(vec![
            Ty::tracked(
                KeyRef::Id(KeyId(1)),
                Ty::Named {
                    id: point,
                    args: vec![],
                },
            ),
            Ty::guarded(
                vec![GuardAtom {
                    key: KeyRef::Id(KeyId(2)),
                    req: StateReq::Any,
                }],
                Ty::Int,
            ),
            Ty::Named {
                id: point,
                args: vec![Arg::Key(KeyRef::Id(KeyId(3)))],
            },
        ]);
        let mut keys = Vec::new();
        t.concrete_keys(&mut keys);
        assert_eq!(keys, vec![KeyId(1), KeyId(2), KeyId(3)]);
    }

    #[test]
    fn display_formats() {
        let w = sample_world();
        let point = w.type_id("point").unwrap();
        let t = Ty::tracked(
            KeyRef::var("R"),
            Ty::Named {
                id: point,
                args: vec![],
            },
        );
        assert_eq!(t.display(&w), "tracked(R) point");
        let g = Ty::guarded(
            vec![GuardAtom {
                key: KeyRef::var("R"),
                req: StateReq::Any,
            }],
            Ty::Int,
        );
        assert_eq!(g.display(&w), "R:int");
    }

    #[test]
    fn global_keys_roundtrip() {
        let mut w = sample_world();
        assert!(w.add_global_key(
            "IRQL",
            GlobalKey {
                id: KeyId(100),
                stateset: StateTable::DEFAULT_SET,
            }
        ));
        assert!(!w.add_global_key(
            "IRQL",
            GlobalKey {
                id: KeyId(101),
                stateset: StateTable::DEFAULT_SET,
            }
        ));
        assert_eq!(w.global_key("IRQL").unwrap().id, KeyId(100));
        assert_eq!(w.global_key_name(KeyId(100)), Some("IRQL"));
        assert_eq!(w.global_key_name(KeyId(5)), None);
    }

    #[test]
    fn fn_registration() {
        let mut w = sample_world();
        let sig = FnSig {
            name: "create".into(),
            params: vec![],
            param_names: vec![],
            ret: Ty::Void,
            effect: vec![],
            caps: vec![],
            ty_params: vec![],
        };
        assert!(w.add_fn(sig.clone()));
        assert!(!w.add_fn(sig));
        assert!(w.fn_sig("create").is_some());
        assert_eq!(w.fns().count(), 1);
    }
}
