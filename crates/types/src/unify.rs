//! Instantiation and matching of polymorphic signatures.
//!
//! Vault functions are polymorphic in the keys of their arguments, in key
//! states, and in the rest of the held-key set (paper §3.2). At each call
//! the checker *unifies* declared parameter types against actual argument
//! types to discover the key/state/type bindings, then applies the effect
//! clause under those bindings.

use crate::key::{KeyId, KeyRef};
use crate::state::StateVal;
use crate::ty::{Arg, FnSig, GuardAtom, StateArg, Ty, World};
use crate::StateReq;
use std::collections::BTreeMap;
use std::fmt;

/// Accumulated variable bindings from unification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings {
    /// Key variable → concrete key.
    pub keys: BTreeMap<String, KeyId>,
    /// State variable → state value.
    pub states: BTreeMap<String, StateVal>,
    /// Type variable → type.
    pub tys: BTreeMap<String, Ty>,
}

impl Bindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a key variable; errors if already bound to a different key.
    pub fn bind_key(&mut self, var: &str, key: KeyId) -> Result<(), UnifyErr> {
        match self.keys.get(var) {
            Some(&k) if k != key => Err(UnifyErr::KeyConflict {
                var: var.to_string(),
                first: k,
                second: key,
            }),
            _ => {
                self.keys.insert(var.to_string(), key);
                Ok(())
            }
        }
    }

    /// Bind a state variable; errors on conflicting rebinding.
    pub fn bind_state(&mut self, var: &str, val: StateVal) -> Result<(), UnifyErr> {
        match self.states.get(var) {
            Some(v) if *v != val => Err(UnifyErr::StateConflict(var.to_string())),
            _ => {
                self.states.insert(var.to_string(), val);
                Ok(())
            }
        }
    }

    /// Bind a type variable; errors if already bound to a different type.
    pub fn bind_ty(&mut self, var: &str, ty: Ty) -> Result<(), UnifyErr> {
        match self.tys.get(var) {
            Some(t) if *t != ty => Err(UnifyErr::TyConflict(var.to_string())),
            _ => {
                self.tys.insert(var.to_string(), ty);
                Ok(())
            }
        }
    }

    /// Resolve a key reference under these bindings.
    pub fn key(&self, k: &KeyRef) -> Option<KeyId> {
        match k {
            KeyRef::Id(id) => Some(*id),
            KeyRef::Var(v) => self.keys.get(v).copied(),
        }
    }
}

/// Unification failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnifyErr {
    /// Structural mismatch between declared and actual type.
    Mismatch {
        /// Rendering of the declared type.
        expected: String,
        /// Rendering of the actual type.
        found: String,
    },
    /// One key variable matched two different keys.
    KeyConflict {
        /// The variable.
        var: String,
        /// First key it matched.
        first: KeyId,
        /// Conflicting key.
        second: KeyId,
    },
    /// One state variable matched two different states.
    StateConflict(String),
    /// One type variable matched two different types.
    TyConflict(String),
    /// A variable remained unresolved when instantiating.
    Unresolved(String),
}

impl fmt::Display for UnifyErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnifyErr::Mismatch { expected, found } => {
                write!(f, "expected `{expected}`, found `{found}`")
            }
            UnifyErr::KeyConflict { var, first, second } => write!(
                f,
                "key variable `{var}` matched two distinct keys ({first} and {second})"
            ),
            UnifyErr::StateConflict(v) => {
                write!(f, "state variable `{v}` matched two different states")
            }
            UnifyErr::TyConflict(v) => {
                write!(f, "type variable `{v}` matched two different types")
            }
            UnifyErr::Unresolved(v) => write!(f, "variable `{v}` was not determined by the call"),
        }
    }
}

impl std::error::Error for UnifyErr {}

/// Unify a declared (polymorphic) type against an actual (concrete) type,
/// extending `binds`.
pub fn unify(decl: &Ty, actual: &Ty, binds: &mut Bindings, world: &World) -> Result<(), UnifyErr> {
    // Errors flow through silently so one bad expression doesn't cascade.
    if decl.is_error() || actual.is_error() {
        return Ok(());
    }
    match (decl, actual) {
        (Ty::Var(v), t) => binds.bind_ty(v, t.clone()),
        (Ty::Void, Ty::Void)
        | (Ty::Int, Ty::Int)
        | (Ty::Bool, Ty::Bool)
        | (Ty::Byte, Ty::Byte)
        | (Ty::Str, Ty::Str) => Ok(()),
        // byte/int interchange keeps driver buffer code simple.
        (Ty::Byte, Ty::Int) | (Ty::Int, Ty::Byte) => Ok(()),
        (Ty::Array(d), Ty::Array(a)) => unify(d, a, binds, world),
        (Ty::Tuple(ds), Ty::Tuple(as_)) if ds.len() == as_.len() => {
            for (d, a) in ds.iter().zip(as_) {
                unify(d, a, binds, world)?;
            }
            Ok(())
        }
        (Ty::Tracked { key: dk, inner: di }, Ty::Tracked { key: ak, inner: ai }) => {
            unify_key(dk, ak, binds, world, actual)?;
            unify(di, ai, binds, world)
        }
        // An anonymous tracked parameter accepts any tracked value: the
        // key is packed away (the checker consumes it separately).
        (Ty::TrackedAnon(di), Ty::Tracked { inner: ai, .. }) => unify(di, ai, binds, world),
        (Ty::TrackedAnon(di), Ty::TrackedAnon(ai)) => unify(di, ai, binds, world),
        (
            Ty::Guarded {
                guards: dg,
                inner: di,
            },
            Ty::Guarded {
                guards: ag,
                inner: ai,
            },
        ) if dg.len() == ag.len() => {
            for (d, a) in dg.iter().zip(ag) {
                unify_guard(d, a, binds, world, actual)?;
            }
            unify(di, ai, binds, world)
        }
        (Ty::Named { id: did, args: da }, Ty::Named { id: aid, args: aa })
            if did == aid && da.len() == aa.len() =>
        {
            for (d, a) in da.iter().zip(aa) {
                unify_arg(d, a, binds, world, decl, actual)?;
            }
            Ok(())
        }
        (Ty::Fn(d), Ty::Fn(a)) => unify_fn(d, a, binds, world),
        _ => Err(mismatch(decl, actual, world)),
    }
}

fn mismatch(decl: &Ty, actual: &Ty, world: &World) -> UnifyErr {
    UnifyErr::Mismatch {
        expected: decl.display(world),
        found: actual.display(world),
    }
}

fn unify_key(
    decl: &KeyRef,
    actual: &KeyRef,
    binds: &mut Bindings,
    world: &World,
    actual_ty: &Ty,
) -> Result<(), UnifyErr> {
    match (decl, actual) {
        (KeyRef::Var(v), KeyRef::Id(k)) => binds.bind_key(v, *k),
        (KeyRef::Id(a), KeyRef::Id(b)) if a == b => Ok(()),
        (KeyRef::Var(v), KeyRef::Var(w)) if v == w => Ok(()),
        _ => Err(UnifyErr::Mismatch {
            expected: decl.to_string(),
            found: actual_ty.display(world),
        }),
    }
}

fn unify_guard(
    decl: &GuardAtom,
    actual: &GuardAtom,
    binds: &mut Bindings,
    world: &World,
    actual_ty: &Ty,
) -> Result<(), UnifyErr> {
    unify_key(&decl.key, &actual.key, binds, world, actual_ty)?;
    // Guard state requirements must be compatible; state variables bind.
    match (&decl.req, &actual.req) {
        (StateReq::Any, _) | (_, StateReq::Any) => Ok(()),
        (StateReq::Exact(a), StateReq::Exact(b)) if a == b => Ok(()),
        (StateReq::Var(v), StateReq::Exact(s)) => binds.bind_state(v, StateVal::Token(*s)),
        (StateReq::AtMost { .. }, _) | (_, StateReq::AtMost { .. }) => Ok(()),
        _ => Err(UnifyErr::Mismatch {
            expected: decl.display(&world.states),
            found: actual.display(&world.states),
        }),
    }
}

fn unify_arg(
    decl: &Arg,
    actual: &Arg,
    binds: &mut Bindings,
    world: &World,
    decl_ty: &Ty,
    actual_ty: &Ty,
) -> Result<(), UnifyErr> {
    match (decl, actual) {
        (Arg::Ty(d), Arg::Ty(a)) => unify(d, a, binds, world),
        (Arg::Key(d), Arg::Key(a)) => unify_key(d, a, binds, world, actual_ty),
        (Arg::State(d), Arg::State(a)) => {
            let aval = match a {
                StateArg::Val(v) => *v,
                StateArg::Token(t) => StateVal::Token(*t),
                StateArg::Var(_) => {
                    return Err(mismatch(decl_ty, actual_ty, world));
                }
            };
            match d {
                StateArg::Var(v) => binds.bind_state(v, aval),
                StateArg::Token(t) if StateVal::Token(*t) == aval => Ok(()),
                StateArg::Val(v) if *v == aval => Ok(()),
                _ => Err(mismatch(decl_ty, actual_ty, world)),
            }
        }
        _ => Err(mismatch(decl_ty, actual_ty, world)),
    }
}

/// Function types unify when they are alpha-equivalent over their key
/// variables: same shapes, with a consistent bijection between the key
/// variables of the two signatures. A key variable on the declared side may
/// also bind to a concrete key on the actual side (a nested function over
/// already-instantiated keys matching `COMPLETION_ROUTINE<I>`, §4.3).
fn unify_fn(
    decl: &FnSig,
    actual: &FnSig,
    binds: &mut Bindings,
    world: &World,
) -> Result<(), UnifyErr> {
    if decl.params.len() != actual.params.len() || decl.effect.len() != actual.effect.len() {
        return Err(UnifyErr::Mismatch {
            expected: format!("fn with {} params", decl.params.len()),
            found: format!("fn with {} params", actual.params.len()),
        });
    }
    let mut alpha = Alpha {
        fwd: BTreeMap::new(),
        bwd: BTreeMap::new(),
        binds,
    };
    for (d, a) in decl
        .params
        .iter()
        .zip(&actual.params)
        .chain(std::iter::once((&decl.ret, &actual.ret)))
    {
        alpha_eq(d, a, &mut alpha, world)?;
    }
    for (d, a) in decl.effect.iter().zip(&actual.effect) {
        use crate::ty::EffItem::*;
        let ok = match (d, a) {
            (Keep { key: dk, .. }, Keep { key: ak, .. })
            | (Consume { key: dk, .. }, Consume { key: ak, .. })
            | (Produce { key: dk, .. }, Produce { key: ak, .. }) => alpha.key(dk, ak),
            (Fresh { var: dv, .. }, Fresh { var: av, .. }) => {
                alpha.key(&KeyRef::Var(dv.clone()), &KeyRef::Var(av.clone()))
            }
            _ => false,
        };
        if !ok {
            return Err(UnifyErr::Mismatch {
                expected: format!("fn effect of `{}`", decl.name),
                found: format!("fn effect of `{}`", actual.name),
            });
        }
    }
    Ok(())
}

/// Tracks the variable correspondence while matching two function types.
struct Alpha<'b> {
    /// decl var → actual var (for var-var pairs).
    fwd: BTreeMap<String, String>,
    /// actual var → decl var.
    bwd: BTreeMap<String, String>,
    /// Outer bindings, for decl-var-to-concrete-key pairs.
    binds: &'b mut Bindings,
}

impl Alpha<'_> {
    fn key(&mut self, d: &KeyRef, a: &KeyRef) -> bool {
        match (d, a) {
            (KeyRef::Id(x), KeyRef::Id(y)) => x == y,
            (KeyRef::Var(x), KeyRef::Id(y)) => self.binds.bind_key(x, *y).is_ok(),
            (KeyRef::Var(x), KeyRef::Var(y)) => {
                let f_ok = match self.fwd.get(x) {
                    Some(mapped) => mapped == y,
                    None => {
                        self.fwd.insert(x.clone(), y.clone());
                        true
                    }
                };
                let b_ok = match self.bwd.get(y) {
                    Some(mapped) => mapped == x,
                    None => {
                        self.bwd.insert(y.clone(), x.clone());
                        true
                    }
                };
                f_ok && b_ok
            }
            (KeyRef::Id(_), KeyRef::Var(_)) => false,
        }
    }
}

fn alpha_eq(d: &Ty, a: &Ty, alpha: &mut Alpha<'_>, world: &World) -> Result<(), UnifyErr> {
    let fail = || {
        Err(UnifyErr::Mismatch {
            expected: d.display(world),
            found: a.display(world),
        })
    };
    match (d, a) {
        (Ty::Void, Ty::Void)
        | (Ty::Int, Ty::Int)
        | (Ty::Bool, Ty::Bool)
        | (Ty::Byte, Ty::Byte)
        | (Ty::Str, Ty::Str)
        | (Ty::Error, _)
        | (_, Ty::Error) => Ok(()),
        (Ty::Var(x), Ty::Var(y)) if x == y => Ok(()),
        (Ty::Array(x), Ty::Array(y)) => alpha_eq(x, y, alpha, world),
        (Ty::Tuple(xs), Ty::Tuple(ys)) if xs.len() == ys.len() => {
            for (x, y) in xs.iter().zip(ys) {
                alpha_eq(x, y, alpha, world)?;
            }
            Ok(())
        }
        (Ty::Tracked { key: dk, inner: di }, Ty::Tracked { key: ak, inner: ai }) => {
            if !alpha.key(dk, ak) {
                return fail();
            }
            alpha_eq(di, ai, alpha, world)
        }
        (Ty::TrackedAnon(x), Ty::TrackedAnon(y)) => alpha_eq(x, y, alpha, world),
        (
            Ty::Guarded {
                guards: dg,
                inner: di,
            },
            Ty::Guarded {
                guards: ag,
                inner: ai,
            },
        ) if dg.len() == ag.len() => {
            for (x, y) in dg.iter().zip(ag) {
                if !alpha.key(&x.key, &y.key) {
                    return fail();
                }
            }
            alpha_eq(di, ai, alpha, world)
        }
        (Ty::Named { id: di, args: da }, Ty::Named { id: ai, args: aa })
            if di == ai && da.len() == aa.len() =>
        {
            for (x, y) in da.iter().zip(aa) {
                match (x, y) {
                    (Arg::Ty(x), Arg::Ty(y)) => alpha_eq(x, y, alpha, world)?,
                    (Arg::Key(x), Arg::Key(y)) => {
                        if !alpha.key(x, y) {
                            return fail();
                        }
                    }
                    (Arg::State(x), Arg::State(y)) if x == y => {}
                    (Arg::State(StateArg::Var(_)), Arg::State(_))
                    | (Arg::State(_), Arg::State(StateArg::Var(_))) => {}
                    _ => return fail(),
                }
            }
            Ok(())
        }
        (Ty::Fn(x), Ty::Fn(y)) => unify_fn(x, y, alpha.binds, world),
        _ => fail(),
    }
}

/// Instantiate a type under bindings: replace key/state/type variables by
/// their bound values. Unbound key variables are an error (they would leave
/// the caller unable to track the key).
pub fn subst_ty(t: &Ty, binds: &Bindings) -> Result<Ty, UnifyErr> {
    Ok(match t {
        Ty::Void | Ty::Int | Ty::Bool | Ty::Byte | Ty::Str | Ty::Error => t.clone(),
        Ty::Var(v) => match binds.tys.get(v) {
            Some(b) => b.clone(),
            None => Ty::Var(v.clone()),
        },
        Ty::Array(inner) => Ty::Array(Box::new(subst_ty(inner, binds)?)),
        Ty::Tuple(ts) => Ty::Tuple(
            ts.iter()
                .map(|t| subst_ty(t, binds))
                .collect::<Result<_, _>>()?,
        ),
        Ty::Tracked { key, inner } => Ty::Tracked {
            key: subst_key(key, binds)?,
            inner: Box::new(subst_ty(inner, binds)?),
        },
        Ty::TrackedAnon(inner) => Ty::TrackedAnon(Box::new(subst_ty(inner, binds)?)),
        Ty::Guarded { guards, inner } => Ty::Guarded {
            guards: guards
                .iter()
                .map(|g| {
                    Ok(GuardAtom {
                        key: subst_key(&g.key, binds)?,
                        req: subst_req(&g.req, binds),
                    })
                })
                .collect::<Result<_, UnifyErr>>()?,
            inner: Box::new(subst_ty(inner, binds)?),
        },
        Ty::Named { id, args } => Ty::Named {
            id: *id,
            args: args
                .iter()
                .map(|a| {
                    Ok(match a {
                        Arg::Ty(t) => Arg::Ty(subst_ty(t, binds)?),
                        Arg::Key(k) => Arg::Key(subst_key(k, binds)?),
                        Arg::State(s) => Arg::State(subst_state(s, binds)),
                    })
                })
                .collect::<Result<_, UnifyErr>>()?,
        },
        // Function values are not re-instantiated: their signatures stay
        // polymorphic and are matched by alpha-equivalence.
        Ty::Fn(sig) => Ty::Fn(sig.clone()),
    })
}

fn subst_key(k: &KeyRef, binds: &Bindings) -> Result<KeyRef, UnifyErr> {
    match k {
        KeyRef::Id(_) => Ok(k.clone()),
        KeyRef::Var(v) => match binds.keys.get(v) {
            Some(id) => Ok(KeyRef::Id(*id)),
            None => Err(UnifyErr::Unresolved(v.clone())),
        },
    }
}

fn subst_req(r: &StateReq, binds: &Bindings) -> StateReq {
    match r {
        StateReq::Var(v) => match binds.states.get(v) {
            Some(StateVal::Token(t)) => StateReq::Exact(*t),
            _ => r.clone(),
        },
        other => other.clone(),
    }
}

/// Resolve a state argument to a value under bindings.
pub fn subst_state(s: &StateArg, binds: &Bindings) -> StateArg {
    match s {
        StateArg::Var(v) => match binds.states.get(v) {
            Some(val) => StateArg::Val(*val),
            None => s.clone(),
        },
        other => other.clone(),
    }
}

/// Structural equality of two concrete types modulo a *bijective* renaming
/// of concrete keys, extending `map`/`rev`. This is the join-point
/// abstraction (paper §3): two branches agree if their environments are
/// identical once local key names are abstracted.
pub fn ty_eq_mod_keys(
    a: &Ty,
    b: &Ty,
    map: &mut BTreeMap<KeyId, KeyId>,
    rev: &mut BTreeMap<KeyId, KeyId>,
) -> bool {
    fn key_eq(
        a: &KeyRef,
        b: &KeyRef,
        map: &mut BTreeMap<KeyId, KeyId>,
        rev: &mut BTreeMap<KeyId, KeyId>,
    ) -> bool {
        match (a, b) {
            (KeyRef::Id(x), KeyRef::Id(y)) => {
                let f_ok = match map.get(x) {
                    Some(m) => m == y,
                    None => {
                        map.insert(*x, *y);
                        true
                    }
                };
                let b_ok = match rev.get(y) {
                    Some(m) => m == x,
                    None => {
                        rev.insert(*y, *x);
                        true
                    }
                };
                f_ok && b_ok
            }
            (KeyRef::Var(x), KeyRef::Var(y)) => x == y,
            _ => false,
        }
    }
    match (a, b) {
        (Ty::Void, Ty::Void)
        | (Ty::Int, Ty::Int)
        | (Ty::Bool, Ty::Bool)
        | (Ty::Byte, Ty::Byte)
        | (Ty::Str, Ty::Str)
        | (Ty::Error, _)
        | (_, Ty::Error) => true,
        (Ty::Var(x), Ty::Var(y)) => x == y,
        (Ty::Array(x), Ty::Array(y)) => ty_eq_mod_keys(x, y, map, rev),
        (Ty::Tuple(xs), Ty::Tuple(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|(x, y)| ty_eq_mod_keys(x, y, map, rev))
        }
        (Ty::Tracked { key: ka, inner: ia }, Ty::Tracked { key: kb, inner: ib }) => {
            key_eq(ka, kb, map, rev) && ty_eq_mod_keys(ia, ib, map, rev)
        }
        (Ty::TrackedAnon(x), Ty::TrackedAnon(y)) => ty_eq_mod_keys(x, y, map, rev),
        (
            Ty::Guarded {
                guards: ga,
                inner: ia,
            },
            Ty::Guarded {
                guards: gb,
                inner: ib,
            },
        ) => {
            ga.len() == gb.len()
                && ga
                    .iter()
                    .zip(gb)
                    .all(|(x, y)| key_eq(&x.key, &y.key, map, rev) && x.req == y.req)
                && ty_eq_mod_keys(ia, ib, map, rev)
        }
        (Ty::Named { id: ia, args: aa }, Ty::Named { id: ib, args: ab }) => {
            ia == ib
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| match (x, y) {
                    (Arg::Ty(x), Arg::Ty(y)) => ty_eq_mod_keys(x, y, map, rev),
                    (Arg::Key(x), Arg::Key(y)) => key_eq(x, y, map, rev),
                    (Arg::State(x), Arg::State(y)) => x == y,
                    _ => false,
                })
        }
        (Ty::Fn(x), Ty::Fn(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ty::{AbstractDef, TypeDef};

    fn world() -> (World, crate::ty::TypeId) {
        let mut w = World::new();
        let region = w
            .add_type(TypeDef::Abstract(AbstractDef {
                name: "region".into(),
                params: vec![],
            }))
            .unwrap();
        (w, region)
    }

    fn named(id: crate::ty::TypeId) -> Ty {
        Ty::Named { id, args: vec![] }
    }

    #[test]
    fn unify_binds_key_vars() {
        let (w, region) = world();
        let decl = Ty::tracked(KeyRef::var("R"), named(region));
        let actual = Ty::tracked(KeyRef::Id(KeyId(7)), named(region));
        let mut b = Bindings::new();
        unify(&decl, &actual, &mut b, &w).unwrap();
        assert_eq!(b.keys.get("R"), Some(&KeyId(7)));
    }

    #[test]
    fn unify_key_var_conflict() {
        let (w, region) = world();
        let decl = Ty::Tuple(vec![
            Ty::tracked(KeyRef::var("R"), named(region)),
            Ty::tracked(KeyRef::var("R"), named(region)),
        ]);
        let actual = Ty::Tuple(vec![
            Ty::tracked(KeyRef::Id(KeyId(1)), named(region)),
            Ty::tracked(KeyRef::Id(KeyId(2)), named(region)),
        ]);
        let mut b = Bindings::new();
        assert!(matches!(
            unify(&decl, &actual, &mut b, &w),
            Err(UnifyErr::KeyConflict { .. })
        ));
    }

    #[test]
    fn unify_anon_accepts_tracked() {
        let (w, region) = world();
        let decl = Ty::TrackedAnon(Box::new(named(region)));
        let actual = Ty::tracked(KeyRef::Id(KeyId(3)), named(region));
        let mut b = Bindings::new();
        unify(&decl, &actual, &mut b, &w).unwrap();
        assert!(b.keys.is_empty());
    }

    #[test]
    fn unify_structural_mismatch() {
        let (w, region) = world();
        let mut b = Bindings::new();
        assert!(matches!(
            unify(&Ty::Int, &named(region), &mut b, &w),
            Err(UnifyErr::Mismatch { .. })
        ));
    }

    #[test]
    fn unify_ty_var_binds_and_conflicts() {
        let (w, region) = world();
        let decl = Ty::Tuple(vec![Ty::Var("T".into()), Ty::Var("T".into())]);
        let ok = Ty::Tuple(vec![Ty::Int, Ty::Int]);
        let bad = Ty::Tuple(vec![Ty::Int, named(region)]);
        let mut b = Bindings::new();
        unify(&decl, &ok, &mut b, &w).unwrap();
        assert_eq!(b.tys.get("T"), Some(&Ty::Int));
        let mut b2 = Bindings::new();
        assert!(matches!(
            unify(&decl, &bad, &mut b2, &w),
            Err(UnifyErr::TyConflict(_))
        ));
    }

    #[test]
    fn subst_resolves_keys() {
        let (_w, region) = world();
        let mut b = Bindings::new();
        b.bind_key("R", KeyId(4)).unwrap();
        let decl = Ty::tracked(KeyRef::var("R"), named(region));
        let t = subst_ty(&decl, &b).unwrap();
        assert_eq!(t, Ty::tracked(KeyRef::Id(KeyId(4)), named(region)));
    }

    #[test]
    fn subst_unbound_key_errors() {
        let (_w, region) = world();
        let decl = Ty::tracked(KeyRef::var("N"), named(region));
        assert!(matches!(
            subst_ty(&decl, &Bindings::new()),
            Err(UnifyErr::Unresolved(_))
        ));
    }

    #[test]
    fn ty_eq_mod_keys_bijective() {
        let (_w, region) = world();
        let a = Ty::tracked(KeyRef::Id(KeyId(1)), named(region));
        let b = Ty::tracked(KeyRef::Id(KeyId(9)), named(region));
        let mut map = BTreeMap::new();
        let mut rev = BTreeMap::new();
        assert!(ty_eq_mod_keys(&a, &b, &mut map, &mut rev));
        assert_eq!(map.get(&KeyId(1)), Some(&KeyId(9)));
        // Non-injective renaming rejected: k1→k9 established, now k2→k9.
        let c = Ty::tracked(KeyRef::Id(KeyId(2)), named(region));
        assert!(!ty_eq_mod_keys(&c, &b, &mut map, &mut rev));
    }

    #[test]
    fn ty_eq_mod_keys_consistency_across_positions() {
        let (_w, region) = world();
        let pair_a = Ty::Tuple(vec![
            Ty::tracked(KeyRef::Id(KeyId(1)), named(region)),
            Ty::guarded(
                vec![GuardAtom {
                    key: KeyRef::Id(KeyId(1)),
                    req: StateReq::Any,
                }],
                Ty::Int,
            ),
        ]);
        let pair_b_consistent = Ty::Tuple(vec![
            Ty::tracked(KeyRef::Id(KeyId(5)), named(region)),
            Ty::guarded(
                vec![GuardAtom {
                    key: KeyRef::Id(KeyId(5)),
                    req: StateReq::Any,
                }],
                Ty::Int,
            ),
        ]);
        let pair_b_mixed = Ty::Tuple(vec![
            Ty::tracked(KeyRef::Id(KeyId(5)), named(region)),
            Ty::guarded(
                vec![GuardAtom {
                    key: KeyRef::Id(KeyId(6)),
                    req: StateReq::Any,
                }],
                Ty::Int,
            ),
        ]);
        let mut m = BTreeMap::new();
        let mut r = BTreeMap::new();
        assert!(ty_eq_mod_keys(&pair_a, &pair_b_consistent, &mut m, &mut r));
        let mut m2 = BTreeMap::new();
        let mut r2 = BTreeMap::new();
        assert!(!ty_eq_mod_keys(&pair_a, &pair_b_mixed, &mut m2, &mut r2));
    }

    #[test]
    fn fn_sig_alpha_equivalence() {
        let (w, region) = world();
        let sig = |kv: &str| FnSig {
            name: format!("f_{kv}"),
            params: vec![Ty::tracked(KeyRef::var(kv), named(region))],
            param_names: vec![None],
            ret: Ty::Void,
            effect: vec![crate::ty::EffItem::Consume {
                key: KeyRef::var(kv),
                from: StateReq::Any,
            }],
            caps: vec![],
            ty_params: vec![],
        };
        let d = Ty::Fn(Box::new(sig("K")));
        let a = Ty::Fn(Box::new(sig("J")));
        let mut b = Bindings::new();
        unify(&d, &a, &mut b, &w).unwrap();
    }

    #[test]
    fn fn_sig_effect_shape_mismatch() {
        let (w, region) = world();
        let keep = FnSig {
            name: "keep".into(),
            params: vec![Ty::tracked(KeyRef::var("K"), named(region))],
            param_names: vec![None],
            ret: Ty::Void,
            effect: vec![crate::ty::EffItem::Keep {
                key: KeyRef::var("K"),
                from: StateReq::Any,
                to: None,
            }],
            caps: vec![],
            ty_params: vec![],
        };
        let consume = FnSig {
            name: "consume".into(),
            params: vec![Ty::tracked(KeyRef::var("K"), named(region))],
            param_names: vec![None],
            ret: Ty::Void,
            effect: vec![crate::ty::EffItem::Consume {
                key: KeyRef::var("K"),
                from: StateReq::Any,
            }],
            caps: vec![],
            ty_params: vec![],
        };
        let mut b = Bindings::new();
        assert!(unify(
            &Ty::Fn(Box::new(keep)),
            &Ty::Fn(Box::new(consume)),
            &mut b,
            &w
        )
        .is_err());
    }
}
