//! Keys — the linear compile-time tokens at the heart of Vault.
//!
//! A [`KeyId`] is a concrete key instance tracked while checking a function
//! body (one per run-time resource the checker can see). Signatures refer to
//! keys through [`KeyRef`]s, which may be variables instantiated per call.

use crate::state::StatesetId;
use std::fmt;

/// A concrete key instance during checking of one function body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub u32);

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A reference to a key as it appears in a type or effect.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyRef {
    /// A key variable, scoped to a signature or type declaration.
    Var(String),
    /// A concrete key (a global key, or an instance during checking).
    Id(KeyId),
}

impl KeyRef {
    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        KeyRef::Var(name.into())
    }

    /// The concrete id if this is one.
    pub fn id(&self) -> Option<KeyId> {
        match self {
            KeyRef::Id(k) => Some(*k),
            KeyRef::Var(_) => None,
        }
    }
}

impl fmt::Display for KeyRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyRef::Var(v) => f.write_str(v),
            KeyRef::Id(k) => write!(f, "{k}"),
        }
    }
}

/// Why a key exists — used in diagnostics ("key R (region created at ...)").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyOrigin {
    /// A `new tracked`/`new(rgn)` allocation or a `[new K]` effect.
    Fresh,
    /// Bound from a function parameter.
    Param,
    /// A statically declared global key (e.g. `IRQL`).
    Global,
    /// Restored by unpacking a keyed variant.
    Unpacked,
    /// Produced by a `[+K]` effect (e.g. `KeWaitEvent`).
    Produced,
}

/// Metadata about one key instance.
#[derive(Clone, Debug)]
pub struct KeyInfo {
    /// The surface name if the programmer gave one (`tracked(R) ...`).
    pub name: Option<String>,
    /// What resource type the key tracks, for diagnostics.
    pub resource: String,
    /// How the key came to exist.
    pub origin: KeyOrigin,
    /// Stateset governing its local states.
    pub stateset: StatesetId,
    /// Whether the key is global (cannot be consumed or created).
    pub global: bool,
}

/// Allocates fresh key ids and records their metadata.
#[derive(Clone, Debug, Default)]
pub struct KeyGen {
    infos: Vec<KeyInfo>,
}

impl KeyGen {
    /// An empty generator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh key.
    pub fn fresh(&mut self, info: KeyInfo) -> KeyId {
        let id = KeyId(self.infos.len() as u32);
        self.infos.push(info);
        id
    }

    /// Metadata for a key allocated by this generator.
    pub fn info(&self, id: KeyId) -> &KeyInfo {
        &self.infos[id.0 as usize]
    }

    /// Mutable metadata access (used to attach surface names after binding).
    pub fn info_mut(&mut self, id: KeyId) -> &mut KeyInfo {
        &mut self.infos[id.0 as usize]
    }

    /// Number of keys allocated so far.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether no key has been allocated.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// A human-readable name for diagnostics: the surface name if known,
    /// otherwise the resource type.
    pub fn describe(&self, id: KeyId) -> String {
        let info = self.info(id);
        match &info.name {
            Some(n) => n.clone(),
            None => format!("<{}>", info.resource),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateTable;

    fn info(name: Option<&str>) -> KeyInfo {
        KeyInfo {
            name: name.map(str::to_string),
            resource: "region".into(),
            origin: KeyOrigin::Fresh,
            stateset: StateTable::DEFAULT_SET,
            global: false,
        }
    }

    #[test]
    fn fresh_keys_are_distinct() {
        let mut g = KeyGen::new();
        let a = g.fresh(info(Some("R")));
        let b = g.fresh(info(None));
        assert_ne!(a, b);
        assert_eq!(g.len(), 2);
        assert_eq!(g.describe(a), "R");
        assert_eq!(g.describe(b), "<region>");
    }

    #[test]
    fn keyref_display_and_id() {
        assert_eq!(KeyRef::var("K").to_string(), "K");
        assert_eq!(KeyRef::Id(KeyId(3)).to_string(), "k3");
        assert_eq!(KeyRef::Id(KeyId(3)).id(), Some(KeyId(3)));
        assert_eq!(KeyRef::var("K").id(), None);
    }

    #[test]
    fn info_mut_updates() {
        let mut g = KeyGen::new();
        let a = g.fresh(info(None));
        g.info_mut(a).name = Some("S".into());
        assert_eq!(g.describe(a), "S");
    }
}
