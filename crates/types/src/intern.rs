//! Symbol interning for the checker's hot maps.
//!
//! The checker used to key every environment map (`Frame`, `keyenv`,
//! `statevars`, …) by `String`: every lookup was a byte-wise compare
//! and every snapshot cloned the key text. A [`Symbol`] is a `u32`
//! handle into a per-unit [`Interner`], so comparisons are integer ops
//! and map keys are `Copy`.
//!
//! ## Ordering discipline
//!
//! The checker's diagnostics depend on `BTreeMap`/`BTreeSet` iteration
//! order in several places (fresh-key numbering, join attribution), so
//! symbol order **must** equal string order or output changes. The
//! interner is therefore built once per unit from the **sorted** set of
//! every identifier in the AST (plus the resolver's internal sentinel
//! names): `Symbol(a) < Symbol(b)` iff the interned strings satisfy
//! `a < b`. After construction the interner is frozen — it is never
//! mutated, which also makes it `Sync` and lets elaboration output be
//! shared across worker threads.
//!
//! Names that were never interned (e.g. a reference to an undeclared
//! variable) resolve to [`Symbol::UNKNOWN`]. That is sound for lookups
//! (no map ever contains `UNKNOWN`) but would be a collision hazard for
//! inserts, so insert paths only ever use identifiers that came from
//! the unit's own AST — exactly the set the interner was built from.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// An interned identifier: a dense `u32` whose ordering matches the
/// string ordering of the underlying names (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The sentinel for names absent from the interner. Never stored in
    /// any map; compares greater than every real symbol.
    pub const UNKNOWN: Symbol = Symbol(u32::MAX);

    /// Dense index of this symbol (unusable for `UNKNOWN`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == Symbol::UNKNOWN {
            write!(f, "Symbol(<unknown>)")
        } else {
            write!(f, "Symbol({})", self.0)
        }
    }
}

/// 64-bit FNV-1a, the workspace's standard content hash (no external
/// hasher crates; identifiers are short, where FNV shines).
#[derive(Default)]
pub struct FnvHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        if self.0 == 0 {
            FNV_OFFSET
        } else {
            self.0
        }
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { FNV_OFFSET } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into `std::collections::HashMap`.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A frozen, per-unit string interner (see module docs for the ordering
/// and immutability discipline).
#[derive(Debug, Default)]
pub struct Interner {
    names: Vec<Box<str>>,
    map: HashMap<Box<str>, u32, FnvBuildHasher>,
}

impl Interner {
    /// Build from names in **non-decreasing** string order, so that
    /// symbol order equals string order. Duplicates are ignored.
    pub fn from_sorted<'a, I: IntoIterator<Item = &'a str>>(names: I) -> Self {
        let mut interner = Interner::default();
        for name in names {
            debug_assert!(
                interner.names.last().map_or(true, |p| &**p <= name),
                "interner input must be sorted: `{name}` after `{}`",
                interner.names.last().map_or("", |p| p)
            );
            if interner.names.last().map(|p| &**p) == Some(name) {
                continue;
            }
            let id = interner.names.len() as u32;
            interner.names.push(name.into());
            interner.map.insert(name.into(), id);
        }
        interner
    }

    /// The symbol for `name`, or [`Symbol::UNKNOWN`] if it was never
    /// interned. Read-only: a frozen interner never grows.
    pub fn sym(&self, name: &str) -> Symbol {
        match self.map.get(name) {
            Some(&id) => Symbol(id),
            None => Symbol::UNKNOWN,
        }
    }

    /// The string a symbol stands for (`"<unknown>"` for the sentinel).
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.names.get(sym.0 as usize).map_or("<unknown>", |n| &**n)
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_order_matches_string_order() {
        let i = Interner::from_sorted(["<error>", "alpha", "beta", "gamma"]);
        assert!(i.sym("<error>") < i.sym("alpha"));
        assert!(i.sym("alpha") < i.sym("beta"));
        assert!(i.sym("beta") < i.sym("gamma"));
        assert!(i.sym("gamma") < Symbol::UNKNOWN);
    }

    #[test]
    fn unknown_names_resolve_to_sentinel() {
        let i = Interner::from_sorted(["x"]);
        assert_eq!(i.sym("y"), Symbol::UNKNOWN);
        assert_eq!(i.resolve(Symbol::UNKNOWN), "<unknown>");
        assert_eq!(i.resolve(i.sym("x")), "x");
    }

    #[test]
    fn duplicates_are_collapsed() {
        let i = Interner::from_sorted(["a", "a", "b"]);
        assert_eq!(i.len(), 2);
        assert_eq!(i.sym("a").index(), 0);
        assert_eq!(i.sym("b").index(), 1);
    }

    #[test]
    fn fnv_hasher_matches_reference_vectors() {
        fn hash(bytes: &[u8]) -> u64 {
            let mut h = FnvHasher::default();
            h.write(bytes);
            h.finish()
        }
        // Standard FNV-1a test vectors.
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x85944171f73967e8);
    }
}
