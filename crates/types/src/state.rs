//! Key states and statesets.
//!
//! Every key has a *local state* drawn from a stateset. Statesets are
//! declared partial orders (`stateset IRQ_LEVEL = [PASSIVE < APC < ...]`,
//! paper §4.4); keys without a declared stateset use the trivial stateset
//! containing only the [`StateTable::DEFAULT`] state (the paper's "fixed
//! unique state" for omitted key states).

use std::collections::BTreeMap;
use std::fmt;

/// Identifies a stateset in a [`StateTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatesetId(pub u32);

/// Identifies a state token in a [`StateTable`] (globally, across statesets).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

/// Errors when building a stateset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatesetError {
    /// The declared order relation contains a cycle through this state.
    Cycle(String),
    /// The same state token was declared in two different statesets.
    Reused(String),
}

impl fmt::Display for StatesetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatesetError::Cycle(s) => write!(f, "stateset order has a cycle through `{s}`"),
            StatesetError::Reused(s) => {
                write!(f, "state `{s}` is already a member of another stateset")
            }
        }
    }
}

impl std::error::Error for StatesetError {}

#[derive(Clone, Debug)]
struct StateInfo {
    name: String,
    set: StatesetId,
}

#[derive(Clone, Debug, Default)]
struct StatesetInfo {
    name: String,
    members: Vec<StateId>,
    /// Direct `a < b` edges, by local member index.
    edges: Vec<(usize, usize)>,
    /// Reachability closure: `reach[a][b]` iff `a < b` (strictly).
    reach: Vec<Vec<bool>>,
}

/// Interns state tokens and statesets and answers partial-order queries.
#[derive(Clone, Debug)]
pub struct StateTable {
    states: Vec<StateInfo>,
    sets: Vec<StatesetInfo>,
    by_name: BTreeMap<String, StateId>,
    sets_by_name: BTreeMap<String, StatesetId>,
}

impl StateTable {
    /// The default state of keys without a declared stateset.
    pub const DEFAULT: StateId = StateId(0);
    /// The trivial stateset containing only [`Self::DEFAULT`].
    pub const DEFAULT_SET: StatesetId = StatesetId(0);

    /// A table containing only the trivial stateset.
    pub fn new() -> Self {
        let mut t = StateTable {
            states: Vec::new(),
            sets: Vec::new(),
            by_name: BTreeMap::new(),
            sets_by_name: BTreeMap::new(),
        };
        let set = t.begin_stateset("$default");
        let d = t
            .add_state(set, "$default")
            .expect("fresh table cannot clash");
        t.finish_stateset(set).expect("singleton has no cycle");
        debug_assert_eq!(set, Self::DEFAULT_SET);
        debug_assert_eq!(d, Self::DEFAULT);
        t
    }

    /// Start a new stateset with the given name. States and edges are added
    /// with [`Self::add_state`] and [`Self::add_lt`], then the set is sealed
    /// with [`Self::finish_stateset`].
    pub fn begin_stateset(&mut self, name: &str) -> StatesetId {
        let id = StatesetId(self.sets.len() as u32);
        self.sets.push(StatesetInfo {
            name: name.to_string(),
            ..StatesetInfo::default()
        });
        self.sets_by_name.insert(name.to_string(), id);
        id
    }

    /// Add a state token to a stateset. Re-adding a token already in the
    /// same set returns the existing id; a token from another set errors.
    pub fn add_state(&mut self, set: StatesetId, name: &str) -> Result<StateId, StatesetError> {
        if let Some(&existing) = self.by_name.get(name) {
            if self.states[existing.0 as usize].set == set {
                return Ok(existing);
            }
            return Err(StatesetError::Reused(name.to_string()));
        }
        let id = StateId(self.states.len() as u32);
        self.states.push(StateInfo {
            name: name.to_string(),
            set,
        });
        self.by_name.insert(name.to_string(), id);
        self.sets[set.0 as usize].members.push(id);
        Ok(id)
    }

    /// Record the strict order relation `a < b` in the set both belong to.
    ///
    /// # Panics
    /// Panics if `a` and `b` belong to different statesets (the elaborator
    /// only relates states it added to the same set).
    pub fn add_lt(&mut self, a: StateId, b: StateId) {
        let set = self.states[a.0 as usize].set;
        assert_eq!(
            set, self.states[b.0 as usize].set,
            "order relation across statesets"
        );
        let info = &mut self.sets[set.0 as usize];
        let ia = info.members.iter().position(|&s| s == a).expect("member");
        let ib = info.members.iter().position(|&s| s == b).expect("member");
        info.edges.push((ia, ib));
    }

    /// Seal a stateset: compute the reachability closure and reject cycles.
    pub fn finish_stateset(&mut self, set: StatesetId) -> Result<(), StatesetError> {
        let info = &mut self.sets[set.0 as usize];
        let n = info.members.len();
        let mut reach = vec![vec![false; n]; n];
        for &(a, b) in &info.edges {
            reach[a][b] = true;
        }
        // Floyd–Warshall closure.
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    let via: Vec<usize> = (0..n).filter(|&j| reach[k][j]).collect();
                    for j in via {
                        reach[i][j] = true;
                    }
                }
            }
        }
        for (i, row) in reach.iter().enumerate() {
            if row[i] {
                let name = self.states[info.members[i].0 as usize].name.clone();
                return Err(StatesetError::Cycle(name));
            }
        }
        info.reach = reach;
        Ok(())
    }

    /// Look up a state token by name.
    pub fn state(&self, name: &str) -> Option<StateId> {
        self.by_name.get(name).copied()
    }

    /// Look up a stateset by name.
    pub fn stateset(&self, name: &str) -> Option<StatesetId> {
        self.sets_by_name.get(name).copied()
    }

    /// The name of a state token.
    pub fn state_name(&self, id: StateId) -> &str {
        &self.states[id.0 as usize].name
    }

    /// The stateset a state belongs to.
    pub fn set_of(&self, id: StateId) -> StatesetId {
        self.states[id.0 as usize].set
    }

    /// The name of a stateset.
    pub fn stateset_name(&self, id: StatesetId) -> &str {
        &self.sets[id.0 as usize].name
    }

    /// All member states of a stateset, in declaration order.
    pub fn members(&self, id: StatesetId) -> &[StateId] {
        &self.sets[id.0 as usize].members
    }

    /// Non-strict partial order: `a <= b` within one stateset. States from
    /// different statesets are incomparable.
    pub fn le(&self, a: StateId, b: StateId) -> bool {
        if a == b {
            return true;
        }
        let set = self.states[a.0 as usize].set;
        if set != self.states[b.0 as usize].set {
            return false;
        }
        let info = &self.sets[set.0 as usize];
        let ia = info.members.iter().position(|&s| s == a).expect("member");
        let ib = info.members.iter().position(|&s| s == b).expect("member");
        info.reach.get(ia).map(|row| row[ib]).unwrap_or(false)
    }
}

impl Default for StateTable {
    fn default() -> Self {
        Self::new()
    }
}

/// A key's local state as known to the checker at a program point.
///
/// `Token` is a concrete state. `Abs` is an abstract state introduced by
/// bounded state polymorphism (paper §4.4): "some state, identity `id`,
/// known only to be `<= bound`". Two `Abs` values are the same state iff
/// their ids are equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StateVal {
    /// A concrete state token.
    Token(StateId),
    /// An abstract (polymorphic) state with identity and optional bound.
    Abs {
        /// Identity of the abstract state within the current function check.
        id: u32,
        /// Upper bound, if the state variable was declared bounded.
        bound: Option<StateId>,
    },
}

impl StateVal {
    /// The default concrete state.
    pub const DEFAULT: StateVal = StateVal::Token(StateTable::DEFAULT);

    /// Whether this state is known to be `<= bound` in `table`.
    pub fn le_token(&self, bound: StateId, table: &StateTable) -> bool {
        match self {
            StateVal::Token(t) => table.le(*t, bound),
            StateVal::Abs { bound: Some(b), .. } => table.le(*b, bound),
            StateVal::Abs { bound: None, .. } => false,
        }
    }

    /// Render for diagnostics.
    pub fn display(&self, table: &StateTable) -> String {
        match self {
            StateVal::Token(t) => table.state_name(*t).to_string(),
            StateVal::Abs { id, bound: None } => format!("?s{id}"),
            StateVal::Abs { id, bound: Some(b) } => format!("?s{id}<={}", table.state_name(*b)),
        }
    }
}

/// A state *requirement* appearing in guards, effect preconditions, and
/// constructor captures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateReq {
    /// Any state is acceptable (the key merely has to be held).
    Any,
    /// Exactly this state token.
    Exact(StateId),
    /// Any state `<=` the bound (bounded polymorphism); if `var` is set the
    /// matched state is bound to that state variable.
    AtMost {
        /// Optional state-variable name the matched state binds.
        var: Option<String>,
        /// Inclusive upper bound.
        bound: StateId,
    },
    /// Exactly the state bound to a state variable (from an earlier match
    /// or a parameter's type).
    Var(String),
}

impl StateReq {
    /// Whether a concrete state value satisfies this requirement, ignoring
    /// variable binding (the checker resolves `Var` before calling this).
    pub fn admits(&self, val: &StateVal, table: &StateTable) -> bool {
        match self {
            StateReq::Any => true,
            StateReq::Exact(t) => matches!(val, StateVal::Token(v) if v == t),
            StateReq::AtMost { bound, .. } => val.le_token(*bound, table),
            StateReq::Var(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn irq_table() -> (StateTable, [StateId; 4]) {
        let mut t = StateTable::new();
        let set = t.begin_stateset("IRQ_LEVEL");
        let p = t.add_state(set, "PASSIVE_LEVEL").unwrap();
        let a = t.add_state(set, "APC_LEVEL").unwrap();
        let d = t.add_state(set, "DISPATCH_LEVEL").unwrap();
        let q = t.add_state(set, "DIRQL").unwrap();
        t.add_lt(p, a);
        t.add_lt(a, d);
        t.add_lt(d, q);
        t.finish_stateset(set).unwrap();
        (t, [p, a, d, q])
    }

    #[test]
    fn chain_order_is_transitive() {
        let (t, [p, a, d, q]) = irq_table();
        assert!(t.le(p, q));
        assert!(t.le(p, p));
        assert!(t.le(a, d));
        assert!(!t.le(d, a));
        assert!(!t.le(q, p));
    }

    #[test]
    fn incomparable_across_statesets() {
        let (mut t, [p, ..]) = irq_table();
        let other = t.begin_stateset("SOCKET_STATE");
        let raw = t.add_state(other, "raw").unwrap();
        t.finish_stateset(other).unwrap();
        assert!(!t.le(p, raw));
        assert!(!t.le(raw, p));
        assert!(t.le(raw, raw));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut t = StateTable::new();
        let set = t.begin_stateset("BAD");
        let a = t.add_state(set, "a").unwrap();
        let b = t.add_state(set, "b").unwrap();
        t.add_lt(a, b);
        t.add_lt(b, a);
        assert!(matches!(
            t.finish_stateset(set),
            Err(StatesetError::Cycle(_))
        ));
    }

    #[test]
    fn reuse_across_sets_rejected() {
        let mut t = StateTable::new();
        let s1 = t.begin_stateset("A");
        t.add_state(s1, "x").unwrap();
        t.finish_stateset(s1).unwrap();
        let s2 = t.begin_stateset("B");
        assert_eq!(t.add_state(s2, "x"), Err(StatesetError::Reused("x".into())));
    }

    #[test]
    fn readding_same_state_is_idempotent() {
        let mut t = StateTable::new();
        let s = t.begin_stateset("A");
        let x1 = t.add_state(s, "x").unwrap();
        let x2 = t.add_state(s, "x").unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn stateval_bounds() {
        let (t, [p, a, d, _q]) = irq_table();
        assert!(StateVal::Token(p).le_token(d, &t));
        assert!(!StateVal::Token(d).le_token(a, &t));
        let abs = StateVal::Abs {
            id: 1,
            bound: Some(a),
        };
        assert!(abs.le_token(d, &t));
        assert!(abs.le_token(a, &t));
        assert!(!abs.le_token(p, &t));
        let unb = StateVal::Abs { id: 2, bound: None };
        assert!(!unb.le_token(d, &t));
    }

    #[test]
    fn statereq_admits() {
        let (t, [p, _a, d, q]) = irq_table();
        assert!(StateReq::Any.admits(&StateVal::Token(q), &t));
        assert!(StateReq::Exact(p).admits(&StateVal::Token(p), &t));
        assert!(!StateReq::Exact(p).admits(&StateVal::Token(d), &t));
        let atmost = StateReq::AtMost {
            var: Some("level".into()),
            bound: d,
        };
        assert!(atmost.admits(&StateVal::Token(p), &t));
        assert!(!atmost.admits(&StateVal::Token(q), &t));
    }

    #[test]
    fn default_state_exists() {
        let t = StateTable::new();
        assert_eq!(t.state("$default"), Some(StateTable::DEFAULT));
        assert!(t.le(StateTable::DEFAULT, StateTable::DEFAULT));
        assert_eq!(t.state_name(StateTable::DEFAULT), "$default");
    }

    #[test]
    fn lookup_by_name() {
        let (t, [_, a, ..]) = irq_table();
        assert_eq!(t.state("APC_LEVEL"), Some(a));
        assert!(t.stateset("IRQ_LEVEL").is_some());
        assert_eq!(t.state("NOPE"), None);
        assert_eq!(t.members(t.stateset("IRQ_LEVEL").unwrap()).len(), 4);
    }
}
