//! Property-based tests of the core algebraic invariants: key linearity
//! in held-key sets, stateset partial-order laws, and the bijectivity of
//! the join-point key abstraction.

// Requires the real `proptest` crate, unavailable in the offline build
// environment; enable the `proptests` feature after vendoring it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use std::collections::BTreeMap;
use vault_types::{
    ty_eq_mod_keys, AbstractDef, HeldErr, HeldSet, KeyId, KeyRef, StateId, StateTable, StateVal,
    Ty, TypeDef, World,
};

fn key_strategy() -> impl Strategy<Value = KeyId> {
    (0u32..32).prop_map(KeyId)
}

fn state_strategy() -> impl Strategy<Value = StateVal> {
    prop_oneof![
        (0u32..4).prop_map(|i| StateVal::Token(StateId(i))),
        (0u32..8).prop_map(|id| StateVal::Abs { id, bound: None }),
    ]
}

proptest! {
    /// Keys are linear: after a successful insert, a second insert of the
    /// same key always fails and leaves the set unchanged.
    #[test]
    fn held_set_never_duplicates(ops in proptest::collection::vec(
        (key_strategy(), state_strategy(), any::<bool>()), 1..64))
    {
        let mut held = HeldSet::new();
        let mut model: BTreeMap<KeyId, StateVal> = BTreeMap::new();
        for (k, s, insert) in ops {
            if insert {
                match held.insert(k, s) {
                    Ok(()) => {
                        prop_assert!(!model.contains_key(&k));
                        model.insert(k, s);
                    }
                    Err(HeldErr::Duplicate(d)) => {
                        prop_assert_eq!(d, k);
                        prop_assert!(model.contains_key(&k));
                    }
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                }
            } else {
                match held.remove(k) {
                    Ok(prev) => {
                        prop_assert_eq!(model.remove(&k), Some(prev));
                    }
                    Err(HeldErr::NotHeld(d)) => {
                        prop_assert_eq!(d, k);
                        prop_assert!(!model.contains_key(&k));
                    }
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                }
            }
            // The set always mirrors the model exactly.
            prop_assert_eq!(held.len(), model.len());
            for (&mk, &ms) in &model {
                prop_assert_eq!(held.get(mk), Some(ms));
            }
        }
    }

    /// Renaming with an injective map preserves cardinality and states.
    #[test]
    fn held_set_rename_preserves_states(
        keys in proptest::collection::btree_set(0u32..16, 1..10),
        offset in 100u32..200)
    {
        let mut held = HeldSet::new();
        for &k in &keys {
            held.insert(KeyId(k), StateVal::Token(StateId(k % 3))).unwrap();
        }
        // Injective rename: shift everything by a constant.
        let map: BTreeMap<KeyId, KeyId> =
            keys.iter().map(|&k| (KeyId(k), KeyId(k + offset))).collect();
        let renamed = held.rename(&map).unwrap();
        prop_assert_eq!(renamed.len(), held.len());
        for &k in &keys {
            prop_assert_eq!(renamed.get(KeyId(k + offset)), held.get(KeyId(k)));
        }
    }

    /// Stateset chains form a partial order: reflexive, transitive, and
    /// antisymmetric.
    #[test]
    fn stateset_chain_is_partial_order(len in 2usize..8, a in 0usize..8, b in 0usize..8, c in 0usize..8) {
        let mut t = StateTable::new();
        let set = t.begin_stateset("S");
        let mut ids = Vec::new();
        for i in 0..len {
            ids.push(t.add_state(set, &format!("s{i}")).unwrap());
        }
        for w in ids.windows(2) {
            t.add_lt(w[0], w[1]);
        }
        t.finish_stateset(set).unwrap();
        let a = ids[a % len];
        let b = ids[b % len];
        let c = ids[c % len];
        // Reflexivity.
        prop_assert!(t.le(a, a));
        // Antisymmetry.
        if t.le(a, b) && t.le(b, a) {
            prop_assert_eq!(a, b);
        }
        // Transitivity.
        if t.le(a, b) && t.le(b, c) {
            prop_assert!(t.le(a, c));
        }
        // Chains are total: comparable either way.
        prop_assert!(t.le(a, b) || t.le(b, a));
    }

    /// The join abstraction is symmetric: if A's types match B's under a
    /// bijection, B's match A's.
    #[test]
    fn ty_eq_mod_keys_is_symmetric(ka in key_strategy(), kb in key_strategy()) {
        let mut w = World::new();
        let region = w
            .add_type(TypeDef::Abstract(AbstractDef {
                name: "region".into(),
                params: vec![],
            }))
            .unwrap();
        let named = Ty::Named { id: region, args: vec![] };
        let a = Ty::tracked(KeyRef::Id(ka), named.clone());
        let b = Ty::tracked(KeyRef::Id(kb), named);
        let mut m1 = BTreeMap::new();
        let mut r1 = BTreeMap::new();
        let mut m2 = BTreeMap::new();
        let mut r2 = BTreeMap::new();
        prop_assert_eq!(
            ty_eq_mod_keys(&a, &b, &mut m1, &mut r1),
            ty_eq_mod_keys(&b, &a, &mut m2, &mut r2)
        );
    }
}
