//! AST → bytecode. The contract is *outcome identity* with the
//! `vault-eval` tree-walker: for any program and entry, the compiled
//! code must produce the same `EvalOutcome` — value or fault (same
//! variant, same message), same leak count, same fuel consumption.
//! That drives three design points worth spelling out:
//!
//! ## Fuel parity
//!
//! The interpreter burns one fuel per AST node it visits (each `call`,
//! each statement, each expression, plus one per `while` iteration).
//! The compiler replays that accounting symbolically: it keeps a
//! `pending` counter of burns owed, incremented exactly where the
//! interpreter burns, and emits a single `Fuel(pending)` flush before
//! every *observable* instruction — anything that can fault or touch
//! the heap/extern world — and at every label and branch. Runs of pure
//! instructions (loads, moves, value construction, jumps) are covered
//! by one batched check. This is sound for outcome identity: within a
//! pure run the interpreter either completes all the burns or dies with
//! the budget exactly exhausted, and either way no observable effect
//! separates the batched check from the step-by-step one — the result,
//! the leak set, and `fuel_used` (= budget on exhaustion) all agree.
//!
//! ## Names resolve like a frame stack, not like a symbol table
//!
//! The interpreter binds locals *when their declaration executes*, into
//! a per-block map. A declaration sitting in a non-block `if` branch
//! therefore binds into the enclosing block only on some executions,
//! and reads fall through to an outer binding (or to a function
//! constant, or to an `unknown variable` fault) when it didn't. The
//! compiler assigns every name declared anywhere in a block one
//! register at block entry, marks it `Undef`, flips it to defined when
//! (and only on paths where) the declaration runs, and compiles reads
//! and writes of possibly-undefined names to `JmpUndef` resolution
//! chains that walk outward exactly like the interpreter's frame scan.
//! Once a straight-line declaration has executed, the binding is
//! statically known to be defined and accesses collapse to plain
//! register moves — the fast path for real programs.
//!
//! ## Compile-time findings fault at run time
//!
//! The interpreter only reports what it reaches: an unknown variable in
//! dead code is not an error. Anything the compiler can already see —
//! unknown names, call-arity mismatches, computed call targets — is
//! compiled to a `Trap` carrying the exact fault the interpreter would
//! raise, placed where the interpreter would raise it.

use crate::bytecode::{encode_binop, pack, CallTarget, CompiledFn, CompiledProgram, Op};
use std::collections::BTreeMap;
use vault_eval::{ops, EvalError, Value};
use vault_syntax::ast::{
    self, BinOp, Block, Expr, ExprKind, PatBinder, Program, Stmt, StmtKind, UnOp,
};

/// Compile a program. Never fails: a function body that exceeds the
/// 255-register file (no real program does) becomes a trap stub and is
/// listed in [`CompiledProgram::overflowed`].
pub fn compile(program: &Program) -> CompiledProgram {
    // The interpreter's dispatch map: every declaration by name, last
    // one wins — including signature-only decls shadowing bodies.
    let mut decls: BTreeMap<String, &ast::FunDecl> = BTreeMap::new();
    for f in program.functions() {
        decls.insert(f.name.name.to_string(), f);
    }
    let mut prog = CompiledProgram::default();
    let mut body_fns = Vec::new();
    for (name, f) in &decls {
        if f.body.is_some() {
            prog.targets
                .insert(name.clone(), CallTarget::Compiled(body_fns.len()));
            body_fns.push((name.clone(), *f));
        } else {
            prog.targets.insert(name.clone(), CallTarget::Extern);
        }
    }
    let mut pools = Pools::default();
    for (name, f) in body_fns {
        let c = FnCompiler::new(&decls, &prog.targets, &mut pools);
        match c.compile_fn(f) {
            Ok(cf) => prog.functions.push(cf),
            Err(()) => {
                prog.overflowed.push(name.clone());
                prog.functions.push(trap_stub(name, f, &mut pools));
            }
        }
    }
    prog.consts = pools.consts;
    prog.names = pools.names;
    prog.shapes = pools.shapes;
    prog.errors = pools.errors;
    prog
}

fn trap_stub(name: String, f: &ast::FunDecl, pools: &mut Pools) -> CompiledFn {
    let err = pools.error(EvalError::Unsupported(format!(
        "register file exceeded compiling `{name}`"
    )));
    CompiledFn {
        name,
        arity: f.params.len(),
        nregs: f.params.len().max(1) as u32,
        code: vec![pack(Op::Trap, 0, 0, 0), err],
    }
}

/// Interned operand pools, shared across all functions of a program.
#[derive(Default)]
struct Pools {
    consts: Vec<Value>,
    cmap: BTreeMap<ConstKey, u32>,
    names: Vec<String>,
    nmap: BTreeMap<String, u32>,
    shapes: Vec<Vec<u32>>,
    errors: Vec<EvalError>,
}

/// Hashable identity for pooled constants.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ConstKey {
    Unit,
    Int(i64),
    Bool(bool),
    Str(String),
    Fn(String),
}

impl Pools {
    fn konst(&mut self, k: ConstKey) -> u32 {
        if let Some(i) = self.cmap.get(&k) {
            return *i;
        }
        let v = match &k {
            ConstKey::Unit => Value::Unit,
            ConstKey::Int(n) => Value::Int(*n),
            ConstKey::Bool(b) => Value::Bool(*b),
            ConstKey::Str(s) => Value::Str(s.clone()),
            ConstKey::Fn(n) => Value::Fn(n.clone()),
        };
        let i = self.consts.len() as u32;
        self.consts.push(v);
        self.cmap.insert(k, i);
        i
    }

    fn name(&mut self, s: &str) -> u32 {
        if let Some(i) = self.nmap.get(s) {
            return *i;
        }
        let i = self.names.len() as u32;
        self.names.push(s.to_string());
        self.nmap.insert(s.to_string(), i);
        i
    }

    fn shape(&mut self, fields: Vec<u32>) -> u32 {
        if let Some(i) = self.shapes.iter().position(|s| *s == fields) {
            return i as u32;
        }
        self.shapes.push(fields);
        self.shapes.len() as u32 - 1
    }

    fn error(&mut self, e: EvalError) -> u32 {
        if let Some(i) = self.errors.iter().position(|x| *x == e) {
            return i as u32;
        }
        self.errors.push(e);
        self.errors.len() as u32 - 1
    }
}

/// A name binding inside the compiler's scope stack.
#[derive(Clone, Copy)]
struct Binding {
    reg: u32,
    /// Whether the binding may be undefined at run time (declared on a
    /// conditional path and not yet, on this straight line, executed).
    conditional: bool,
}

struct Scope {
    watermark: u32,
    entries: Vec<(String, Binding)>,
}

struct FnCompiler<'a, 'p> {
    decls: &'a BTreeMap<String, &'p ast::FunDecl>,
    targets: &'a BTreeMap<String, CallTarget>,
    pools: &'a mut Pools,
    code: Vec<u32>,
    pending: u64,
    scopes: Vec<Scope>,
    next: u32,
    max: u32,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, usize)>,
    overflow: bool,
}

impl<'a, 'p> FnCompiler<'a, 'p> {
    fn new(
        decls: &'a BTreeMap<String, &'p ast::FunDecl>,
        targets: &'a BTreeMap<String, CallTarget>,
        pools: &'a mut Pools,
    ) -> Self {
        FnCompiler {
            decls,
            targets,
            pools,
            code: Vec::new(),
            pending: 0,
            scopes: Vec::new(),
            next: 0,
            max: 0,
            labels: Vec::new(),
            patches: Vec::new(),
            overflow: false,
        }
    }

    fn compile_fn(mut self, f: &'p ast::FunDecl) -> Result<CompiledFn, ()> {
        self.push_scope();
        for p in &f.params {
            let r = self.alloc();
            if let Some(n) = &p.name {
                self.bind(
                    n.name.as_str(),
                    Binding {
                        reg: r,
                        conditional: false,
                    },
                );
            }
        }
        let body = f.body.as_ref().expect("only body functions compile");
        self.block(body);
        self.pop_scope();
        // Falling off the end returns void, as in the interpreter.
        self.flush();
        self.emit(Op::RetUnit, 0, 0, 0);
        for (pos, label) in std::mem::take(&mut self.patches) {
            self.code[pos] = self.labels[label].expect("label bound");
        }
        if self.overflow {
            return Err(());
        }
        Ok(CompiledFn {
            name: f.name.name.to_string(),
            arity: f.params.len(),
            nregs: self.max.max(1),
            code: self.code,
        })
    }

    // --------------------------------------------------------------
    // Emission plumbing
    // --------------------------------------------------------------

    fn emit(&mut self, op: Op, a: u32, b: u32, c: u32) {
        if a > 0xff || b > 0xff || c > 0xff {
            self.overflow = true;
        }
        self.code.push(pack(op, a as u8, b as u8, c as u8));
    }

    fn word(&mut self, w: u32) {
        self.code.push(w);
    }

    /// One fuel owed — placed exactly where the interpreter burns.
    fn tick(&mut self) {
        self.pending += 1;
    }

    /// Discharge owed fuel. Required before any instruction that can
    /// fault or produce an observable effect, and at every label or
    /// branch so all paths agree on the balance.
    fn flush(&mut self) {
        if self.pending > 0 {
            debug_assert!(self.pending <= u32::MAX as u64);
            self.emit(Op::Fuel, 0, 0, 0);
            let n = self.pending as u32;
            self.word(n);
            self.pending = 0;
        }
    }

    fn label(&mut self) -> usize {
        self.labels.push(None);
        self.labels.len() - 1
    }

    /// Bind a label at the current position (flushes first, so every
    /// jump lands with a zero fuel balance).
    fn bind_label(&mut self, l: usize) {
        self.flush();
        self.labels[l] = Some(self.code.len() as u32);
    }

    /// Emit the operand word of a branch targeting `l`.
    fn target(&mut self, l: usize) {
        match self.labels[l] {
            Some(pc) => self.word(pc),
            None => {
                self.patches.push((self.code.len(), l));
                self.word(0);
            }
        }
    }

    fn jmp(&mut self, l: usize) {
        self.flush();
        self.emit(Op::Jmp, 0, 0, 0);
        self.target(l);
    }

    // --------------------------------------------------------------
    // Registers and scopes
    // --------------------------------------------------------------

    fn alloc(&mut self) -> u32 {
        let r = self.next;
        self.next += 1;
        self.max = self.max.max(self.next);
        if r > 0xff {
            self.overflow = true;
        }
        r
    }

    fn push_scope(&mut self) {
        self.scopes.push(Scope {
            watermark: self.next,
            entries: Vec::new(),
        });
    }

    fn pop_scope(&mut self) {
        let s = self.scopes.pop().expect("scope");
        self.next = s.watermark;
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope")
            .entries
            .push((name.to_string(), b));
    }

    /// The visible binding per scope level, innermost first, truncated
    /// after the first unconditional one (resolution stops there).
    /// The bool is whether the chain ends in an unconditional binding.
    fn chain(&self, name: &str) -> (Vec<Binding>, bool) {
        let mut out = Vec::new();
        for scope in self.scopes.iter().rev() {
            if let Some((_, b)) = scope.entries.iter().rev().find(|(n, _)| n == name) {
                out.push(*b);
                if !b.conditional {
                    return (out, true);
                }
            }
        }
        (out, false)
    }

    /// The binding for `name` in the innermost scope that has one —
    /// used by `Local`, which always targets its enclosing block.
    fn innermost(&mut self, name: &str) -> &mut Binding {
        for scope in self.scopes.iter_mut().rev() {
            if let Some((_, b)) = scope.entries.iter_mut().rev().find(|(n, _)| n == name) {
                return b;
            }
        }
        unreachable!("declared names are pre-registered")
    }

    /// Register every name this statement list can declare into the
    /// current scope — one register per name, mirroring one frame slot
    /// per name — and reset their defined flags. Descends into `if` and
    /// `while` branches (which bind into the *enclosing* frame when
    /// their branch is not a block) but not into nested blocks or
    /// switch arms, which push frames of their own.
    fn prescan(&mut self, stmts: &[Stmt]) {
        fn collect<'p>(s: &'p Stmt, out: &mut Vec<&'p str>) {
            match &s.kind {
                StmtKind::Local { name, .. } => out.push(name.name.as_str()),
                StmtKind::NestedFun(f) => out.push(f.name.name.as_str()),
                StmtKind::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    collect(then_branch, out);
                    if let Some(e) = else_branch {
                        collect(e, out);
                    }
                }
                StmtKind::While { body, .. } => collect(body, out),
                _ => {}
            }
        }
        let mut names = Vec::new();
        for s in stmts {
            collect(s, &mut names);
        }
        let mut seen = Vec::new();
        for n in names {
            if seen.contains(&n) {
                continue;
            }
            seen.push(n);
            // A switch-arm binder of the same name shares its slot.
            let already = self
                .scopes
                .last()
                .expect("scope")
                .entries
                .iter()
                .any(|(en, _)| en == n);
            if already {
                continue;
            }
            let reg = self.alloc();
            self.emit(Op::Undef, reg, 0, 0);
            self.bind(
                n,
                Binding {
                    reg,
                    conditional: true,
                },
            );
        }
    }

    // --------------------------------------------------------------
    // Statements
    // --------------------------------------------------------------

    fn block(&mut self, b: &'p Block) {
        self.push_scope();
        self.prescan(&b.stmts);
        for s in &b.stmts {
            self.stmt(s, true);
        }
        self.pop_scope();
    }

    /// `direct` is true when this statement executes unconditionally in
    /// its enclosing block's straight line (not inside an `if`/`while`
    /// branch) — the point after which a declaration is statically
    /// known to be bound.
    fn stmt(&mut self, s: &'p Stmt, direct: bool) {
        self.tick();
        match &s.kind {
            StmtKind::Local { name, init, .. } => {
                let reg = self.innermost(name.name.as_str()).reg;
                match init {
                    Some(e) => self.expr(e, reg),
                    None => {
                        let k = self.pools.konst(ConstKey::Unit);
                        self.emit(Op::LoadK, reg, 0, 0);
                        self.word(k);
                    }
                }
                self.emit(Op::Def, reg, 0, 0);
                if direct {
                    self.innermost(name.name.as_str()).conditional = false;
                }
            }
            StmtKind::NestedFun(f) => {
                let name = f.name.name.as_str();
                let reg = self.innermost(name).reg;
                let k = self.pools.konst(ConstKey::Fn(name.to_string()));
                self.emit(Op::LoadK, reg, 0, 0);
                self.word(k);
                self.emit(Op::Def, reg, 0, 0);
                if direct {
                    self.innermost(name).conditional = false;
                }
            }
            StmtKind::Expr(e) => {
                let save = self.next;
                let t = self.alloc();
                self.expr(e, t);
                self.next = save;
            }
            StmtKind::Assign { lhs, rhs } => {
                // Peephole: a store to a statically-known slot compiles
                // the value directly into the variable's register —
                // sound because every expression form writes its
                // destination exactly once, as its final instruction.
                if let Some(reg) = self.grounded_slot(lhs) {
                    self.expr(rhs, reg);
                } else {
                    let save = self.next;
                    let t = self.operand(rhs);
                    self.assign(lhs, t);
                    self.next = save;
                }
            }
            StmtKind::Incr(e) | StmtKind::Decr(e) => {
                let down = matches!(s.kind, StmtKind::Decr(_));
                // Peephole: `x++` on a statically-known slot is one
                // in-place instruction. The tick is the place's `Var`
                // evaluation; the write-back re-resolves to the same
                // slot and burns nothing, as in the interpreter.
                if let Some(reg) = self.grounded_slot(e) {
                    self.tick();
                    self.flush();
                    self.emit(Op::IncrChk, reg, reg, down as u32);
                } else {
                    let save = self.next;
                    let t = self.alloc();
                    self.expr(e, t);
                    self.flush();
                    self.emit(Op::IncrChk, t, t, down as u32);
                    // The interpreter re-evaluates the place's base when
                    // writing back; so do we, by recompiling the lhs path.
                    self.assign(e, t);
                    self.next = save;
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let save = self.next;
                let t = self.operand(cond);
                let lelse = self.label();
                let lend = self.label();
                self.flush();
                self.emit(Op::JmpIfNot, t, 0, 0);
                self.target(lelse);
                self.next = save;
                self.stmt(then_branch, false);
                self.jmp(lend);
                self.bind_label(lelse);
                if let Some(e) = else_branch {
                    self.stmt(e, false);
                }
                self.bind_label(lend);
            }
            StmtKind::While { cond, body } => {
                let lhead = self.label();
                let lend = self.label();
                self.bind_label(lhead);
                self.tick(); // the interpreter burns once per iteration
                let save = self.next;
                let t = self.operand(cond);
                self.flush();
                self.emit(Op::JmpIfNot, t, 0, 0);
                self.target(lend);
                self.next = save;
                self.stmt(body, false);
                self.jmp(lhead);
                self.bind_label(lend);
            }
            StmtKind::Switch { scrutinee, arms } => {
                let save = self.next;
                let t = self.alloc();
                self.expr(scrutinee, t);
                self.flush();
                self.emit(Op::CheckVariant, t, 0, 0);
                let lend = self.label();
                for arm in arms {
                    let lnext = self.label();
                    let tag = self.pools.name(arm.ctor.name.as_str());
                    self.emit(Op::TestTag, t, 0, 0);
                    self.word(tag);
                    self.target(lnext);
                    self.push_scope();
                    for (i, binder) in arm.binders.iter().enumerate() {
                        if let PatBinder::Name(n) = binder {
                            let r = self.alloc();
                            self.emit(Op::BindArg, r, t, i as u32);
                            self.bind(
                                n.name.as_str(),
                                Binding {
                                    reg: r,
                                    conditional: false,
                                },
                            );
                        }
                    }
                    self.prescan(&arm.body);
                    for st in &arm.body {
                        self.stmt(st, true);
                    }
                    self.pop_scope();
                    self.jmp(lend);
                    self.bind_label(lnext);
                }
                self.bind_label(lend);
                self.next = save;
            }
            StmtKind::Return(e) => match e {
                Some(e) => {
                    let save = self.next;
                    let t = self.operand(e);
                    self.flush();
                    self.emit(Op::Ret, t, 0, 0);
                    self.next = save;
                }
                None => {
                    self.flush();
                    self.emit(Op::RetUnit, 0, 0, 0);
                }
            },
            StmtKind::Free(e) => {
                let save = self.next;
                let t = self.operand(e);
                self.flush();
                self.emit(Op::FreeV, t, 0, 0);
                self.next = save;
            }
            StmtKind::Block(b) => self.block(b),
        }
    }

    /// The register of `e` when it is a variable with exactly one,
    /// unconditionally-bound binding — the only case where a slot is
    /// statically known.
    fn grounded_slot(&mut self, e: &Expr) -> Option<u32> {
        let ExprKind::Var(n) = &e.kind else {
            return None;
        };
        let (chain, grounded) = self.chain(n.name.as_str());
        match chain[..] {
            [only] if grounded => Some(only.reg),
            _ => None,
        }
    }

    /// Compile `e` as a read-only operand. A variable with one grounded
    /// binding is used in place — expression evaluation can never mutate
    /// a local's register (only `Assign`/`Incr` statements do), so the
    /// slot is stable until the instruction that consumes it. Anything
    /// else lands in a fresh temp. The `Var` node's fuel tick is burned
    /// either way.
    fn operand(&mut self, e: &'p Expr) -> u32 {
        if let Some(reg) = self.grounded_slot(e) {
            self.tick();
            reg
        } else {
            let t = self.alloc();
            self.expr(e, t);
            t
        }
    }

    /// Store `src` into a place expression (assignment right-to-left:
    /// the value is already evaluated).
    fn assign(&mut self, lhs: &'p Expr, src: u32) {
        match &lhs.kind {
            ExprKind::Var(name) => self.write_var(name.name.as_str(), src),
            ExprKind::Field(base, field) => {
                let save = self.next;
                let t = self.operand(base);
                let n = self.pools.name(field.name.as_str());
                self.flush();
                self.emit(Op::SetField, t, src, 0);
                self.word(n);
                self.next = save;
            }
            ExprKind::Index(base, idx) => {
                let save = self.next;
                let tb = self.operand(base);
                let ti = self.operand(idx);
                self.flush();
                self.emit(Op::SetIndex, tb, ti, src);
                self.next = save;
            }
            _ => {
                let err = self.pools.error(ops::err_assign_non_place());
                self.flush();
                self.emit(Op::Trap, 0, 0, 0);
                self.word(err);
            }
        }
    }

    /// Store to a name: the innermost *defined* binding wins; with no
    /// binding anywhere the interpreter faults (assignment never falls
    /// back to function constants).
    fn write_var(&mut self, name: &str, src: u32) {
        let (chain, grounded) = self.chain(name);
        if let [only] = chain[..] {
            if grounded {
                self.emit(Op::Move, only.reg, src, 0);
                return;
            }
        }
        let ldone = self.label();
        self.flush();
        for b in &chain {
            if !b.conditional {
                self.emit(Op::Move, b.reg, src, 0);
                self.jmp(ldone);
                break;
            }
            let lnext = self.label();
            self.emit(Op::JmpUndef, b.reg, 0, 0);
            self.target(lnext);
            self.emit(Op::Move, b.reg, src, 0);
            self.jmp(ldone);
            self.bind_label(lnext);
        }
        if !grounded {
            let err = self.pools.error(ops::err_unknown_var(name));
            self.emit(Op::Trap, 0, 0, 0);
            self.word(err);
        }
        self.bind_label(ldone);
    }

    /// Load a name: innermost defined binding, then function constant,
    /// then `unknown variable`.
    fn read_var(&mut self, name: &str, dst: u32) {
        let (chain, grounded) = self.chain(name);
        if let [only] = chain[..] {
            if grounded {
                if only.reg != dst {
                    self.emit(Op::Move, dst, only.reg, 0);
                }
                return;
            }
        }
        let ldone = self.label();
        self.flush();
        for b in &chain {
            if !b.conditional {
                self.emit(Op::Move, dst, b.reg, 0);
                self.jmp(ldone);
                break;
            }
            let lnext = self.label();
            self.emit(Op::JmpUndef, b.reg, 0, 0);
            self.target(lnext);
            self.emit(Op::Move, dst, b.reg, 0);
            self.jmp(ldone);
            self.bind_label(lnext);
        }
        if !grounded {
            if self.decls.contains_key(name) {
                let k = self.pools.konst(ConstKey::Fn(name.to_string()));
                self.emit(Op::LoadK, dst, 0, 0);
                self.word(k);
            } else {
                let err = self.pools.error(ops::err_unknown_var(name));
                self.emit(Op::Trap, 0, 0, 0);
                self.word(err);
            }
        }
        self.bind_label(ldone);
    }

    // --------------------------------------------------------------
    // Expressions
    // --------------------------------------------------------------

    fn expr(&mut self, e: &'p Expr, dst: u32) {
        self.tick();
        match &e.kind {
            ExprKind::IntLit(n) => {
                let k = self.pools.konst(ConstKey::Int(*n));
                self.emit(Op::LoadK, dst, 0, 0);
                self.word(k);
            }
            ExprKind::BoolLit(b) => {
                let k = self.pools.konst(ConstKey::Bool(*b));
                self.emit(Op::LoadK, dst, 0, 0);
                self.word(k);
            }
            ExprKind::StrLit(s) => {
                let k = self.pools.konst(ConstKey::Str(s.clone()));
                self.emit(Op::LoadK, dst, 0, 0);
                self.word(k);
            }
            ExprKind::Var(name) => self.read_var(name.name.as_str(), dst),
            ExprKind::Field(base, field) => {
                let save = self.next;
                let t = self.operand(base);
                let n = self.pools.name(field.name.as_str());
                self.flush();
                self.emit(Op::GetField, dst, t, 0);
                self.word(n);
                self.next = save;
            }
            ExprKind::Index(base, idx) => {
                let save = self.next;
                let tb = self.operand(base);
                let ti = self.operand(idx);
                self.flush();
                self.emit(Op::GetIndex, dst, tb, ti);
                self.next = save;
            }
            ExprKind::Call { callee, args, .. } => self.call(callee, args, dst),
            ExprKind::Ctor { name, args, .. } => {
                let save = self.next;
                let base = self.next;
                for a in args {
                    let t = self.alloc();
                    self.expr(a, t);
                }
                let n = self.pools.name(name.name.as_str());
                // Pure: building a variant cannot fault.
                self.emit(Op::Ctor, dst, base, args.len() as u32);
                self.word(n);
                self.next = save;
            }
            ExprKind::New { region, inits, .. } => {
                let save = self.next;
                let base = self.next;
                let mut shape = Vec::with_capacity(inits.len());
                for init in inits {
                    let t = self.alloc();
                    self.expr(&init.value, t);
                    shape.push(self.pools.name(init.name.name.as_str()));
                }
                let shape = self.pools.shape(shape);
                match region {
                    None => {
                        self.flush();
                        self.emit(Op::NewObj, dst, base, 0);
                        self.word(shape);
                    }
                    Some(rexpr) => {
                        // Field initializers evaluate before the region
                        // expression, as in the interpreter.
                        let tr = self.operand(rexpr);
                        self.flush();
                        self.emit(Op::NewIn, dst, tr, base);
                        self.word(shape);
                    }
                }
                self.next = save;
            }
            ExprKind::Unary(op, inner) => {
                let save = self.next;
                let t = self.operand(inner);
                self.flush();
                match op {
                    UnOp::Not => self.emit(Op::Not, dst, t, 0),
                    UnOp::Neg => self.emit(Op::Neg, dst, t, 0),
                }
                self.next = save;
            }
            ExprKind::Binary(op, l, r) => match op {
                BinOp::And | BinOp::Or => self.short_circuit(*op, l, r, dst),
                _ => {
                    let save = self.next;
                    let tl = self.operand(l);
                    let tr = self.operand(r);
                    self.flush();
                    self.emit(Op::Bin, dst, tl, tr);
                    self.word(encode_binop(*op));
                    self.next = save;
                }
            },
        }
    }

    fn short_circuit(&mut self, op: BinOp, l: &'p Expr, r: &'p Expr, dst: u32) {
        let save = self.next;
        let t = self.alloc();
        self.expr(l, t);
        self.flush();
        self.emit(Op::CheckBool, t, 0, 0);
        let lshort = self.label();
        let lend = self.label();
        // `t` holds a verified boolean; these jumps cannot fault.
        match op {
            BinOp::And => self.emit(Op::JmpIfNot, t, 0, 0),
            _ => self.emit(Op::JmpIfTrue, t, 0, 0),
        }
        self.target(lshort);
        self.expr(r, t);
        self.flush();
        self.emit(Op::CheckBool, t, 0, 0);
        self.emit(Op::Move, dst, t, 0);
        self.jmp(lend);
        self.bind_label(lshort);
        let k = self.pools.konst(ConstKey::Bool(matches!(op, BinOp::Or)));
        self.emit(Op::LoadK, dst, 0, 0);
        self.word(k);
        self.bind_label(lend);
        self.next = save;
    }

    /// A call expression. The interpreter resolves the callee *name*
    /// first (burning only the `Call` node), evaluates arguments, then
    /// burns once more inside `call` before dispatching.
    fn call(&mut self, callee: &'p Expr, args: &'p [Expr], dst: u32) {
        let fname: &str = match &callee.kind {
            ExprKind::Var(n) => n.name.as_str(),
            ExprKind::Field(base, f) => {
                let ExprKind::Var(q) = &base.kind else {
                    return self.trap_computed_call();
                };
                let (chain, grounded) = self.chain(q.name.as_str());
                if grounded {
                    // `q` is definitely a local — a computed target.
                    return self.trap_computed_call();
                }
                if !chain.is_empty() {
                    // `q` is bound only on some paths: the interpreter
                    // decides per execution. If any candidate slot is
                    // defined, this is a computed target; otherwise the
                    // qualifier is a module name and the call is `f`.
                    self.flush();
                    for b in &chain {
                        let lnext = self.label();
                        self.emit(Op::JmpUndef, b.reg, 0, 0);
                        self.target(lnext);
                        let err = self.pools.error(ops::err_computed_call());
                        self.emit(Op::Trap, 0, 0, 0);
                        self.word(err);
                        self.bind_label(lnext);
                    }
                }
                f.name.as_str()
            }
            _ => return self.trap_computed_call(),
        };
        let save = self.next;
        let base = self.next;
        for a in args {
            let t = self.alloc();
            self.expr(a, t);
        }
        self.tick(); // the burn inside `Machine::call`
        match self.targets.get(fname) {
            Some(CallTarget::Compiled(fidx)) => {
                let decl = self.decls[fname];
                if decl.params.len() != args.len() {
                    let err =
                        self.pools
                            .error(ops::err_arity(fname, decl.params.len(), args.len()));
                    self.flush();
                    self.emit(Op::Trap, 0, 0, 0);
                    self.word(err);
                } else {
                    self.flush();
                    self.emit(Op::CallFn, dst, base, args.len() as u32);
                    self.word(*fidx as u32);
                }
            }
            _ => {
                let n = self.pools.name(fname);
                self.flush();
                self.emit(Op::CallExt, dst, base, args.len() as u32);
                self.word(n);
            }
        }
        self.next = save;
    }

    fn trap_computed_call(&mut self) {
        let err = self.pools.error(ops::err_computed_call());
        self.flush();
        self.emit(Op::Trap, 0, 0, 0);
        self.word(err);
    }
}
