//! The dispatch-loop VM: executes [`CompiledProgram`] bytecode over the
//! same generation-checked `RegionHeap` oracle as the interpreter, with
//! the same extern table, fuel accounting, and call-depth bound — so a
//! checked program runs at register-machine speed while use-after-delete,
//! leaks, and every other dynamic fault surface identically.

use crate::bytecode::{decode_binop, unpack, CallTarget, CompiledProgram, Op};
use vault_eval::value::Fields;
use vault_eval::{
    ops, EvalError, EvalOutcome, ExternTable, Host, Value, DEFAULT_CALL_DEPTH, DEFAULT_FUEL,
};
use vault_runtime::{RegionHeap, RegionId};

/// A suspended caller: where to resume and where the callee's result goes.
struct Frame {
    fidx: usize,
    ret_pc: usize,
    base: usize,
    dst: usize,
}

/// The bytecode engine. API mirrors `vault_eval::Machine`: construct over
/// a compiled program and an extern table, then [`Vm::run`] entry points;
/// heap, fuel, and extern state persist across runs on one instance.
pub struct Vm<'p> {
    prog: &'p CompiledProgram,
    heap: RegionHeap<Fields>,
    ambient: std::collections::BTreeSet<RegionId>,
    externs: Option<ExternTable>,
    fuel: u64,
    budget: u64,
    depth_limit: usize,
    regs: Vec<Value>,
    defined: Vec<bool>,
    frames: Vec<Frame>,
}

impl<'p> Vm<'p> {
    /// Build a VM over a compiled program and an extern table.
    pub fn new(prog: &'p CompiledProgram, externs: ExternTable) -> Self {
        Vm {
            prog,
            heap: RegionHeap::new(),
            ambient: std::collections::BTreeSet::new(),
            externs: Some(externs),
            fuel: DEFAULT_FUEL,
            budget: DEFAULT_FUEL,
            depth_limit: DEFAULT_CALL_DEPTH,
            regs: Vec::new(),
            defined: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Override the fuel budget.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
        self.budget = fuel;
    }

    /// Override the call-depth bound.
    pub fn set_call_depth_limit(&mut self, limit: usize) {
        self.depth_limit = limit;
    }

    /// Fuel consumed so far (cumulative across runs).
    pub fn fuel_used(&self) -> u64 {
        self.budget - self.fuel
    }

    fn leaked(&self) -> usize {
        let ambient_live = self
            .ambient
            .iter()
            .filter(|r| self.heap.is_live(**r))
            .count();
        self.heap.leaked() - ambient_live
    }

    /// Run an entry function to completion, with resource accounting.
    pub fn run(&mut self, entry: &str, args: Vec<Value>) -> EvalOutcome {
        let result = self.call(entry, args);
        EvalOutcome {
            result,
            leaked_regions: self.leaked(),
            fuel_used: self.fuel_used(),
        }
    }

    fn burn(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Call a compiled function or extern by name.
    pub fn call(&mut self, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        self.burn()?;
        match self.prog.targets.get(name) {
            Some(CallTarget::Compiled(fidx)) => {
                let f = &self.prog.functions[*fidx];
                if args.len() != f.arity {
                    return Err(ops::err_arity(&f.name, f.arity, args.len()));
                }
                if self.depth_limit == 0 {
                    return Err(EvalError::StackOverflow);
                }
                self.exec(*fidx, args)
            }
            _ => self.call_extern(name, args),
        }
    }

    fn call_extern(&mut self, name: &str, args: Vec<Value>) -> Result<Value, EvalError> {
        let Some(mut table) = self.externs.take() else {
            return Err(EvalError::Extern("extern table re-entered".into()));
        };
        let r = table.dispatch(self, name, args);
        self.externs = Some(table);
        r
    }

    /// The dispatch loop. One `Vec<Value>` register stack shared by all
    /// frames (`base`-relative addressing), a parallel defined-flag stack
    /// for conditional bindings, and an explicit frame stack in place of
    /// the interpreter's Rust recursion — which is why the depth bound
    /// here protects fidelity, not the process stack.
    ///
    /// Hot-path layout: the current function's code slice is held in a
    /// local (re-fetched only at calls and returns), every arm advances
    /// `pc` itself so straight-line ops pay no width lookup, and the
    /// all-integer cases of `Bin`/`IncrChk` and the boolean branches are
    /// computed in place — same semantics as the `ops` helpers (which
    /// remain the fallback, so fault behaviour is shared, not forked).
    fn exec(&mut self, entry: usize, args: Vec<Value>) -> Result<Value, EvalError> {
        self.regs.clear();
        self.defined.clear();
        self.frames.clear();
        let prog = self.prog;
        let mut fidx = entry;
        let mut code: &[u32] = &prog.functions[entry].code;
        let mut pc = 0usize;
        let mut base = 0usize;
        self.regs
            .resize(prog.functions[entry].nregs as usize, Value::Unit);
        for (i, v) in args.into_iter().enumerate() {
            self.regs[i] = v;
        }
        self.defined.resize(self.regs.len(), true);

        loop {
            let (opb, a, b, c) = unpack(code[pc]);
            let op = Op::from_u8(opb).expect("compiler emits only valid opcodes");
            let (a, b, c) = (a as usize, b as usize, c as usize);
            match op {
                Op::Fuel => {
                    let n = code[pc + 1] as u64;
                    if self.fuel < n {
                        self.fuel = 0;
                        return Err(EvalError::OutOfFuel);
                    }
                    self.fuel -= n;
                    pc += 2;
                }
                Op::LoadK => {
                    self.regs[base + a] = prog.consts[code[pc + 1] as usize].clone();
                    pc += 2;
                }
                Op::Move => {
                    self.regs[base + a] = self.regs[base + b].clone();
                    pc += 1;
                }
                Op::Jmp => pc = code[pc + 1] as usize,
                Op::JmpIfNot => match self.regs[base + a] {
                    Value::Bool(true) => pc += 2,
                    Value::Bool(false) => pc = code[pc + 1] as usize,
                    _ => return Err(ops::err_non_bool_cond()),
                },
                Op::JmpIfTrue => match self.regs[base + a] {
                    Value::Bool(true) => pc = code[pc + 1] as usize,
                    Value::Bool(false) => pc += 2,
                    _ => return Err(ops::err_non_bool_cond()),
                },
                Op::CheckBool => {
                    if self.regs[base + a].as_bool().is_none() {
                        return Err(ops::err_logic_non_bool());
                    }
                    pc += 1;
                }
                Op::Not => {
                    let v = self.regs[base + b].clone();
                    self.regs[base + a] = ops::unop(vault_syntax::ast::UnOp::Not, v)?;
                    pc += 1;
                }
                Op::Neg => {
                    let v = self.regs[base + b].clone();
                    self.regs[base + a] = ops::unop(vault_syntax::ast::UnOp::Neg, v)?;
                    pc += 1;
                }
                Op::Bin => {
                    let w = code[pc + 1];
                    let v = match (&self.regs[base + b], &self.regs[base + c]) {
                        (&Value::Int(x), &Value::Int(y)) => int_bin(w, x, y)?,
                        (l, r) => ops::binop(decode_binop(w), l.clone(), r.clone())?,
                    };
                    self.regs[base + a] = v;
                    pc += 2;
                }
                Op::IncrChk => {
                    let v = match self.regs[base + b] {
                        Value::Int(n) => Value::Int(n.wrapping_add(if c == 0 { 1 } else { -1 })),
                        _ => return Err(ops::err_incr_non_int()),
                    };
                    self.regs[base + a] = v;
                    pc += 1;
                }
                Op::GetField => {
                    let name = prog.names[code[pc + 1] as usize].as_str();
                    let v = match &self.regs[base + b] {
                        Value::Obj { ptr, .. } => {
                            let fields = self.heap.get(*ptr)?;
                            fields.get(name).cloned().unwrap_or(Value::Unit)
                        }
                        other => return Err(ops::err_field_access_on(other)),
                    };
                    self.regs[base + a] = v;
                    pc += 2;
                }
                Op::SetField => {
                    let name = prog.names[code[pc + 1] as usize].clone();
                    let v = self.regs[base + b].clone();
                    match self.regs[base + a].clone() {
                        Value::Obj { ptr, .. } => {
                            let fields = self.heap.get_mut(ptr)?;
                            fields.insert(name, v);
                        }
                        other => return Err(ops::err_field_assign_on(&other)),
                    }
                    pc += 2;
                }
                Op::GetIndex => {
                    let i = self.regs[base + c]
                        .as_int()
                        .ok_or_else(ops::err_non_int_index)?;
                    let v = match &self.regs[base + b] {
                        Value::Array(arr) => arr
                            .borrow()
                            .get(i as usize)
                            .cloned()
                            .ok_or_else(|| ops::err_index_oob_read(i))?,
                        Value::Str(s) => s
                            .as_bytes()
                            .get(i as usize)
                            .map(|byte| Value::Int(*byte as i64))
                            .ok_or_else(|| ops::err_index_oob_read(i))?,
                        other => return Err(ops::err_indexing(other)),
                    };
                    self.regs[base + a] = v;
                    pc += 1;
                }
                Op::SetIndex => {
                    let i = self.regs[base + b]
                        .as_int()
                        .ok_or_else(ops::err_non_int_index)?;
                    let v = self.regs[base + c].clone();
                    match &self.regs[base + a] {
                        Value::Array(arr) => {
                            let mut arr = arr.borrow_mut();
                            let len = arr.len();
                            let slot = arr
                                .get_mut(i as usize)
                                .ok_or_else(|| ops::err_index_oob_write(i, len))?;
                            *slot = v;
                        }
                        other => return Err(ops::err_index_assign_on(other)),
                    }
                    pc += 1;
                }
                Op::Ctor => {
                    let args: Vec<Value> = self.regs[base + b..base + b + c].to_vec();
                    self.regs[base + a] = Value::Variant {
                        ctor: prog.names[code[pc + 1] as usize].clone(),
                        args,
                    };
                    pc += 2;
                }
                Op::NewObj => {
                    let fields = self.gather_fields(code[pc + 1], base + b);
                    let r = self.heap.create();
                    self.regs[base + a] = self.alloc_in(r, fields)?;
                    pc += 2;
                }
                Op::NewIn => {
                    let fields = self.gather_fields(code[pc + 1], base + c);
                    match self.regs[base + b].clone() {
                        Value::Region(r) => {
                            self.regs[base + a] = self.alloc_in(r, fields)?;
                        }
                        other => return Err(ops::err_alloc_from(&other)),
                    }
                    pc += 2;
                }
                Op::FreeV => {
                    match self.regs[base + a].clone() {
                        Value::Obj { region, .. } => {
                            self.heap.delete(region)?;
                        }
                        Value::Variant { .. } | Value::Opaque(_) => {}
                        Value::Region(r) => {
                            self.heap.delete(r)?;
                        }
                        other => return Err(ops::err_free_on(&other)),
                    }
                    pc += 1;
                }
                Op::CheckVariant => {
                    if !matches!(self.regs[base + a], Value::Variant { .. }) {
                        return Err(ops::err_switch_non_variant(&self.regs[base + a]));
                    }
                    pc += 1;
                }
                Op::TestTag => match &self.regs[base + a] {
                    Value::Variant { ctor, .. } => {
                        if *ctor == prog.names[code[pc + 1] as usize] {
                            pc += 3;
                        } else {
                            pc = code[pc + 2] as usize;
                        }
                    }
                    other => return Err(ops::err_switch_non_variant(other)),
                },
                Op::BindArg => {
                    let v = match &self.regs[base + b] {
                        Value::Variant { args, .. } => args.get(c).cloned().unwrap_or(Value::Unit),
                        other => return Err(ops::err_switch_non_variant(other)),
                    };
                    self.regs[base + a] = v;
                    pc += 1;
                }
                Op::CallFn => {
                    // Active frames = suspended callers + the current one.
                    if self.frames.len() + 1 >= self.depth_limit {
                        return Err(EvalError::StackOverflow);
                    }
                    let callee = code[pc + 1] as usize;
                    let new_base = self.regs.len();
                    for i in 0..c {
                        let v = self.regs[base + b + i].clone();
                        self.regs.push(v);
                    }
                    self.regs.resize(
                        new_base + prog.functions[callee].nregs as usize,
                        Value::Unit,
                    );
                    self.defined.resize(self.regs.len(), true);
                    self.frames.push(Frame {
                        fidx,
                        ret_pc: pc + 2,
                        base,
                        dst: base + a,
                    });
                    fidx = callee;
                    code = &prog.functions[callee].code;
                    base = new_base;
                    pc = 0;
                }
                Op::CallExt => {
                    // The dispatch burn is already in the preceding
                    // Fuel flush; burning here would double-count.
                    let name = prog.names[code[pc + 1] as usize].as_str();
                    let mut args = Vec::with_capacity(c);
                    for i in 0..c {
                        args.push(self.regs[base + b + i].clone());
                    }
                    let v = self.call_extern(name, args)?;
                    self.regs[base + a] = v;
                    pc += 2;
                }
                Op::Ret | Op::RetUnit => {
                    let v = if matches!(op, Op::Ret) {
                        std::mem::replace(&mut self.regs[base + a], Value::Unit)
                    } else {
                        Value::Unit
                    };
                    self.regs.truncate(base);
                    self.defined.truncate(base);
                    match self.frames.pop() {
                        None => return Ok(v),
                        Some(f) => {
                            fidx = f.fidx;
                            code = &prog.functions[f.fidx].code;
                            pc = f.ret_pc;
                            base = f.base;
                            self.regs[f.dst] = v;
                        }
                    }
                }
                Op::Trap => return Err(prog.errors[code[pc + 1] as usize].clone()),
                Op::Def => {
                    self.defined[base + a] = true;
                    pc += 1;
                }
                Op::Undef => {
                    self.defined[base + a] = false;
                    pc += 1;
                }
                Op::JmpUndef => {
                    if self.defined[base + a] {
                        pc += 2;
                    } else {
                        pc = code[pc + 1] as usize;
                    }
                }
            }
        }
    }

    fn gather_fields(&self, shape: u32, base: usize) -> Fields {
        let mut fields = Fields::new();
        for (k, name) in self.prog.shapes[shape as usize].iter().enumerate() {
            fields.insert(
                self.prog.names[*name as usize].clone(),
                self.regs[base + k].clone(),
            );
        }
        fields
    }
}

/// [`Op::Bin`] on two integers: `ops::binop`'s exact semantics (wrapping
/// arithmetic, `DivideByZero` on `/ 0` and `% 0`, structural `==`),
/// computed without routing two cloned `Value`s through the general
/// path. The operator encoding is `encode_binop`'s.
#[inline]
fn int_bin(w: u32, a: i64, b: i64) -> Result<Value, EvalError> {
    Ok(match w {
        0 => Value::Int(a.wrapping_add(b)),
        1 => Value::Int(a.wrapping_sub(b)),
        2 => Value::Int(a.wrapping_mul(b)),
        3 => {
            if b == 0 {
                return Err(EvalError::DivideByZero);
            }
            Value::Int(a.wrapping_div(b))
        }
        4 => {
            if b == 0 {
                return Err(EvalError::DivideByZero);
            }
            Value::Int(a.wrapping_rem(b))
        }
        5 => Value::Bool(a == b),
        6 => Value::Bool(a != b),
        7 => Value::Bool(a < b),
        8 => Value::Bool(a <= b),
        9 => Value::Bool(a > b),
        _ => Value::Bool(a >= b),
    })
}

impl<'p> Host for Vm<'p> {
    fn create_region(&mut self) -> RegionId {
        self.heap.create()
    }

    fn delete_region(&mut self, r: RegionId) -> Result<(), EvalError> {
        self.heap.delete(r)?;
        Ok(())
    }

    fn alloc_in(&mut self, r: RegionId, fields: Fields) -> Result<Value, EvalError> {
        let ptr = self.heap.alloc(r, fields)?;
        Ok(Value::Obj { region: r, ptr })
    }

    fn touch_object(&self, v: &Value) -> Result<(), EvalError> {
        match v {
            Value::Obj { ptr, .. } => {
                self.heap.get(*ptr)?;
                Ok(())
            }
            Value::Region(r) => {
                if self.heap.is_live(*r) {
                    Ok(())
                } else {
                    Err(EvalError::UseAfterDelete)
                }
            }
            _ => Ok(()),
        }
    }

    fn alloc_ambient(&mut self, fields: Fields) -> Value {
        let r = self.create_ambient_region();
        let ptr = self.heap.alloc(r, fields).expect("fresh region");
        Value::Obj { region: r, ptr }
    }

    fn create_ambient_region(&mut self) -> RegionId {
        let r = self.heap.create();
        self.ambient.insert(r);
        r
    }
}
