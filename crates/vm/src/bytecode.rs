//! The Vault register bytecode: a dense `u32` ISA.
//!
//! Every instruction is one head word `[op:8 | a:8 | b:8 | c:8]` plus
//! zero or more full-width operand words (call targets, constant-pool
//! indices, jump targets, interned names, trap payloads). Registers are
//! function-local and at most 255 per function; wide operands index the
//! program-level pools on [`CompiledProgram`], so the instruction stream
//! itself carries no strings and no pointers — symbols are interned at
//! compile time, call targets pre-resolved to function indices.
//!
//! Fuel is explicit in the ISA: the compiler coalesces the interpreter's
//! per-AST-node burns over runs of *pure* instructions (loads, moves,
//! jumps, value construction) and emits a single [`Op::Fuel`] flush
//! before every observable instruction — one branch in the dispatch
//! loop where the tree-walker pays one per node. See `compile.rs` for
//! the parity argument.

use std::collections::BTreeMap;
use vault_eval::{EvalError, Value};
use vault_syntax::ast::BinOp;

/// Opcodes. The `a`/`b`/`c` head fields are register numbers unless
/// noted; `w1`/`w2` are the following operand words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Op {
    /// `w1 = n`: burn `n` fuel, faulting with `OutOfFuel` at zero.
    Fuel = 0,
    /// `a = dst, w1 = const index`: load a constant-pool value.
    LoadK = 1,
    /// `a = dst, b = src`: copy a register.
    Move = 2,
    /// `w1 = target`: unconditional jump.
    Jmp = 3,
    /// `a = cond, w1 = target`: jump when false; faults `non-bool
    /// condition` on a non-boolean.
    JmpIfNot = 4,
    /// `a = cond, w1 = target`: jump when true (operand pre-validated).
    JmpIfTrue = 5,
    /// `a = src`: fault `logic on non-bool` unless the register holds a
    /// boolean (validates `&&`/`||` operands).
    CheckBool = 6,
    /// `a = dst, b = src`: boolean negation.
    Not = 7,
    /// `a = dst, b = src`: integer negation (wrapping).
    Neg = 8,
    /// `a = dst, b = lhs, c = rhs, w1 = operator`: non-short-circuit
    /// binary operator (see [`encode_binop`]).
    Bin = 9,
    /// `a = dst, b = src, c = 0 (++) / 1 (--)`: checked wrapping step.
    IncrChk = 10,
    /// `a = dst, b = obj, w1 = name`: field read (missing fields yield
    /// `void`, like the interpreter).
    GetField = 11,
    /// `a = obj, b = val, w1 = name`: field write.
    SetField = 12,
    /// `a = dst, b = base, c = idx`: array/string index read.
    GetIndex = 13,
    /// `a = base, b = idx, c = val`: array index write.
    SetIndex = 14,
    /// `a = dst, b = arg base, c = argc, w1 = name`: build a variant.
    Ctor = 15,
    /// `a = dst, b = field base, w1 = shape`: `new tracked` — fresh
    /// private region plus allocation.
    NewObj = 16,
    /// `a = dst, b = region, c = field base, w1 = shape`: `new(rgn)`.
    NewIn = 17,
    /// `a = src`: `free(v)` — deletes the backing region.
    FreeV = 18,
    /// `a = src`: fault `switch on a non-variant` unless a variant.
    CheckVariant = 19,
    /// `a = scrutinee, w1 = ctor name, w2 = target`: jump unless the
    /// variant's tag matches.
    TestTag = 20,
    /// `a = dst, b = scrutinee, c = component index`: bind a switch-arm
    /// component (`void` when the payload is shorter).
    BindArg = 21,
    /// `a = dst, b = arg base, c = argc, w1 = function index`: call a
    /// compiled function (pre-resolved target).
    CallFn = 22,
    /// `a = dst, b = arg base, c = argc, w1 = name`: dispatch to the
    /// extern table.
    CallExt = 23,
    /// `a = src`: return a value, popping the frame.
    Ret = 24,
    /// Return `void`.
    RetUnit = 25,
    /// `w1 = error index`: raise a pre-built fault (deferred
    /// compile-time findings — unknown variables, arity mismatches,
    /// unsupported constructs — fault only if reached, as in the
    /// interpreter).
    Trap = 26,
    /// `a = reg`: mark a conditionally-bound register defined.
    Def = 27,
    /// `a = reg`: mark a conditionally-bound register undefined (block
    /// entry reset; models a name not yet inserted in its scope frame).
    Undef = 28,
    /// `a = reg, w1 = target`: jump when the register is undefined
    /// (resolution chains for conditionally-bound names).
    JmpUndef = 29,
}

impl Op {
    /// Decode an opcode byte. The compiler is the only producer, so an
    /// unknown byte is a corrupt program, not user input.
    pub fn from_u8(b: u8) -> Option<Op> {
        if b <= Op::JmpUndef as u8 {
            // Safety not needed: exhaustive match keeps this honest.
            Some(match b {
                0 => Op::Fuel,
                1 => Op::LoadK,
                2 => Op::Move,
                3 => Op::Jmp,
                4 => Op::JmpIfNot,
                5 => Op::JmpIfTrue,
                6 => Op::CheckBool,
                7 => Op::Not,
                8 => Op::Neg,
                9 => Op::Bin,
                10 => Op::IncrChk,
                11 => Op::GetField,
                12 => Op::SetField,
                13 => Op::GetIndex,
                14 => Op::SetIndex,
                15 => Op::Ctor,
                16 => Op::NewObj,
                17 => Op::NewIn,
                18 => Op::FreeV,
                19 => Op::CheckVariant,
                20 => Op::TestTag,
                21 => Op::BindArg,
                22 => Op::CallFn,
                23 => Op::CallExt,
                24 => Op::Ret,
                25 => Op::RetUnit,
                26 => Op::Trap,
                27 => Op::Def,
                28 => Op::Undef,
                _ => Op::JmpUndef,
            })
        } else {
            None
        }
    }

    /// Number of full-width operand words following the head word.
    pub fn words(self) -> usize {
        match self {
            Op::Fuel
            | Op::LoadK
            | Op::Jmp
            | Op::JmpIfNot
            | Op::JmpIfTrue
            | Op::Bin
            | Op::GetField
            | Op::SetField
            | Op::Ctor
            | Op::NewObj
            | Op::NewIn
            | Op::CallFn
            | Op::CallExt
            | Op::Trap
            | Op::JmpUndef => 1,
            Op::TestTag => 2,
            Op::Move
            | Op::CheckBool
            | Op::Not
            | Op::Neg
            | Op::IncrChk
            | Op::GetIndex
            | Op::SetIndex
            | Op::FreeV
            | Op::CheckVariant
            | Op::BindArg
            | Op::Ret
            | Op::RetUnit
            | Op::Def
            | Op::Undef => 0,
        }
    }
}

/// Pack a head word.
pub fn pack(op: Op, a: u8, b: u8, c: u8) -> u32 {
    ((op as u32) << 24) | ((a as u32) << 16) | ((b as u32) << 8) | c as u32
}

/// Unpack a head word into `(op byte, a, b, c)`.
pub fn unpack(w: u32) -> (u8, u8, u8, u8) {
    ((w >> 24) as u8, (w >> 16) as u8, (w >> 8) as u8, w as u8)
}

/// Encode a non-short-circuit binary operator for [`Op::Bin`].
pub fn encode_binop(op: BinOp) -> u32 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        // `&&`/`||` are control flow, never `Bin`.
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops are compiled to branches"),
    }
}

/// Decode an [`Op::Bin`] operator word.
pub fn decode_binop(w: u32) -> BinOp {
    match w {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        _ => BinOp::Ge,
    }
}

/// How a call by name resolves: a compiled function or the extern table.
/// Mirrors the interpreter's last-declaration-wins function map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallTarget {
    /// Index into [`CompiledProgram::functions`].
    Compiled(usize),
    /// Signature-only (or undeclared): dispatched to the extern table.
    Extern,
}

/// One compiled function.
#[derive(Clone, Debug)]
pub struct CompiledFn {
    /// Source-level name (diagnostics, disassembly).
    pub name: String,
    /// Number of parameters (checked at the `run` boundary; call sites
    /// are checked at compile time).
    pub arity: usize,
    /// Registers this function needs (params in `0..arity`).
    pub nregs: u32,
    /// The instruction stream. Always ends in `Ret`/`RetUnit`/`Trap`.
    pub code: Vec<u32>,
}

/// A compiled program: bytecode plus the interned operand pools.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    /// Compiled function bodies.
    pub functions: Vec<CompiledFn>,
    /// Name → call resolution, last declaration wins (the interpreter's
    /// dispatch map, frozen at compile time).
    pub targets: BTreeMap<String, CallTarget>,
    /// Constant pool (literals, `void`, function values).
    pub consts: Vec<Value>,
    /// Interned strings: field names, constructor tags, extern names.
    pub names: Vec<String>,
    /// Field-list shapes for `NewObj`/`NewIn` (indices into `names`,
    /// initializer order).
    pub shapes: Vec<Vec<u32>>,
    /// Pre-built faults for `Trap`.
    pub errors: Vec<EvalError>,
    /// Functions whose bodies exceeded the 255-register file and were
    /// compiled to a trap stub. Empty for every real program; the
    /// differential harness skips programs listed here.
    pub overflowed: Vec<String>,
}

impl CompiledProgram {
    /// Total instruction words across all functions.
    pub fn code_words(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

/// Render a compiled program as assembly-ish text (docs and debugging;
/// the ISA appendix in DESIGN.md is produced from this).
pub fn disasm(p: &CompiledProgram) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for f in &p.functions {
        let _ = writeln!(out, "fn {} (arity {}, {} regs):", f.name, f.arity, f.nregs);
        let mut pc = 0;
        while pc < f.code.len() {
            let (opb, a, b, c) = unpack(f.code[pc]);
            let Some(op) = Op::from_u8(opb) else {
                let _ = writeln!(out, "  {pc:4}: ?? {:#010x}", f.code[pc]);
                pc += 1;
                continue;
            };
            let w = |i: usize| f.code.get(pc + 1 + i).copied().unwrap_or(0);
            let txt = match op {
                Op::Fuel => format!("fuel {}", w(0)),
                Op::LoadK => format!("loadk r{a}, {}", pool(&p.consts, w(0))),
                Op::Move => format!("move r{a}, r{b}"),
                Op::Jmp => format!("jmp {}", w(0)),
                Op::JmpIfNot => format!("jf r{a}, {}", w(0)),
                Op::JmpIfTrue => format!("jt r{a}, {}", w(0)),
                Op::CheckBool => format!("ckbool r{a}"),
                Op::Not => format!("not r{a}, r{b}"),
                Op::Neg => format!("neg r{a}, r{b}"),
                Op::Bin => format!("bin.{:?} r{a}, r{b}, r{c}", decode_binop(w(0))),
                Op::IncrChk => format!("incr r{a}, r{b}, {}", if c == 0 { "+1" } else { "-1" }),
                Op::GetField => format!("getf r{a}, r{b}.{}", pool(&p.names, w(0))),
                Op::SetField => format!("setf r{a}.{}, r{b}", pool(&p.names, w(0))),
                Op::GetIndex => format!("geti r{a}, r{b}[r{c}]"),
                Op::SetIndex => format!("seti r{a}[r{b}], r{c}"),
                Op::Ctor => format!("ctor r{a}, '{} r{b}..{}", pool(&p.names, w(0)), argc(b, c)),
                Op::NewObj => format!("new r{a}, shape#{} r{b}..", w(0)),
                Op::NewIn => format!("newin r{a}, rgn r{b}, shape#{} r{c}..", w(0)),
                Op::FreeV => format!("free r{a}"),
                Op::CheckVariant => format!("ckvar r{a}"),
                Op::TestTag => format!("tag r{a} != '{} -> {}", pool(&p.names, w(0)), w(1)),
                Op::BindArg => format!("bind r{a}, r{b}.{c}"),
                Op::CallFn => {
                    let name = p
                        .functions
                        .get(w(0) as usize)
                        .map(|f| f.name.as_str())
                        .unwrap_or("?");
                    format!("call r{a}, {name} r{b}..{}", argc(b, c))
                }
                Op::CallExt => format!("callx r{a}, {} r{b}..{}", pool(&p.names, w(0)), argc(b, c)),
                Op::Ret => format!("ret r{a}"),
                Op::RetUnit => "ret".into(),
                Op::Trap => format!("trap {}", pool(&p.errors, w(0))),
                Op::Def => format!("def r{a}"),
                Op::Undef => format!("undef r{a}"),
                Op::JmpUndef => format!("ju r{a}, {}", w(0)),
            };
            let _ = writeln!(out, "  {pc:4}: {txt}");
            pc += 1 + op.words();
        }
    }
    out
}

fn argc(base: u8, n: u8) -> String {
    format!("r{}", base as u32 + n as u32)
}

fn pool<T: std::fmt::Debug>(pool: &[T], idx: u32) -> String {
    pool.get(idx as usize)
        .map(|v| format!("{v:?}"))
        .unwrap_or_else(|| format!("#{idx}"))
}
