//! The differential harness: run a program's entry points on the
//! tree-walking interpreter and on the bytecode VM and demand the exact
//! same [`EvalOutcome`] — value or fault (variant *and* message), leaked
//! region count, and fuel consumed. This is the proof of the erasure
//! story: the compiled ISA is semantics-preserving across the whole
//! corpus, including programs the static checker rejects.
//!
//! Arguments are synthesized from surface parameter types through the
//! [`Host`] interface, so both engines construct their fixtures the same
//! way (ambient regions/objects in identical creation order yield equal
//! `RegionId`s on both fresh heaps).

use crate::bytecode::CompiledProgram;
use crate::compile::compile;
use crate::vm::Vm;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use vault_eval::value::Fields;
use vault_eval::{EvalOutcome, ExternTable, Host, Machine, Value};
use vault_syntax::ast::{FunDecl, Program, TypeKind};
use vault_syntax::{parse_program, DiagSink};

/// A per-entry comparison that disagreed.
pub struct Divergence {
    /// The entry function name.
    pub entry: String,
    /// What the interpreter produced.
    pub interp: EvalOutcome,
    /// What the VM produced.
    pub vm: EvalOutcome,
}

impl std::fmt::Debug for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entry `{}`:\n  interp: {:?}\n  vm:     {:?}",
            self.entry, self.interp, self.vm
        )
    }
}

/// Why a program could not be compared at all.
#[derive(Debug)]
pub enum Skip {
    /// The source did not parse (mutants often don't); nothing to run.
    Parse,
    /// A function overflowed the register file; the VM declares it
    /// unsupported rather than diverging silently, and the harness skips.
    RegisterOverflow(Vec<String>),
}

/// Synthesize a call argument for a surface parameter type, creating any
/// needed fixtures through the engine's [`Host`] interface.
pub fn synth_arg(host: &mut dyn Host, ty: &TypeKind) -> Value {
    match ty {
        TypeKind::Int | TypeKind::Byte => Value::Int(7),
        TypeKind::Bool => Value::Bool(true),
        TypeKind::Str => Value::Str("x".into()),
        TypeKind::Array(_) => Value::Array(Rc::new(RefCell::new(vec![Value::Int(0); 8]))),
        TypeKind::Tracked { inner, .. } | TypeKind::Guarded { inner, .. } => {
            synth_arg(host, &inner.kind)
        }
        TypeKind::Named { name, .. } if name.name.as_str() == "region" => {
            Value::Region(host.create_ambient_region())
        }
        TypeKind::Named { .. } => host.alloc_ambient(Fields::new()),
        TypeKind::Void | TypeKind::Tuple(_) | TypeKind::Fn(_) => Value::Unit,
    }
}

fn synth_args(host: &mut dyn Host, f: &FunDecl) -> Vec<Value> {
    f.params
        .iter()
        .map(|p| synth_arg(host, &p.ty.kind))
        .collect()
}

/// The callable body functions of a program, in dispatch order — the
/// last declaration per name wins, exactly as both engines dispatch.
pub fn entries(program: &Program) -> Vec<&FunDecl> {
    let mut by_name: BTreeMap<String, &FunDecl> = BTreeMap::new();
    for f in program.functions() {
        by_name.insert(f.name.name.to_string(), f);
    }
    by_name.into_values().filter(|f| f.body.is_some()).collect()
}

/// Run every entry of `program` on both engines with the given fuel and
/// collect any divergences. `mk_externs` is called once per engine per
/// entry so each run gets fresh extern state.
pub fn diff_program(
    program: &Program,
    compiled: &CompiledProgram,
    fuel: u64,
    mk_externs: &dyn Fn() -> ExternTable,
) -> Result<Vec<Divergence>, Skip> {
    if !compiled.overflowed.is_empty() {
        return Err(Skip::RegisterOverflow(compiled.overflowed.clone()));
    }
    let mut divergences = Vec::new();
    for f in entries(program) {
        let entry = f.name.name.to_string();

        let mut interp = Machine::new(program, mk_externs());
        interp.set_fuel(fuel);
        let args = synth_args(&mut interp, f);
        let interp_out = interp.run(&entry, args);

        let mut vm = Vm::new(compiled, mk_externs());
        vm.set_fuel(fuel);
        let args = synth_args(&mut vm, f);
        let vm_out = vm.run(&entry, args);

        if interp_out != vm_out {
            divergences.push(Divergence {
                entry,
                interp: interp_out,
                vm: vm_out,
            });
        }
    }
    Ok(divergences)
}

/// Parse-compile-and-diff a source text. Returns the number of entries
/// compared; unparseable sources and register overflows are [`Skip`]s,
/// divergences are collected for the caller to assert on.
pub fn diff_source(
    src: &str,
    fuel: u64,
    mk_externs: &dyn Fn() -> ExternTable,
) -> Result<(usize, Vec<Divergence>), Skip> {
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    if diags.has_errors() {
        return Err(Skip::Parse);
    }
    let compiled = compile(&program);
    let n = entries(&program).len();
    let divergences = diff_program(&program, &compiled, fuel, mk_externs)?;
    Ok((n, divergences))
}

/// Assert a source program is outcome-identical across engines on every
/// entry, panicking with a full report (including the disassembly) if a
/// divergence is found. Returns the number of entries compared.
pub fn assert_identical(
    label: &str,
    src: &str,
    fuel: u64,
    mk_externs: &dyn Fn() -> ExternTable,
) -> usize {
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    assert!(
        !diags.has_errors(),
        "[{label}] does not parse: {:?}",
        diags.diagnostics()
    );
    let compiled = compile(&program);
    match diff_program(&program, &compiled, fuel, mk_externs) {
        Err(skip) => panic!("[{label}] not comparable: {skip:?}"),
        Ok(divergences) => {
            assert!(
                divergences.is_empty(),
                "[{label}] engines diverged:\n{divergences:#?}\n\n{}",
                crate::bytecode::disasm(&compiled)
            );
        }
    }
    entries(&program).len()
}
