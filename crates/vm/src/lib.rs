//! `vault-vm`: a register-bytecode backend for checked Vault programs.
//!
//! The paper's erasure theorem says a checked Vault program needs *no*
//! runtime protocol machinery — keys, guards, and tracked types all
//! compile away. The tree-walking interpreter in `vault-eval`
//! demonstrates that semantically; this crate demonstrates it at
//! machine-model fidelity: the elaborated AST compiles to a dense
//! `u32`-encoded register ISA ([`bytecode`]) with interned symbols,
//! pre-resolved call targets and field shapes, and explicit fuel ticks,
//! executed by a dispatch-loop VM ([`vm`]) over the same
//! generation-checked region heap. Use-after-delete, double-delete,
//! leaks, fuel exhaustion, and call-depth faults surface *identically*
//! to the interpreter — proven by the differential [`harness`] across
//! the whole corpus, including statically rejected programs.
//!
//! ```
//! use vault_eval::{ExternTable, Value};
//! use vault_syntax::{parse_program, DiagSink};
//!
//! let mut diags = DiagSink::new();
//! let program = parse_program(
//!     "int add(int a, int b) { return a + b; }",
//!     &mut diags,
//! );
//! let compiled = vault_vm::compile(&program);
//! let mut vm = vault_vm::Vm::new(&compiled, ExternTable::new());
//! let out = vm.run("add", vec![Value::Int(40), Value::Int(2)]);
//! assert_eq!(out.result, Ok(Value::Int(42)));
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod compile;
pub mod harness;
pub mod vm;

pub use bytecode::{disasm, CallTarget, CompiledFn, CompiledProgram, Op};
pub use compile::compile;
pub use vm::Vm;
