//! Targeted differential smoke tests: small programs chosen to hit the
//! compiler's hard corners — conditional bindings, shadowing, dynamic
//! module-qualifier resolution, short-circuiting, deferred traps — each
//! swept across *every* fuel budget from zero to completion, which
//! exhaustively validates the batched-fuel flush discipline against the
//! interpreter's one-burn-per-node accounting.

use vault_eval::{ExternTable, Machine, Value};
use vault_syntax::{parse_program, DiagSink};
use vault_vm::harness::assert_identical;
use vault_vm::Vm;

/// Diff every entry at every budget in `0..=limit` plus the default.
fn sweep(label: &str, src: &str) {
    // Find a budget that lets the program finish, then sweep past it.
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    assert!(!diags.has_errors(), "[{label}] {:?}", diags.diagnostics());
    let mut m = Machine::new(&program, ExternTable::with_regions());
    drop(m.run("main", vec![]));
    let full = m.fuel_used() + 10;
    for fuel in 0..=full {
        assert_identical(
            &format!("{label} @fuel={fuel}"),
            src,
            fuel,
            &ExternTable::with_regions,
        );
    }
}

#[test]
fn arithmetic_loops_and_recursion() {
    sweep(
        "fib+loop",
        "
int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}
int main() {
  int acc = 0;
  int i = 0;
  while (i < 8) { acc = acc + fib(i); i++; }
  return acc;
}",
    );
}

#[test]
fn conditional_bindings_resolve_like_frames() {
    // `x` declared only on one branch: reads after the `if` must fall
    // back to the outer binding when the branch didn't run — and the
    // same-frame shadow (`int x = 2` inside the branch) must reuse the
    // very same slot the second read sees.
    sweep(
        "cond-binding",
        "
int pick(bool c) {
  int x = 1;
  if (c) int x = 2;
  return x;
}
int outer(bool c) {
  int y = 10;
  {
    if (c) int y = 20;
    y = y + 1;
  }
  return y;
}
int main() { return pick(true) + pick(false) + outer(true) + outer(false); }",
    );
}

#[test]
fn short_circuit_and_increments() {
    sweep(
        "logic",
        "
bool nope() { return false; }
int main() {
  int n = 0;
  if (true || nope()) n++;
  if (false && nope()) n = 100;
  bool b = n > 0 && n < 5;
  if (b) n--;
  n++;
  return n;
}",
    );
}

#[test]
fn switch_binders_and_fallthrough() {
    sweep(
        "switch",
        "
variant shape [ 'Dot | 'Line(int) | 'Rect(int, int) ];
int area(shape s) {
  switch (s) {
    case 'Rect(w, h): return w * h;
    case 'Line(len): { int w = len; return w; }
    case 'Dot:
  }
  return 0;
}
int main() {
  return area('Rect(3, 4)) + area('Line(5)) + area('Dot);
}",
    );
}

#[test]
fn regions_structs_and_free() {
    sweep(
        "regions",
        "
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
struct point { int x; int y; }
int main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=4; y=2;};
  int got = pt.x + pt.y;
  Region.delete(rgn);
  return got;
}",
    );
}

#[test]
fn dangling_and_double_delete_fault_identically() {
    sweep(
        "dangling",
        "
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
struct point { int x; }
int main() {
  tracked(R) region rgn = Region.create();
  R:point pt = new(rgn) point {x=1;};
  Region.delete(rgn);
  return pt.x;
}",
    );
    sweep(
        "double-delete",
        "
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
void main() {
  tracked(R) region rgn = Region.create();
  Region.delete(rgn);
  Region.delete(rgn);
}",
    );
}

#[test]
fn module_qualified_calls_respect_lexical_shadowing() {
    // `Region.create` is a module call only when `Region` is not bound;
    // a conditional local decides that *dynamically*.
    sweep(
        "qualified",
        "
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
int main() {
  if (false) int Region = 1;
  tracked(R) region rgn = Region.create();
  Region.delete(rgn);
  return 7;
}",
    );
}

#[test]
fn deferred_faults_fire_only_when_reached() {
    // Unknown variables and arity mismatches in dead code are not
    // errors; reached, they fault with the interpreter's message.
    sweep(
        "deferred",
        "
int two(int a, int b) { return a + b; }
int main(bool c) {
  if (c) return 1;
  return two(1) + missing;
}",
    );
}

#[test]
fn runaway_recursion_overflows_both_engines() {
    let src = "int down(int n) { return down(n - 1); }
int main() { return down(0); }";
    assert_identical("overflow", src, 1_000_000, &ExternTable::new);
}

#[test]
fn vm_state_persists_across_runs_like_the_interpreter() {
    let src = "
interface REGION {
  type region;
  tracked(R) region create() [new R];
  void delete(tracked(R) region) [-R];
}
void leak() { tracked(R) region rgn = Region.create(); }
int main() { return 1; }";
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    assert!(!diags.has_errors());
    let compiled = vault_vm::compile(&program);

    let mut m = Machine::new(&program, ExternTable::with_regions());
    let mut v = Vm::new(&compiled, ExternTable::with_regions());
    for _ in 0..3 {
        let a = m.run("leak", vec![]);
        let b = v.run("leak", vec![]);
        assert_eq!(a, b);
    }
    // Cumulative leaks and fuel survive across runs on both engines.
    let a = m.run("main", vec![]);
    let b = v.run("main", vec![]);
    assert_eq!(a, b);
    assert_eq!(a.leaked_regions, 3);
    assert_eq!(a.result, Ok(Value::Int(1)));
}

#[test]
fn disasm_renders_every_opcode_family() {
    let src = "
variant opt [ 'Some(int) | 'None ];
int main(bool c, int n) {
  int acc = 0;
  int i = 0;
  while (i < n) { acc = acc + i; i++; }
  if (c) acc = -acc;
  switch ('Some(acc)) { case 'Some(v): return v; case 'None: }
  return 0;
}";
    let mut diags = DiagSink::new();
    let program = parse_program(src, &mut diags);
    assert!(!diags.has_errors());
    let compiled = vault_vm::compile(&program);
    let asm = vault_vm::disasm(&compiled);
    for needle in [
        "fuel", "loadk", "jmp", "bin.Lt", "incr", "tag", "bind", "ret",
    ] {
        assert!(asm.contains(needle), "disasm missing `{needle}`:\n{asm}");
    }
}
