//! The erasure proof: every corpus program — paper figures, kernel
//! interface, floppy driver and its seeded-bug mutants, extensions,
//! execution kernels; statically accepted and rejected alike — runs on
//! both engines, at several fuel budgets, and every entry must produce
//! a byte-for-byte identical `EvalOutcome`: result or fault (variant
//! and message), leaked-region count, and fuel consumed.
//!
//! Entries whose externs aren't modelled by the plain region table fault
//! with `UnknownFunction` — on both engines, at the same point, with the
//! same fuel spent, which is exactly the assertion. The richer extern
//! worlds (pipeline, failure-aware allocation, sockets) are compared in
//! `differential_workloads.rs`.

use vault_eval::{ExternTable, DEFAULT_FUEL};
use vault_vm::harness::assert_identical;

/// Tiny budgets force `OutOfFuel` inside argument evaluation, call
/// setup, and loop headers; the default budget lets everything that
/// terminates terminate. Identical `fuel_used` is asserted throughout.
const BUDGETS: [u64; 3] = [7, 101, DEFAULT_FUEL];

#[test]
fn every_corpus_program_is_outcome_identical_across_engines() {
    let mut entries_compared = 0usize;
    let programs = vault_corpus::all_programs();
    assert!(programs.len() >= 30, "corpus shrank? {}", programs.len());
    for p in &programs {
        for fuel in BUDGETS {
            entries_compared += assert_identical(
                &format!("{} @fuel={fuel}", p.id),
                &p.source,
                fuel,
                &ExternTable::with_regions,
            );
        }
    }
    // A meaningful sweep, not a vacuous loop.
    assert!(
        entries_compared >= 100,
        "only {entries_compared} entry comparisons ran"
    );
}

#[test]
fn execution_kernels_complete_identically_at_default_fuel() {
    // The X6 kernels must actually *finish* under the default budget on
    // both engines (they exist to measure steady-state throughput), and
    // agree on the result.
    for p in vault_corpus::programs_for("X6") {
        let n = assert_identical(p.id, &p.source, DEFAULT_FUEL, &ExternTable::with_regions);
        assert!(n >= 1);
        let mut diags = vault_syntax::DiagSink::new();
        let program = vault_syntax::parse_program(&p.source, &mut diags);
        assert!(!diags.has_errors());
        let mut m = vault_eval::Machine::new(&program, ExternTable::with_regions());
        let out = m.run("main", vec![]);
        assert!(
            matches!(out.result, Ok(vault_eval::Value::Int(_))),
            "[{}] kernel did not complete: {:?}",
            p.id,
            out.result
        );
        assert!(
            out.fuel_used < DEFAULT_FUEL,
            "[{}] kernel exhausted its budget",
            p.id
        );
        assert!(
            out.fuel_used > 10_000,
            "[{}] kernel too light to measure throughput ({} fuel)",
            p.id,
            out.fuel_used
        );
    }
}
