//! Differential execution under the rich extern worlds: the staged
//! compiler pipeline (X1), failure-aware allocation (X2, both extern
//! behaviours), and the Fig. 3 socket programs over the in-memory
//! network simulator (E2). The same `&mut dyn Host` extern closures
//! drive both engines — the point of the shared `Host` interface — and
//! every run must agree on outcome, world-level leak accounting, and
//! protocol-violation counts.

use std::cell::RefCell;
use std::rc::Rc;
use vault_eval::value::Fields;
use vault_eval::{EvalError, EvalOutcome, ExternTable, Host, Machine, Value};
use vault_runtime::{CommStyle, Domain, Network, SockId, SocketError};
use vault_syntax::{parse_program, DiagSink};
use vault_vm::Vm;

fn corpus(id: &str) -> vault_corpus::CorpusProgram {
    vault_corpus::all_programs()
        .into_iter()
        .find(|p| p.id == id)
        .unwrap_or_else(|| panic!("no corpus program `{id}`"))
}

/// Run one entry on both engines with per-engine extern tables and
/// assert identical outcomes. `mk_args` synthesizes the entry arguments
/// through the engine's `Host` so fixtures are built identically.
fn diff_with(
    id: &str,
    entry: &str,
    mk_externs: &dyn Fn() -> ExternTable,
    mk_args: &dyn Fn(&mut dyn Host) -> Vec<Value>,
) -> (EvalOutcome, EvalOutcome) {
    let p = corpus(id);
    let mut diags = DiagSink::new();
    let program = parse_program(&p.source, &mut diags);
    assert!(!diags.has_errors(), "[{id}] {:?}", diags.diagnostics());
    let compiled = vault_vm::compile(&program);

    let mut m = Machine::new(&program, mk_externs());
    let args = mk_args(&mut m);
    let a = m.run(entry, args);

    let mut v = Vm::new(&compiled, mk_externs());
    let args = mk_args(&mut v);
    let b = v.run(entry, args);

    assert_eq!(a, b, "[{id}::{entry}] engines diverged");
    (a, b)
}

// ---------------------------------------------------------------------
// X1: the staged pipeline
// ---------------------------------------------------------------------

fn pipeline_externs() -> ExternTable {
    let mut t = ExternTable::with_regions();
    let stage_fn = |name: &'static str| {
        move |m: &mut dyn Host, args: Vec<Value>| {
            for input in &args[1..] {
                m.touch_object(input)?;
            }
            match &args[0] {
                Value::Region(r) => {
                    let mut fields = Fields::new();
                    fields.insert("stage".into(), Value::Str(name.into()));
                    m.alloc_in(*r, fields)
                }
                other => Err(EvalError::Type(format!(
                    "{name} expects a region, got {}",
                    other.describe()
                ))),
            }
        }
    };
    t.insert("lex", stage_fn("lex"));
    t.insert("parse", stage_fn("parse"));
    t.insert("typecheck", stage_fn("typecheck"));
    t.insert("emit", stage_fn("emit"));
    t.insert("write_output", |m: &mut dyn Host, args: Vec<Value>| {
        m.touch_object(&args[0])?;
        Ok(Value::Unit)
    });
    t
}

fn src_arg(_h: &mut dyn Host) -> Vec<Value> {
    vec![Value::Str("void f() {}".into())]
}

#[test]
fn pipeline_clean_early_free_and_leak_are_identical() {
    let (a, _) = diff_with(
        "pipeline_staged_regions",
        "compile",
        &pipeline_externs,
        &src_arg,
    );
    assert_eq!(a.result, Ok(Value::Unit));
    assert_eq!(a.leaked_regions, 0);

    let (a, _) = diff_with(
        "pipeline_stage_freed_too_early",
        "compile",
        &pipeline_externs,
        &src_arg,
    );
    assert_eq!(a.result, Err(EvalError::UseAfterDelete));

    let (a, _) = diff_with(
        "pipeline_stage_leaked",
        "compile",
        &pipeline_externs,
        &src_arg,
    );
    assert_eq!(a.result, Ok(Value::Unit));
    assert!(a.leaked_regions >= 1);
}

// ---------------------------------------------------------------------
// X2: failure-aware allocation, both extern behaviours
// ---------------------------------------------------------------------

fn allocfail_externs(succeed: bool) -> ExternTable {
    let mut t = ExternTable::with_regions();
    t.insert(
        "try_new_point",
        move |m: &mut dyn Host, args: Vec<Value>| match &args[0] {
            Value::Region(r) if succeed => {
                let mut fields = Fields::new();
                fields.insert("x".into(), args[1].clone());
                fields.insert("y".into(), args[2].clone());
                let obj = m.alloc_in(*r, fields)?;
                Ok(Value::Variant {
                    ctor: "Alloc".into(),
                    args: vec![obj],
                })
            }
            Value::Region(_) => Ok(Value::Variant {
                ctor: "OutOfMemory".into(),
                args: vec![],
            }),
            other => Err(EvalError::Type(format!(
                "try_new_point expects a region, got {}",
                other.describe()
            ))),
        },
    );
    t
}

#[test]
fn allocfail_is_identical_on_both_extern_behaviours() {
    for succeed in [true, false] {
        let (a, _) = diff_with(
            "allocfail_checked",
            "robust",
            &|| allocfail_externs(succeed),
            &|_| vec![],
        );
        assert_eq!(a.result, Ok(Value::Unit), "succeed={succeed}");
        assert_eq!(a.leaked_regions, 0, "succeed={succeed}");
    }
}

// ---------------------------------------------------------------------
// E2: Fig. 3 sockets over the network simulator
// ---------------------------------------------------------------------

struct SocketWorld {
    net: Network,
    harness: Vec<SockId>,
    socks: Vec<SockId>,
}

impl SocketWorld {
    fn fresh() -> Rc<RefCell<SocketWorld>> {
        Rc::new(RefCell::new(SocketWorld {
            net: Network::new(),
            harness: Vec::new(),
            socks: Vec::new(),
        }))
    }

    fn handle(&mut self, s: SockId) -> Value {
        self.socks.push(s);
        Value::Handle {
            kind: "sock".into(),
            id: self.socks.len() as u64 - 1,
        }
    }

    fn resolve(&self, v: &Value) -> Result<SockId, EvalError> {
        match v {
            Value::Handle { kind, id } if kind == "sock" => self
                .socks
                .get(*id as usize)
                .copied()
                .ok_or_else(|| EvalError::Extern("bad socket handle".into())),
            other => Err(EvalError::Type(format!(
                "expected a socket, got {}",
                other.describe()
            ))),
        }
    }

    fn program_leaks(&self) -> usize {
        let harness_live = self
            .harness
            .iter()
            .filter(|s| {
                self.net
                    .state(**s)
                    .map(|st| st != vault_runtime::SockState::Closed)
                    .unwrap_or(false)
            })
            .count();
        self.net.leaked() - harness_live
    }
}

fn map_err(e: SocketError) -> EvalError {
    EvalError::Extern(e.to_string())
}

fn socket_externs(world: Rc<RefCell<SocketWorld>>) -> ExternTable {
    let mut t = ExternTable::new();
    {
        let w = world.clone();
        t.insert("socket", move |_m, _args| {
            let mut w = w.borrow_mut();
            let s = w.net.socket(Domain::Unix, CommStyle::Stream);
            Ok(w.handle(s))
        });
    }
    {
        let w = world.clone();
        t.insert("bind", move |m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            m.touch_object(&args[1])?;
            w.net.bind(s, 4242).map_err(map_err)?;
            Ok(Value::Unit)
        });
    }
    {
        let w = world.clone();
        t.insert("listen", move |_m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            w.net.listen(s, 8).map_err(map_err)?;
            let client = w.net.socket(Domain::Unix, CommStyle::Stream);
            w.harness.push(client);
            w.net.connect(client, 4242).map_err(map_err)?;
            Ok(Value::Unit)
        });
    }
    {
        let w = world.clone();
        t.insert("accept", move |m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            m.touch_object(&args[1])?;
            let conn = w.net.accept(s).map_err(map_err)?;
            if let Some(&client) = w.harness.last() {
                w.net.send(client, b"hello").map_err(map_err)?;
            }
            Ok(w.handle(conn))
        });
    }
    {
        let w = world.clone();
        t.insert("receive", move |_m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            w.net.receive(s).map_err(map_err)?;
            Ok(Value::Unit)
        });
    }
    {
        let w = world.clone();
        t.insert("close", move |_m, args| {
            let mut w = w.borrow_mut();
            let s = w.resolve(&args[0])?;
            w.net.close(s).map_err(map_err)?;
            Ok(Value::Unit)
        });
    }
    t
}

fn addr_and_buf(h: &mut dyn Host, addrs: usize, with_buf: bool) -> Vec<Value> {
    let mut args = Vec::new();
    for _ in 0..addrs {
        let mut fields = Fields::new();
        fields.insert("addr".into(), Value::Int(1));
        fields.insert("port".into(), Value::Int(4242));
        args.push(h.alloc_ambient(fields));
    }
    if with_buf {
        args.push(Value::Array(Rc::new(RefCell::new(vec![Value::Int(0); 16]))));
    }
    args
}

/// Run a socket corpus program on both engines, each against its own
/// fresh simulated network, and assert outcome *and* network-level
/// accounting (socket leaks, protocol violations) agree.
fn diff_socket(id: &str, entry: &str, addrs: usize, with_buf: bool) -> (EvalOutcome, usize, u64) {
    let p = corpus(id);
    let mut diags = DiagSink::new();
    let program = parse_program(&p.source, &mut diags);
    assert!(!diags.has_errors());
    let compiled = vault_vm::compile(&program);

    let world_a = SocketWorld::fresh();
    let mut m = Machine::new(&program, socket_externs(world_a.clone()));
    let args = addr_and_buf(&mut m, addrs, with_buf);
    let a = m.run(entry, args);

    let world_b = SocketWorld::fresh();
    let mut v = Vm::new(&compiled, socket_externs(world_b.clone()));
    let args = addr_and_buf(&mut v, addrs, with_buf);
    let b = v.run(entry, args);

    assert_eq!(a, b, "[{id}::{entry}] engines diverged");
    let (wa, wb) = (world_a.borrow(), world_b.borrow());
    assert_eq!(
        wa.program_leaks(),
        wb.program_leaks(),
        "[{id}] socket leak accounting diverged"
    );
    assert_eq!(
        wa.net.stats().violations,
        wb.net.stats().violations,
        "[{id}] violation counts diverged"
    );
    let leaks = wa.program_leaks();
    let violations = wa.net.stats().violations;
    (a, leaks, violations)
}

#[test]
fn socket_programs_agree_on_outcome_leaks_and_violations() {
    let (out, leaks, violations) = diff_socket("sock_server_ok", "server", 1, true);
    assert_eq!(out.result, Ok(Value::Unit));
    assert_eq!((leaks, violations), (0, 0));

    let (out, _, violations) = diff_socket("sock_skip_bind", "bad", 1, false);
    assert!(matches!(&out.result, Err(EvalError::Extern(m)) if m.contains("named")));
    assert!(violations >= 1);

    let (out, _, _) = diff_socket("sock_recv_unready", "bad", 1, true);
    assert!(matches!(&out.result, Err(EvalError::Extern(m)) if m.contains("ready")));

    let (out, leaks, _) = diff_socket("sock_leak", "bad", 1, false);
    assert_eq!(out.result, Ok(Value::Unit));
    assert_eq!(leaks, 1, "the raw socket must leak on both engines");
}
