//! Seeded differential fuzz smoke: random mutants of corpus programs,
//! executed on both engines. A mutant may stop parsing (skipped — there
//! is nothing to run), it may be rejected by the checker (irrelevant
//! here: *both* engines run unchecked programs), and it may fault in new
//! ways — but whatever it does, the interpreter and the VM must do it
//! identically. Any outcome divergence fails the suite.
//!
//! Deterministically seeded: failures reproduce by seed.

use rand::{Rng, SeedableRng};
use vault_eval::ExternTable;
use vault_vm::harness::{diff_source, Skip};

const MUTANTS: usize = 240;
const FUEL: u64 = 5_000;

/// Apply one random, token-shaped mutation to the source.
fn mutate(src: &str, rng: &mut rand::rngs::StdRng) -> String {
    let bytes = src.as_bytes();
    match rng.gen_range(0..4usize) {
        // Twiddle a digit.
        0 => {
            let digits: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter(|(_, b)| b.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            if digits.is_empty() {
                return src.to_string();
            }
            let at = digits[rng.gen_range(0..digits.len())];
            let mut out = src.to_string();
            let new = char::from(b'0' + rng.gen_range(0..10u8) as u8);
            out.replace_range(at..at + 1, &new.to_string());
            out
        }
        // Swap an operator.
        1 => {
            let swaps = [
                ("+", "-"),
                ("<", ">"),
                ("==", "!="),
                ("&&", "||"),
                ("++", "--"),
            ];
            let (from, to) = swaps[rng.gen_range(0..swaps.len())];
            let sites: Vec<usize> = src.match_indices(from).map(|(i, _)| i).collect();
            if sites.is_empty() {
                return src.to_string();
            }
            let at = sites[rng.gen_range(0..sites.len())];
            let mut out = src.to_string();
            out.replace_range(at..at + from.len(), to);
            out
        }
        // Replace one identifier occurrence with another identifier
        // drawn from the same program (renames, misbindings, unknown
        // variables, arity mismatches — the deferred-trap paths).
        2 => {
            let words: Vec<(usize, &str)> = ident_occurrences(src);
            if words.len() < 2 {
                return src.to_string();
            }
            let (at, word) = words[rng.gen_range(0..words.len())];
            let (_, donor) = words[rng.gen_range(0..words.len())];
            let mut out = src.to_string();
            out.replace_range(at..at + word.len(), donor);
            out
        }
        // Raw byte flip (usually a parse rejection — the skip path).
        _ => {
            if bytes.is_empty() {
                return src.to_string();
            }
            let at = rng.gen_range(0..bytes.len());
            let mut out = bytes.to_vec();
            out[at] = out[at].wrapping_add(rng.gen_range(1..255u8));
            String::from_utf8_lossy(&out).into_owned()
        }
    }
}

fn ident_occurrences(src: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((start, &src[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

#[test]
fn random_mutants_never_diverge_across_engines() {
    let programs = vault_corpus::all_programs();
    let mut compared = 0usize;
    let mut parsed = 0usize;
    let mut skipped_parse = 0usize;
    for seed in 0..MUTANTS as u64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let base = &programs[rng.gen_range(0..programs.len())];
        let mut src = base.source.clone();
        // One to three stacked mutations.
        for _ in 0..rng.gen_range(1..4usize) {
            src = mutate(&src, &mut rng);
        }
        match diff_source(&src, FUEL, &ExternTable::with_regions) {
            Err(Skip::Parse) => skipped_parse += 1,
            Err(Skip::RegisterOverflow(fns)) => {
                panic!(
                    "mutant of {} (seed {seed}) overflowed registers: {fns:?}",
                    base.id
                )
            }
            Ok((n, divergences)) => {
                parsed += 1;
                compared += n;
                assert!(
                    divergences.is_empty(),
                    "mutant of {} (seed {seed}) diverged:\n{divergences:#?}\nsource:\n{src}",
                    base.id
                );
            }
        }
    }
    // The mutator must actually be exercising both paths: plenty of
    // runnable mutants, and some parse rejections from the byte flips.
    assert!(parsed >= 100, "only {parsed}/{MUTANTS} mutants parsed");
    assert!(skipped_parse >= 10, "byte flips never broke the parse?");
    assert!(compared >= 200, "only {compared} entry comparisons ran");
}
