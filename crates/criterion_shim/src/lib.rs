//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot download crates.io packages, so this
//! workspace-local package shadows `criterion 0.5` with a minimal
//! wall-clock harness exposing the API subset the workspace's benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::{throughput, bench_with_input, finish}`],
//! [`BenchmarkId::from_parameter`], [`Throughput::Elements`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement: each benchmark is warmed up for ~0.3 s, then sampled in
//! batches sized to the warm-up estimate for ~1.5 s; the harness prints
//! median and mean per-iteration time (and element throughput when
//! declared). No statistics beyond that — this exists so `cargo bench`
//! runs and reports, not to replace criterion's analysis.

use std::time::{Duration, Instant};

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Benchmark `routine`, timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate cost for ~0.3 s.
        let warmup = Duration::from_millis(300);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~50 samples in ~1.5 s of measurement.
        let target_sample = 1.5 / 50.0;
        self.iters_per_sample = ((target_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);
        let deadline = Instant::now() + Duration::from_millis(1500);
        while Instant::now() < deadline || self.samples.len() < 10 {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed());
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    fn report(&self, label: &str, throughput: Option<&Throughput>) {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let mut line = format!(
            "{label:<40} median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_time(median),
            fmt_time(mean),
            per_iter.len(),
            self.iters_per_sample
        );
        if let Some(Throughput::Elements(n)) = throughput {
            let eps = *n as f64 / median;
            line.push_str(&format!("  {:.0} elem/s", eps));
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Declared throughput of one benchmark, mirroring `criterion::Throughput`.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark id, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    /// Id carrying only a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            param: parameter.to_string(),
        }
    }

    /// Id with a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            param: format!("{function_name}/{parameter}"),
        }
    }
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(
            &format!("{}/{}", self.name, id.param),
            self.throughput.as_ref(),
        );
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{name}", self.name), self.throughput.as_ref());
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Prevent the optimizer from deleting a computation, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` running benchmark groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
