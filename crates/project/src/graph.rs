//! The import dependency DAG: export surfaces, fingerprints, cycle
//! detection, topological planning, and the sequential reference
//! checker.

use std::collections::BTreeSet;

use vault_core::{check_summary_with_prelude, CheckStats, CheckSummary, Limits, Verdict};
use vault_syntax::ast::Decl;
use vault_syntax::diag::Diagnostic;
use vault_syntax::{Attribution, Code, DiagSink, ImportDecl, Program, Span};

use crate::fnv1a;

/// Domain separator folded into every project fingerprint so project
/// cache entries can never collide with single-unit fingerprints (the
/// service shares one verdict cache between both modes).
const PROJECT_FP_TAG: &[u8] = b"vault-project-unit-v1";

/// One named compilation unit of a project, in manifest order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProjectUnit {
    /// The manifest name other units use in `import "name";`.
    pub name: String,
    /// Vault source text.
    pub source: String,
}

impl ProjectUnit {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        ProjectUnit {
            name: name.into(),
            source: source.into(),
        }
    }
}

/// Everything the scheduler needs to know about one unit, precomputed
/// from parsing alone (no checking): resolved dependencies, the
/// signature prelude, and both fingerprints.
#[derive(Clone, Debug)]
pub struct UnitPlan {
    /// Position in the manifest (and in [`ProjectPlan::units`]).
    pub index: usize,
    /// The unit's manifest name.
    pub name: String,
    /// Direct dependencies (manifest indices), in import order, deduped.
    pub deps: Vec<usize>,
    /// Transitive dependencies (manifest indices), in topological order.
    /// Empty for cyclic units.
    pub transitive: Vec<usize>,
    /// FNV-1a hash of the unit's export surface (bodies stripped,
    /// imports dropped). Changes only when the unit's *interface*
    /// changes — the cutoff signal for downstream invalidation.
    pub export_fingerprint: u64,
    /// Hash of the unit's name, full source, and the export
    /// fingerprints of its transitive dependencies: the cache key for
    /// this unit's verdict within the project.
    pub project_fingerprint: u64,
    /// Concatenated export surfaces of the transitive dependencies, in
    /// topological order — prepended (as text) when the unit is checked.
    pub prelude: String,
    /// Graph-level diagnostics (`V601` import cycle, `V602` unresolved
    /// import), already rendered in the unit's own coordinates.
    pub graph_diags: Vec<vault_syntax::DiagView>,
    /// Whether the unit is part of, or depends on, an import cycle.
    /// Cyclic units are not checked; their verdict is the `V601` error.
    pub cyclic: bool,
}

/// A deterministic build plan for a whole project.
#[derive(Clone, Debug)]
pub struct ProjectPlan {
    /// Per-unit plans, in manifest order.
    pub units: Vec<UnitPlan>,
    /// Check order: a topological sort of the acyclic portion, with
    /// manifest position breaking ties (so the order is a pure function
    /// of the manifest). Cyclic units are excluded.
    pub order: Vec<usize>,
}

/// The `import` declarations of a parsed program, in source order.
pub fn imports_of(program: &Program) -> Vec<ImportDecl> {
    program
        .decls
        .iter()
        .filter_map(|d| match d {
            Decl::Import(i) => Some(i.clone()),
            _ => None,
        })
        .collect()
}

/// A unit's *export surface*: the pretty-printed program with `import`
/// declarations dropped and every function body stripped to a
/// signature. This is exactly what dependent units elaborate against —
/// bodies are never needed across unit boundaries, so a body edit
/// leaves the surface (and its fingerprint) unchanged.
pub fn export_surface(program: &Program) -> String {
    let mut p = program.clone();
    p.decls.retain(|d| !matches!(d, Decl::Import(_)));
    for d in &mut p.decls {
        if let Decl::Fun(f) = d {
            f.body = None;
        }
    }
    vault_syntax::pretty::program_to_string(&p)
}

impl ProjectPlan {
    /// Parse every unit, resolve imports, detect cycles, and compute
    /// the deterministic check order plus per-unit fingerprints and
    /// preludes. Parsing here is only for the *graph*; parse errors
    /// surface later when the unit itself is checked.
    pub fn build(units: &[ProjectUnit], parser_depth: usize) -> ProjectPlan {
        // Parse each unit once: imports + export surface.
        let mut imports: Vec<Vec<ImportDecl>> = Vec::with_capacity(units.len());
        let mut surfaces: Vec<String> = Vec::with_capacity(units.len());
        for u in units {
            let mut sink = DiagSink::new();
            let program =
                vault_syntax::parse_program_with_depth(&u.source, &mut sink, parser_depth);
            imports.push(imports_of(&program));
            surfaces.push(export_surface(&program));
        }

        // Resolve import names against manifest names (first occurrence
        // wins on duplicates; `Manifest::parse` rejects duplicates at
        // load time).
        let mut by_name: std::collections::BTreeMap<&str, usize> =
            std::collections::BTreeMap::new();
        for (i, u) in units.iter().enumerate() {
            by_name.entry(u.name.as_str()).or_insert(i);
        }

        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
        let mut unresolved: Vec<Vec<Diagnostic>> = vec![Vec::new(); units.len()];
        for (i, unit_imports) in imports.iter().enumerate() {
            for imp in unit_imports {
                match by_name.get(imp.path.as_str()) {
                    Some(&dep) => {
                        if !deps[i].contains(&dep) {
                            deps[i].push(dep);
                        }
                    }
                    None => unresolved[i].push(Diagnostic::error(
                        Code::UnresolvedImport,
                        imp.path_span,
                        format!(
                            "cannot resolve import \"{}\": no unit with that name in the project",
                            imp.path
                        ),
                    )),
                }
            }
        }

        // Kahn's algorithm with minimum-manifest-index selection: the
        // resulting order is a pure function of the manifest, so
        // parallel schedules built from it reassemble identically.
        let mut indegree: Vec<usize> = deps.iter().map(Vec::len).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                dependents[d].push(i);
            }
        }
        let mut ready: BTreeSet<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(units.len());
        while let Some(&next) = ready.iter().next() {
            ready.remove(&next);
            order.push(next);
            for &dep in &dependents[next] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    ready.insert(dep);
                }
            }
        }

        // Whatever Kahn could not schedule is in a cycle or downstream
        // of one. Every such unit gets the same stable V601 diagnostic.
        let scheduled: BTreeSet<usize> = order.iter().copied().collect();
        let cyclic_names: Vec<&str> = units
            .iter()
            .enumerate()
            .filter(|(i, _)| !scheduled.contains(i))
            .map(|(_, u)| u.name.as_str())
            .collect();

        let mut rank = vec![usize::MAX; units.len()];
        for (r, &i) in order.iter().enumerate() {
            rank[i] = r;
        }

        // Transitive closures in topological order; preludes and
        // fingerprints fall out of them.
        let mut transitive: Vec<Vec<usize>> = vec![Vec::new(); units.len()];
        for &i in &order {
            let mut closure: BTreeSet<usize> = BTreeSet::new();
            for &d in &deps[i] {
                if scheduled.contains(&d) {
                    closure.insert(d);
                    closure.extend(transitive[d].iter().copied());
                }
            }
            let mut ordered: Vec<usize> = closure.into_iter().collect();
            ordered.sort_by_key(|&u| rank[u]);
            transitive[i] = ordered;
        }

        let mut plans = Vec::with_capacity(units.len());
        for (i, u) in units.iter().enumerate() {
            let cyclic = !scheduled.contains(&i);
            let attr = Attribution::plain(&u.name, &u.source);
            let mut graph_diags = Vec::new();
            if cyclic {
                let span = imports[i]
                    .first()
                    .map(|imp| imp.span)
                    .unwrap_or_else(|| Span::new(0, 0));
                let names = cyclic_names
                    .iter()
                    .map(|n| format!("`{n}`"))
                    .collect::<Vec<_>>()
                    .join(", ");
                let d = Diagnostic::error(
                    Code::ImportCycle,
                    span,
                    format!(
                        "unit `{}` participates in or depends on an import cycle among {names}; \
                         the import graph must be acyclic",
                        u.name
                    ),
                );
                graph_diags.push(attr.view(&d));
            }
            for d in &unresolved[i] {
                graph_diags.push(attr.view(d));
            }

            let mut prelude = String::new();
            for &d in &transitive[i] {
                prelude.push_str(&surfaces[d]);
                if !prelude.ends_with('\n') {
                    prelude.push('\n');
                }
            }

            let export_fingerprint = fnv1a(crate::FNV_OFFSET, surfaces[i].as_bytes());
            let mut fp = fnv1a(crate::FNV_OFFSET, PROJECT_FP_TAG);
            fp = fnv1a(fp, u.name.as_bytes());
            fp = fnv1a(fp, &[0]);
            fp = fnv1a(fp, u.source.as_bytes());
            for &d in &transitive[i] {
                fp = fnv1a(fp, &[0]);
                fp = fnv1a(fp, units[d].name.as_bytes());
                fp = fnv1a(
                    fp,
                    &fnv1a(crate::FNV_OFFSET, surfaces[d].as_bytes()).to_le_bytes(),
                );
            }
            // Graph diagnostics (V601/V602) are part of the unit's
            // output but depend on the *whole manifest*, not just the
            // unit and its resolved dependencies — e.g. whether an
            // import resolves at all, or which peers share a cycle.
            // Absorbing their rendering makes the fingerprint a complete
            // key of the summary, so verdict caches can never leak a
            // summary across manifests that disagree about the graph.
            for d in &graph_diags {
                fp = fnv1a(fp, &[0]);
                fp = fnv1a(fp, d.rendered.as_bytes());
            }

            plans.push(UnitPlan {
                index: i,
                name: u.name.clone(),
                deps: deps[i].clone(),
                transitive: transitive[i].clone(),
                export_fingerprint,
                project_fingerprint: fp,
                prelude,
                graph_diags,
                cyclic,
            });
        }

        ProjectPlan {
            units: plans,
            order,
        }
    }
}

/// Check one planned unit: prepend its dependency prelude, check the
/// combined text, re-attribute diagnostics to unit coordinates, and
/// fold in any graph-level diagnostics. Cyclic units are not checked at
/// all — their summary is just the `V601` rejection.
///
/// This is a pure function of `(plan.units[idx], units[idx].source)`,
/// which is why the parallel scheduler in `vaultd` can run units in any
/// order and still reassemble output byte-identical to [`check_project`].
pub fn check_unit_in_plan(
    plan: &ProjectPlan,
    units: &[ProjectUnit],
    idx: usize,
    limits: &Limits,
) -> CheckSummary {
    let up = &plan.units[idx];
    let u = &units[idx];
    if up.cyclic {
        return cyclic_summary(up);
    }
    let s = check_summary_with_prelude(&u.name, &up.prelude, &u.source, limits);
    fold_graph_diags(up, s)
}

/// The verdict for a unit in (or downstream of) an import cycle: the
/// stable `V601` rejection, with nothing checked.
pub fn cyclic_summary(up: &UnitPlan) -> CheckSummary {
    CheckSummary {
        name: up.name.clone(),
        verdict: Verdict::Rejected,
        diagnostics: up.graph_diags.clone(),
        stats: CheckStats::default(),
    }
}

/// Prepend a unit's graph-level diagnostics (`V602` unresolved imports)
/// to its checked summary. Graph diagnostics are errors, so an
/// otherwise-accepted unit becomes rejected. The parallel scheduler and
/// the sequential reference both fold through here, keeping their
/// output byte-identical.
pub fn fold_graph_diags(up: &UnitPlan, mut s: CheckSummary) -> CheckSummary {
    if !up.graph_diags.is_empty() {
        let mut diagnostics = up.graph_diags.clone();
        diagnostics.extend(s.diagnostics);
        s.diagnostics = diagnostics;
        if s.verdict == Verdict::Accepted {
            s.verdict = Verdict::Rejected;
        }
    }
    s
}

/// Sequential reference implementation: plan, check each unit in
/// topological order, and return summaries in **manifest order**. The
/// parallel service must match this byte for byte.
pub fn check_project(units: &[ProjectUnit], limits: &Limits) -> Vec<CheckSummary> {
    let plan = ProjectPlan::build(units, limits.parser_depth);
    let mut out: Vec<Option<CheckSummary>> = vec![None; units.len()];
    for &i in &plan.order {
        out[i] = Some(check_unit_in_plan(&plan, units, i, limits));
    }
    for (i, slot) in out.iter_mut().enumerate() {
        if slot.is_none() {
            *slot = Some(check_unit_in_plan(&plan, units, i, limits));
        }
    }
    out.into_iter().map(|s| s.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS_IFACE: &str = "interface FS {\n  type FILE;\n  tracked(F) FILE fopen() [new F];\n  void fclose(tracked(F) FILE f) [-F];\n}\n";

    fn fs_unit() -> ProjectUnit {
        ProjectUnit::new("fs", FS_IFACE)
    }

    fn app_unit(body: &str) -> ProjectUnit {
        ProjectUnit::new("app", format!("import \"fs\";\nvoid main() {{\n{body}}}\n"))
    }

    #[test]
    fn plan_orders_dependencies_first() {
        // Manifest lists the dependent first; topo order flips them.
        let units = vec![
            app_unit("  tracked(F) FILE f = FS.fopen();\n  FS.fclose(f);\n"),
            fs_unit(),
        ];
        let plan = ProjectPlan::build(&units, vault_syntax::DEFAULT_PARSER_DEPTH);
        assert_eq!(plan.order, vec![1, 0]);
        assert_eq!(plan.units[0].deps, vec![1]);
        assert!(plan.units[0].prelude.contains("fopen"));
        assert!(!plan.units[0].cyclic && !plan.units[1].cyclic);
    }

    #[test]
    fn clean_two_unit_project_is_accepted() {
        let units = vec![
            fs_unit(),
            app_unit("  tracked(F) FILE f = FS.fopen();\n  FS.fclose(f);\n"),
        ];
        let summaries = check_project(&units, &Limits::default());
        assert_eq!(summaries.len(), 2);
        for s in &summaries {
            assert_eq!(
                s.verdict,
                Verdict::Accepted,
                "{}: {:?}",
                s.name,
                s.diagnostics
            );
        }
    }

    #[test]
    fn leak_in_dependent_is_attributed_to_unit_coordinates() {
        let units = vec![
            fs_unit(),
            app_unit("  tracked(F) FILE f = FS.fopen();\n"), // leaked
        ];
        let summaries = check_project(&units, &Limits::default());
        assert_eq!(summaries[1].verdict, Verdict::Rejected);
        let d = &summaries[1].diagnostics[0];
        // The diagnostic must point into app's own two-line source, not
        // into the concatenated prelude text.
        assert!(d.line <= 4, "line {} not in unit coordinates", d.line);
        assert!(d.rendered.contains("app:"), "rendered: {}", d.rendered);
    }

    #[test]
    fn project_check_matches_standalone_concatenation() {
        // Checking app against the fs prelude finds the same codes as
        // checking the textual concatenation directly.
        let app = app_unit("  tracked(F) FILE f = FS.fopen();\n");
        let flat = format!("{FS_IFACE}\n{}", app.source);
        let flat_summary = vault_core::check_summary("flat", &flat);
        let summaries = check_project(&[fs_unit(), app], &Limits::default());
        let project_codes: Vec<&str> = summaries[1]
            .diagnostics
            .iter()
            .map(|d| d.code.as_str())
            .collect();
        let flat_codes: Vec<&str> = flat_summary
            .diagnostics
            .iter()
            .map(|d| d.code.as_str())
            .collect();
        assert_eq!(project_codes, flat_codes);
    }

    #[test]
    fn unresolved_import_is_v602_and_unit_still_checked() {
        let units = vec![ProjectUnit::new(
            "lonely",
            "import \"nowhere\";\nvoid f() { int x = 1; }\n",
        )];
        let summaries = check_project(&units, &Limits::default());
        assert_eq!(summaries[0].verdict, Verdict::Rejected);
        assert_eq!(summaries[0].diagnostics[0].code, "V602");
        // The function body itself was still checked (no further errors).
        assert_eq!(summaries[0].diagnostics.len(), 1);
    }

    #[test]
    fn import_cycle_is_v601_for_every_unit_in_or_reaching_it() {
        let units = vec![
            ProjectUnit::new("a", "import \"b\";\nvoid fa() {}\n"),
            ProjectUnit::new("b", "import \"a\";\nvoid fb() {}\n"),
            ProjectUnit::new("c", "import \"a\";\nvoid fc() {}\n"),
            ProjectUnit::new("free", "void ff() {}\n"),
        ];
        let plan = ProjectPlan::build(&units, vault_syntax::DEFAULT_PARSER_DEPTH);
        assert_eq!(plan.order, vec![3]);
        let summaries = check_project(&units, &Limits::default());
        for s in &summaries[..3] {
            assert_eq!(s.verdict, Verdict::Rejected, "{}", s.name);
            assert_eq!(s.diagnostics[0].code, "V601");
        }
        assert_eq!(summaries[3].verdict, Verdict::Accepted);
    }

    #[test]
    fn self_import_is_a_cycle() {
        let units = vec![ProjectUnit::new("solo", "import \"solo\";\nvoid f() {}\n")];
        let summaries = check_project(&units, &Limits::default());
        assert_eq!(summaries[0].diagnostics[0].code, "V601");
    }

    #[test]
    fn body_edit_changes_project_but_not_export_fingerprint() {
        let base = vec![
            fs_unit(),
            ProjectUnit::new(
                "mid",
                "import \"fs\";\nvoid helper() {\n  tracked(F) FILE f = FS.fopen();\n  FS.fclose(f);\n}\n",
            ),
            ProjectUnit::new("top", "import \"mid\";\nvoid top_fn() {}\n"),
        ];
        let mut body_edit = base.clone();
        body_edit[1].source = body_edit[1]
            .source
            .replace("FS.fclose(f);", "FS.fclose(f);\n  int extra = 1;");
        let p0 = ProjectPlan::build(&base, vault_syntax::DEFAULT_PARSER_DEPTH);
        let p1 = ProjectPlan::build(&body_edit, vault_syntax::DEFAULT_PARSER_DEPTH);
        // mid's own cache key changes...
        assert_ne!(
            p0.units[1].project_fingerprint,
            p1.units[1].project_fingerprint
        );
        // ...but its interface does not, so top's key is stable: cutoff.
        assert_eq!(
            p0.units[1].export_fingerprint,
            p1.units[1].export_fingerprint
        );
        assert_eq!(
            p0.units[2].project_fingerprint,
            p1.units[2].project_fingerprint
        );
    }

    #[test]
    fn interface_edit_invalidates_dependents() {
        let base = vec![
            fs_unit(),
            ProjectUnit::new("mid", "import \"fs\";\nint answer() { return 42; }\n"),
            ProjectUnit::new("top", "import \"mid\";\nvoid top_fn() {}\n"),
        ];
        let mut iface_edit = base.clone();
        iface_edit[1].source = iface_edit[1]
            .source
            .replace("int answer()", "int answer(int x)");
        let p0 = ProjectPlan::build(&base, vault_syntax::DEFAULT_PARSER_DEPTH);
        let p1 = ProjectPlan::build(&iface_edit, vault_syntax::DEFAULT_PARSER_DEPTH);
        assert_ne!(
            p0.units[1].export_fingerprint,
            p1.units[1].export_fingerprint
        );
        assert_ne!(
            p0.units[2].project_fingerprint,
            p1.units[2].project_fingerprint
        );
    }

    #[test]
    fn plan_is_deterministic_across_rebuilds() {
        let units = vec![
            fs_unit(),
            app_unit("  tracked(F) FILE f = FS.fopen();\n  FS.fclose(f);\n"),
        ];
        let a = ProjectPlan::build(&units, vault_syntax::DEFAULT_PARSER_DEPTH);
        let b = ProjectPlan::build(&units, vault_syntax::DEFAULT_PARSER_DEPTH);
        assert_eq!(a.order, b.order);
        for (x, y) in a.units.iter().zip(&b.units) {
            assert_eq!(x.project_fingerprint, y.project_fingerprint);
            assert_eq!(x.export_fingerprint, y.export_fingerprint);
            assert_eq!(x.prelude, y.prelude);
        }
    }
}
