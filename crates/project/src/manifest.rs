//! The `vault.toml` project manifest: a deterministic, ordered list of
//! units. Only the tiny TOML subset the manifest needs is parsed —
//! `[[unit]]` tables with `path` and optional `name` string keys — so
//! the crate stays dependency-free.
//!
//! ```toml
//! # vault.toml
//! [[unit]]
//! path = "kernel.vlt"          # name defaults to the file stem: "kernel"
//!
//! [[unit]]
//! name = "floppy_hw"
//! path = "hw/floppy_hw.vlt"
//! ```
//!
//! Manifest order is meaningful: it is the order results are reported
//! in, and it breaks ties in the topological schedule.

use std::path::Path;

use crate::ProjectUnit;

/// One `[[unit]]` table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The unit name imports refer to. Defaults to the `path` file stem.
    pub name: String,
    /// Path to the `.vlt` source, relative to the manifest file.
    pub path: String,
}

/// A parsed project manifest: an ordered list of unit entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Entries in file order.
    pub entries: Vec<ManifestEntry>,
}

/// The file stem of a path string ("hw/floppy_hw.vlt" → "floppy_hw").
fn stem(path: &str) -> String {
    Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// Parse a `key = "value"` line; `None` if it is not shaped like one.
fn parse_assignment(line: &str) -> Option<(&str, &str)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let value = rest.strip_prefix('"')?.strip_suffix('"')?;
    if value.contains('"') {
        return None;
    }
    Some((key.trim(), value))
}

impl Manifest {
    /// Parse manifest text. Errors carry the 1-based line number.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut entries: Vec<(Option<String>, Option<String>)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            // Strip comments outside strings; manifest strings never
            // contain `#` in practice, so a plain split is enough.
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[unit]]" {
                entries.push((None, None));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "vault.toml:{lineno}: unknown table `{line}` (only [[unit]] is supported)"
                ));
            }
            let Some((key, value)) = parse_assignment(line) else {
                return Err(format!(
                    "vault.toml:{lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            let Some(current) = entries.last_mut() else {
                return Err(format!(
                    "vault.toml:{lineno}: `{key}` appears before any [[unit]] table"
                ));
            };
            match key {
                "name" => current.0 = Some(value.to_string()),
                "path" => current.1 = Some(value.to_string()),
                other => {
                    return Err(format!(
                        "vault.toml:{lineno}: unknown key `{other}` (expected `name` or `path`)"
                    ))
                }
            }
        }

        let mut out = Vec::with_capacity(entries.len());
        let mut seen: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (i, (name, path)) in entries.into_iter().enumerate() {
            let Some(path) = path else {
                return Err(format!("vault.toml: [[unit]] #{} has no `path`", i + 1));
            };
            let name = name.unwrap_or_else(|| stem(&path));
            if !seen.insert(name.clone()) {
                return Err(format!(
                    "vault.toml: duplicate unit name `{name}` (unit names must be unique)"
                ));
            }
            out.push(ManifestEntry { name, path });
        }
        Ok(Manifest { entries: out })
    }

    /// Read and parse a manifest file, then read every unit source
    /// (paths resolved relative to the manifest's directory).
    pub fn load_units(manifest_path: &Path) -> Result<Vec<ProjectUnit>, String> {
        let text = std::fs::read_to_string(manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let manifest = Manifest::parse(&text)?;
        let base = manifest_path.parent().unwrap_or_else(|| Path::new("."));
        let mut units = Vec::with_capacity(manifest.entries.len());
        for entry in &manifest.entries {
            let path = base.join(&entry.path);
            let source = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "cannot read unit `{}` at {}: {e}",
                    entry.name,
                    path.display()
                )
            })?;
            units.push(ProjectUnit {
                name: entry.name.clone(),
                source,
            });
        }
        Ok(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_units_in_order_with_default_names() {
        let m = Manifest::parse(
            "# project\n[[unit]]\npath = \"kernel.vlt\"\n\n[[unit]]\nname = \"hw\"\npath = \"sub/floppy_hw.vlt\"  # hardware\n",
        )
        .unwrap();
        assert_eq!(
            m.entries,
            vec![
                ManifestEntry {
                    name: "kernel".into(),
                    path: "kernel.vlt".into()
                },
                ManifestEntry {
                    name: "hw".into(),
                    path: "sub/floppy_hw.vlt".into()
                },
            ]
        );
    }

    #[test]
    fn rejects_malformed_manifests() {
        for bad in [
            "path = \"a.vlt\"\n",       // key before [[unit]]
            "[[unit]]\n",               // missing path
            "[[unit]]\njobs = \"4\"\n", // unknown key
            "[unit]\n",                 // wrong table form
            "[[unit]]\npath = a.vlt\n", // unquoted value
            "[[unit]]\npath = \"a.vlt\"\n[[unit]]\npath = \"b/a.vlt\"\n", // dup names
        ] {
            assert!(Manifest::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn load_units_reads_relative_to_manifest() {
        let dir = std::env::temp_dir().join(format!("vault-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("a.vlt"), "void a() {}\n").unwrap();
        std::fs::write(dir.join("sub/b.vlt"), "import \"a\";\nvoid b() {}\n").unwrap();
        std::fs::write(
            dir.join("vault.toml"),
            "[[unit]]\npath = \"a.vlt\"\n[[unit]]\npath = \"sub/b.vlt\"\n",
        )
        .unwrap();
        let units = Manifest::load_units(&dir.join("vault.toml")).unwrap();
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].name, "a");
        assert_eq!(units[1].name, "b");
        assert!(units[1].source.contains("import"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
