//! # vault-project
//!
//! Project mode for the Vault checker: multi-unit builds.
//!
//! A *project* is an ordered list of named compilation units (usually
//! loaded from a `vault.toml` manifest, see [`Manifest`]). Units may
//! name each other with `import "unit";` declarations; an import makes
//! the *export surface* of the imported unit — its interfaces,
//! statesets, global keys, types, and function signatures, never
//! bodies — visible while the importing unit is elaborated and checked.
//!
//! The crate builds the import dependency DAG ([`ProjectPlan::build`]),
//! rejects cycles with a stable [`vault_syntax::Code::ImportCycle`]
//! (`V601`) diagnostic and unresolved imports with
//! [`vault_syntax::Code::UnresolvedImport`] (`V602`), orders units
//! topologically (manifest order breaks ties, so the plan is
//! deterministic), and computes two fingerprints per unit:
//!
//! * an **export fingerprint** over the unit's export surface only, and
//! * a **project fingerprint** over the unit's own source *plus* the
//!   export fingerprints of its transitive dependencies.
//!
//! The split is what gives incremental project checking *early cutoff*:
//! editing a function body changes a unit's project fingerprint but not
//! its export fingerprint, so downstream units keep their cached
//! verdicts; only an interface-visible edit invalidates dependents.
//!
//! [`check_project`] is the sequential reference implementation; the
//! `vaultd` service schedules the same plan across its worker pool and
//! must produce byte-identical output.
//!
//! ## Example
//!
//! ```
//! use vault_project::{check_project, ProjectUnit};
//! use vault_core::{Limits, Verdict};
//!
//! let units = vec![
//!     ProjectUnit::new(
//!         "fs",
//!         "interface FS {\n  type FILE;\n  tracked(F) FILE fopen() [new F];\n  void fclose(tracked(F) FILE f) [-F];\n}\n",
//!     ),
//!     ProjectUnit::new(
//!         "app",
//!         "import \"fs\";\nvoid main() {\n  tracked(F) FILE f = FS.fopen();\n  FS.fclose(f);\n}\n",
//!     ),
//! ];
//! let summaries = check_project(&units, &Limits::default());
//! assert!(summaries.iter().all(|s| s.verdict == Verdict::Accepted));
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod manifest;

pub use graph::{
    check_project, check_unit_in_plan, cyclic_summary, export_surface, fold_graph_diags,
    imports_of, ProjectPlan, ProjectUnit, UnitPlan,
};
pub use manifest::{Manifest, ManifestEntry};

/// FNV-1a offset basis (64-bit).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into a running FNV-1a hash.
pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}
