//! End-to-end: `vaultd`'s Unix-domain-socket front end, exercised by
//! real clients over real sockets — including the whole built-in corpus
//! in one batch, concurrent clients sharing one cache, and shutdown.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use vault_server::{CheckService, Json, ServiceConfig, UnixServer};

fn start_server(jobs: usize) -> (Arc<CheckService>, std::path::PathBuf) {
    let svc = Arc::new(CheckService::new(ServiceConfig {
        jobs,
        cache_capacity: 1024,
        ..Default::default()
    }));
    let path = std::env::temp_dir().join(format!(
        "vaultd_test_{}_{jobs}_{:?}.sock",
        std::process::id(),
        std::thread::current().id()
    ));
    let server = UnixServer::bind(Arc::clone(&svc), &path).expect("bind socket");
    std::thread::spawn(move || server.run().expect("serve"));
    (svc, path)
}

fn request(stream: &mut UnixStream, line: &str) -> Json {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    vault_server::parse_json(response.trim_end()).expect("valid response JSON")
}

fn json_escape(s: &str) -> String {
    Json::str(s).to_line()
}

#[test]
fn full_corpus_over_the_socket_matches_sequential() {
    let (_svc, path) = start_server(4);
    let mut stream = UnixStream::connect(&path).expect("connect");

    let programs = vault_corpus::all_programs();
    let units: String = programs
        .iter()
        .map(|p| {
            format!(
                "{{\"name\":{},\"source\":{}}}",
                json_escape(p.id),
                json_escape(&p.source)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let response = request(
        &mut stream,
        &format!("{{\"op\":\"check\",\"id\":1,\"units\":[{units}]}}"),
    );
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let reported = response.get("units").and_then(Json::as_arr).unwrap();
    assert_eq!(reported.len(), programs.len());

    // Every verdict over the wire equals the sequential checker's.
    for (u, p) in reported.iter().zip(&programs) {
        let sequential = vault_core::check_source(p.id, &p.source);
        let want = sequential.verdict().as_str();
        assert_eq!(u.get("name").and_then(Json::as_str), Some(p.id));
        assert_eq!(
            u.get("verdict").and_then(Json::as_str),
            Some(want),
            "{}",
            p.id
        );
        // Diagnostic codes match too.
        let wire_codes: Vec<&str> = u
            .get("error_codes")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        let seq_codes: Vec<String> = sequential
            .error_codes()
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(wire_codes, seq_codes, "{}", p.id);
    }

    // Re-check: all answered from cache, visible in status counters.
    let response = request(
        &mut stream,
        &format!("{{\"op\":\"check\",\"id\":2,\"units\":[{units}]}}"),
    );
    let reported = response.get("units").and_then(Json::as_arr).unwrap();
    assert!(reported
        .iter()
        .all(|u| u.get("cached").and_then(Json::as_bool) == Some(true)));

    let status = request(&mut stream, "{\"op\":\"status\",\"id\":3}");
    assert_eq!(
        status.get("cache_hits").and_then(Json::as_u64),
        Some(programs.len() as u64)
    );
    assert_eq!(
        status.get("cache_misses").and_then(Json::as_u64),
        Some(programs.len() as u64)
    );
    assert_eq!(status.get("workers").and_then(Json::as_u64), Some(4));
    assert!(status.get("uptime_micros").and_then(Json::as_u64).unwrap() > 0);

    request(&mut stream, "{\"op\":\"shutdown\"}");
}

#[test]
fn concurrent_clients_share_one_cache() {
    let (svc, path) = start_server(2);
    let good = r#"{"op":"check","units":[{"name":"shared.vlt","source":"void f() { }"}]}"#;

    // First client warms the cache.
    let mut a = UnixStream::connect(&path).unwrap();
    let ra = request(&mut a, good);
    let ua = &ra.get("units").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(ua.get("cached").and_then(Json::as_bool), Some(false));

    // Second client hits it.
    let mut b = UnixStream::connect(&path).unwrap();
    let rb = request(&mut b, good);
    let ub = &rb.get("units").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(ub.get("cached").and_then(Json::as_bool), Some(true));

    assert_eq!(svc.status().cache_hits, 1);
    request(&mut a, "{\"op\":\"shutdown\"}");
}

#[test]
fn shutdown_stops_the_accept_loop_and_unlinks_the_socket() {
    let (_svc, path) = start_server(1);
    let mut stream = UnixStream::connect(&path).unwrap();
    let ack = request(&mut stream, "{\"op\":\"shutdown\",\"id\":1}");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    // The socket file disappears once the accept loop exits.
    for _ in 0..100 {
        if !path.exists() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("socket file {path:?} still exists after shutdown");
}
