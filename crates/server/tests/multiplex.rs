//! The multiplexed front end under load: many concurrent clients over
//! Unix and TCP must receive verdicts byte-identical to a single
//! sequential client, concurrent identical requests must collapse into
//! one pipeline run (singleflight), and a stalled reader must wedge
//! only itself (backpressure). Concurrency changes speed, never
//! answers.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use vault_server::{
    serve_connection, CheckService, Json, MuxConfig, MuxServer, ServiceConfig, UnitIn,
};

fn corpus_units() -> Vec<UnitIn> {
    vault_corpus::all_programs()
        .into_iter()
        .map(|p| UnitIn {
            name: p.id.to_string(),
            source: p.source,
        })
        .collect()
}

/// One `check` request line per unit, with a stable id per unit so
/// responses are comparable across clients and transports.
fn request_lines(units: &[UnitIn]) -> Vec<String> {
    units
        .iter()
        .enumerate()
        .map(|(i, u)| {
            Json::Obj(vec![
                ("op".to_string(), Json::str("check")),
                ("id".to_string(), Json::num(i as u64)),
                (
                    "units".to_string(),
                    Json::Arr(vec![Json::Obj(vec![
                        ("name".to_string(), Json::str(&u.name)),
                        ("source".to_string(), Json::str(&u.source)),
                    ])]),
                ),
            ])
            .to_line()
        })
        .collect()
}

/// Zero out the fields that legitimately vary run to run: wall times,
/// and the `cached` flag — it reports where an answer came from (cache,
/// singleflight join, fresh check), which concurrency may change; the
/// answer itself may not.
fn strip_speed_fields(v: Json) -> Json {
    match v {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k == "wall_micros" || k == "check_micros" {
                        (k, Json::num(0))
                    } else if k == "cached" {
                        (k, Json::Bool(false))
                    } else {
                        (k, strip_speed_fields(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_speed_fields).collect()),
        other => other,
    }
}

/// The reference transcript: a fresh service, one sequential client.
fn sequential_baseline(lines: &[String]) -> Vec<String> {
    let svc = CheckService::new(ServiceConfig {
        jobs: 2,
        cache_capacity: 1024,
        ..Default::default()
    });
    let input = lines.join("\n") + "\n";
    let mut out = Vec::new();
    serve_connection(&svc, input.as_bytes(), &mut out).unwrap();
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| strip_speed_fields(vault_server::parse_json(l).unwrap()).to_line())
        .collect()
}

/// Drive one client over an arbitrary stream: send every request, read
/// every response (in order), return the stripped response lines.
fn drive<S: Read + Write>(stream: S, lines: &[String], reader: BufReader<S>) -> Vec<String> {
    let mut writer = stream;
    let mut reader = reader;
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        assert!(
            reader.read_line(&mut response).unwrap() > 0,
            "server closed the connection mid-run"
        );
        responses.push(
            strip_speed_fields(vault_server::parse_json(response.trim_end()).unwrap()).to_line(),
        );
    }
    responses
}

fn start_mux(config: MuxConfig) -> (Arc<CheckService>, std::path::PathBuf, std::net::SocketAddr) {
    let svc = Arc::new(CheckService::new(ServiceConfig {
        jobs: 2,
        cache_capacity: 1024,
        ..Default::default()
    }));
    let path = std::env::temp_dir().join(format!(
        "vault_mux_{}_{:?}.sock",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut mux = MuxServer::new(Arc::clone(&svc), config);
    mux.bind_unix(&path).expect("bind unix");
    let addr = mux.bind_tcp("127.0.0.1:0").expect("bind tcp");
    std::thread::spawn(move || mux.run().expect("serve"));
    (svc, path, addr)
}

fn shutdown(path: &std::path::Path) {
    let mut stream = UnixStream::connect(path).expect("connect for shutdown");
    stream.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
    let mut ack = String::new();
    BufReader::new(stream).read_line(&mut ack).unwrap();
}

#[test]
fn many_clients_over_unix_and_tcp_match_one_sequential_client() {
    let units = corpus_units();
    assert!(units.len() > 20, "corpus unexpectedly small");
    let lines = Arc::new(request_lines(&units));
    let baseline = sequential_baseline(&lines);
    assert_eq!(baseline.len(), lines.len());

    let (_svc, path, addr) = start_mux(MuxConfig::default());
    const CLIENTS_PER_TRANSPORT: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS_PER_TRANSPORT * 2));
    let mut handles = Vec::new();
    for _ in 0..CLIENTS_PER_TRANSPORT {
        let (l, b, p) = (Arc::clone(&lines), Arc::clone(&barrier), path.clone());
        handles.push(std::thread::spawn(move || {
            let stream = UnixStream::connect(&p).expect("connect unix");
            let reader = BufReader::new(stream.try_clone().unwrap());
            b.wait();
            drive(stream, &l, reader)
        }));
        let (l, b) = (Arc::clone(&lines), Arc::clone(&barrier));
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect tcp");
            let reader = BufReader::new(stream.try_clone().unwrap());
            b.wait();
            drive(stream, &l, reader)
        }));
    }
    for (i, handle) in handles.into_iter().enumerate() {
        let responses = handle.join().expect("client thread");
        assert_eq!(
            responses, baseline,
            "client {i} diverged from the sequential transcript"
        );
    }
    shutdown(&path);
}

#[test]
fn concurrent_identical_requests_collapse_to_one_pipeline_run() {
    // Service-level singleflight: k threads race the same unit; exactly
    // one check runs, everyone gets the same summary.
    const THREADS: usize = 8;
    let svc = Arc::new(CheckService::new(ServiceConfig {
        jobs: 2,
        cache_capacity: 64,
        ..Default::default()
    }));
    let unit = UnitIn {
        name: "hot.vlt".to_string(),
        source: "type FILE;\ntracked(F) FILE fopen(string p) [new F];\nvoid fclose(tracked(F) FILE f) [-F];\nvoid f() { tracked(F) FILE x = fopen(\"a\"); fclose(x); }\nvoid g() { tracked(F) FILE y = fopen(\"b\"); fclose(y); }".to_string(),
    };
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (svc, unit, barrier) = (Arc::clone(&svc), unit.clone(), Arc::clone(&barrier));
            std::thread::spawn(move || {
                barrier.wait();
                let (mut reports, _) = svc.check_units(vec![unit]);
                reports.remove(0)
            })
        })
        .collect();
    let reports: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first = &reports[0];
    for r in &reports {
        assert_eq!(
            *r.summary, *first.summary,
            "a joined/cached verdict diverged from the leader's"
        );
    }
    let snap = svc.status();
    assert_eq!(snap.cache_misses, 1, "exactly one pipeline run");
    assert_eq!(
        snap.singleflight_joins + snap.cache_hits,
        (THREADS - 1) as u64,
        "everyone else joined in flight or hit the cache"
    );
    assert_eq!(snap.units_checked, THREADS as u64);
}

#[test]
fn a_stalled_reader_cannot_wedge_other_clients() {
    // Tiny write buffer so the stall bites quickly.
    let (_svc, path, _addr) = start_mux(MuxConfig {
        max_write_buffer: 4096,
        max_pending_per_conn: 4,
        ..Default::default()
    });

    // Client A: fire a burst of requests and read NOTHING.
    const BURST: usize = 256;
    let stalled = UnixStream::connect(&path).expect("connect stalled client");
    let mut w = stalled.try_clone().unwrap();
    for i in 0..BURST {
        writeln!(w, "{{\"op\":\"status\",\"id\":{i}}}").unwrap();
    }
    w.flush().unwrap();

    // Client B must stay fully served while A's responses back up.
    let units = corpus_units();
    let lines = request_lines(&units[..8.min(units.len())]);
    let baseline_len = lines.len();
    let start = Instant::now();
    let live = UnixStream::connect(&path).expect("connect live client");
    let reader = BufReader::new(live.try_clone().unwrap());
    let responses = drive(live, &lines, reader);
    assert_eq!(responses.len(), baseline_len);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "live client took {:?}; the stalled reader is wedging the loop",
        start.elapsed()
    );

    // A finally reads: every response arrives, in order, well-formed.
    let mut reader = BufReader::new(stalled);
    for i in 0..BURST {
        let mut response = String::new();
        assert!(
            reader.read_line(&mut response).unwrap() > 0,
            "stalled client's response {i} lost"
        );
        let v = vault_server::parse_json(response.trim_end()).unwrap();
        assert_eq!(
            v.get("id").and_then(Json::as_u64),
            Some(i as u64),
            "responses out of order for the stalled client"
        );
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }
    shutdown(&path);
}

#[test]
fn retrying_client_works_over_tcp() {
    let (_svc, path, addr) = start_mux(MuxConfig::default());
    let mut client = vault_server::Client::tcp(addr.to_string());
    let response = client
        .check(&[UnitIn {
            name: "t.vlt".to_string(),
            source: "void f() { }".to_string(),
        }])
        .expect("tcp check");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let unit = &response.get("units").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(unit.get("verdict").and_then(Json::as_str), Some("accepted"));
    let status = client.status().expect("tcp status");
    assert_eq!(status.get("requests").and_then(Json::as_u64), Some(2));
    shutdown(&path);
}
