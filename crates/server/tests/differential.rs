//! Differential test for the optimized checker (ISSUE 3).
//!
//! The symbol-interning + copy-on-write flow-state overhaul must be
//! invisible in the output: every diagnostic the checker renders has to
//! be **byte-identical** to what the pre-optimization checker produced.
//! The golden file under `tests/golden/` was generated at the
//! pre-optimization commit (`UPDATE_GOLDEN=1 cargo test -p vault-server
//! --test differential`) and is the frozen reference; this test replays
//! the whole built-in corpus plus a spread of deterministic synthetic
//! programs and diffs the rendered output against it.
//!
//! The incremental (function-granular) service path is covered too:
//! reassembled summaries must match the monolithic checker byte for
//! byte on the same workload.

use std::fmt::Write as _;
use vault_core::check_summary;
use vault_corpus::synth::{generate, Shape, SynthConfig};
use vault_server::{CheckService, ServiceConfig, UnitIn};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/corpus_diagnostics.txt"
);

/// Every corpus program plus deterministic synthetic units of each
/// shape, some with seeded bugs so rejection diagnostics are covered.
fn workload() -> Vec<UnitIn> {
    let mut units: Vec<UnitIn> = vault_corpus::all_programs()
        .into_iter()
        .map(|p| UnitIn {
            name: p.id.to_string(),
            source: p.source,
        })
        .collect();
    let shapes = [
        Shape::Mixed,
        Shape::Straight,
        Shape::Branchy,
        Shape::Loopy,
        Shape::VariantHeavy,
    ];
    for (i, shape) in shapes.iter().cycle().take(10).enumerate() {
        let program = generate(&SynthConfig {
            functions: 6,
            stmts_per_fn: 10,
            seed: 0xD1FF + i as u64,
            bug_rate: if i % 2 == 0 { 0.4 } else { 0.0 },
            shape: *shape,
        });
        units.push(UnitIn {
            name: format!("synth_{i}_{shape:?}.vlt"),
            source: program.source,
        });
    }
    units
}

/// One canonical text rendering of checking the whole workload: unit
/// name, verdict, then every rendered diagnostic verbatim.
fn render_workload() -> String {
    let mut out = String::new();
    for u in workload() {
        let s = check_summary(&u.name, &u.source);
        let _ = writeln!(out, "=== {} ({}) ===", u.name, s.verdict.as_str());
        let rendered = s.render_diagnostics();
        if !rendered.is_empty() {
            out.push_str(&rendered);
            if !rendered.ends_with('\n') {
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn diagnostics_byte_identical_to_pre_optimization_golden() {
    let got = render_workload();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1 at a known-good commit");
    if got != want {
        // Point at the first diverging line rather than dumping both
        // multi-thousand-line strings.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "first divergence at golden line {} (run with UPDATE_GOLDEN=1 only if the change is intended)",
                i + 1
            );
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "rendered output length diverged from golden"
        );
        panic!("outputs differ in whitespace only — still a byte-level divergence");
    }
}

#[test]
fn incremental_service_matches_monolithic_checker() {
    // The function-granular service path must reassemble summaries that
    // are structurally identical (diagnostics, verdicts, rendered text)
    // to the plain sequential checker.
    let units = workload();
    let svc = CheckService::new(ServiceConfig {
        jobs: 2,
        cache_capacity: units.len() * 2,
        ..Default::default()
    });
    let (reports, _) = svc.check_units(units.clone());
    for (r, u) in reports.iter().zip(&units) {
        let want = check_summary(&u.name, &u.source);
        assert_eq!(*r.summary, want, "unit {} diverged", u.name);
        assert_eq!(
            r.summary.render_diagnostics(),
            want.render_diagnostics(),
            "unit {} rendered output diverged",
            u.name
        );
    }
}
