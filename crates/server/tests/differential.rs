//! Differential test for the optimized checker (ISSUE 3).
//!
//! The symbol-interning + copy-on-write flow-state overhaul must be
//! invisible in the output: every diagnostic the checker renders has to
//! be **byte-identical** to what the pre-optimization checker produced.
//! The golden file under `tests/golden/` was generated at the
//! pre-optimization commit (`UPDATE_GOLDEN=1 cargo test -p vault-server
//! --test differential`) and is the frozen reference; this test replays
//! the whole built-in corpus plus a spread of deterministic synthetic
//! programs and diffs the rendered output against it.
//!
//! The incremental (function-granular) service path is covered too:
//! reassembled summaries must match the monolithic checker byte for
//! byte on the same workload.

use std::fmt::Write as _;
use vault_core::check_summary;
use vault_corpus::synth::{generate, Shape, SynthConfig};
use vault_server::{CheckService, ServiceConfig, UnitIn};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/corpus_diagnostics.txt"
);

/// Every corpus program plus deterministic synthetic units of each
/// shape, some with seeded bugs so rejection diagnostics are covered.
fn workload() -> Vec<UnitIn> {
    let mut units: Vec<UnitIn> = vault_corpus::all_programs()
        .into_iter()
        .map(|p| UnitIn {
            name: p.id.to_string(),
            source: p.source,
        })
        .collect();
    let shapes = [
        Shape::Mixed,
        Shape::Straight,
        Shape::Branchy,
        Shape::Loopy,
        Shape::VariantHeavy,
    ];
    for (i, shape) in shapes.iter().cycle().take(10).enumerate() {
        let program = generate(&SynthConfig {
            functions: 6,
            stmts_per_fn: 10,
            seed: 0xD1FF + i as u64,
            bug_rate: if i % 2 == 0 { 0.4 } else { 0.0 },
            shape: *shape,
        });
        units.push(UnitIn {
            name: format!("synth_{i}_{shape:?}.vlt"),
            source: program.source,
        });
    }
    units
}

/// One canonical text rendering of checking the whole workload: unit
/// name, verdict, then every rendered diagnostic verbatim.
fn render_workload() -> String {
    let mut out = String::new();
    for u in workload() {
        let s = check_summary(&u.name, &u.source);
        let _ = writeln!(out, "=== {} ({}) ===", u.name, s.verdict.as_str());
        let rendered = s.render_diagnostics();
        if !rendered.is_empty() {
            out.push_str(&rendered);
            if !rendered.ends_with('\n') {
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn diagnostics_byte_identical_to_pre_optimization_golden() {
    let got = render_workload();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(GOLDEN, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; regenerate with UPDATE_GOLDEN=1 at a known-good commit");
    if got != want {
        // Point at the first diverging line rather than dumping both
        // multi-thousand-line strings.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(
                g,
                w,
                "first divergence at golden line {} (run with UPDATE_GOLDEN=1 only if the change is intended)",
                i + 1
            );
        }
        assert_eq!(
            got.lines().count(),
            want.lines().count(),
            "rendered output length diverged from golden"
        );
        panic!("outputs differ in whitespace only — still a byte-level divergence");
    }
}

/// The `(code, severity, message)` projection of a summary's
/// diagnostics — everything except attribution (file/line/col and the
/// rendered source quote), which legitimately differs between a
/// flattened single-unit check and a project-mode check of the same
/// program text.
fn triples(s: &vault_core::CheckSummary) -> Vec<(String, String, String)> {
    s.diagnostics
        .iter()
        .map(|d| (d.code.clone(), d.severity.clone(), d.message.clone()))
        .collect()
}

#[test]
fn project_split_floppy_matches_flattened_modulo_attribution() {
    use vault_project::{check_project, ProjectUnit};
    let limits = vault_core::Limits::default();

    // The clean driver: flattened and split must agree — accepted, no
    // diagnostics anywhere.
    let flat = check_summary("floppy_driver", &vault_corpus::floppy::driver_source());
    let units: Vec<ProjectUnit> = vault_corpus::floppy::project_units()
        .into_iter()
        .map(|(name, source)| ProjectUnit::new(name, source))
        .collect();
    let split = check_project(&units, &limits);
    assert_eq!(split.len(), 3);
    for s in &split {
        assert_eq!(s.verdict, flat.verdict, "unit {}", s.name);
    }
    let split_triples: Vec<_> = split.iter().flat_map(|s| triples(s)).collect();
    assert_eq!(split_triples, triples(&flat));

    // Every seeded-bug mutant: the flattened corpus entry and the
    // project split of the same mutation must produce identical
    // diagnostic sequences (interface units stay silent, so the
    // concatenation in manifest order lines up with the single unit).
    let flattened_mutants: Vec<_> = vault_corpus::floppy::programs().split_off(1);
    let project_mutants = vault_corpus::floppy::project_mutants();
    assert_eq!(flattened_mutants.len(), project_mutants.len());
    for (flat_prog, (id, units, code)) in flattened_mutants.iter().zip(project_mutants) {
        assert_eq!(flat_prog.id, id, "corpus orders diverged");
        let flat = check_summary(id, &flat_prog.source);
        let units: Vec<ProjectUnit> = units
            .into_iter()
            .map(|(name, source)| ProjectUnit::new(name, source))
            .collect();
        let split = check_project(&units, &limits);
        assert_eq!(split[0].diagnostics.len(), 0, "{id}: kernel unit not clean");
        assert_eq!(split[1].diagnostics.len(), 0, "{id}: hw unit not clean");
        let split_triples: Vec<_> = split.iter().flat_map(|s| triples(s)).collect();
        assert_eq!(split_triples, triples(&flat), "{id} diverged");
        assert!(
            split[2].diagnostics.iter().any(|d| d.code == code.as_str()),
            "{id}: expected {code} in the driver unit"
        );
    }
}

#[test]
fn project_service_matches_sequential_reference() {
    // The parallel project scheduler must be byte-identical to the
    // sequential reference implementation, cold and warm.
    use vault_project::{check_project, ProjectUnit};
    let units: Vec<ProjectUnit> = vault_corpus::floppy::project_units()
        .into_iter()
        .map(|(name, source)| ProjectUnit::new(name, source))
        .collect();
    let want = check_project(&units, &vault_core::Limits::default());
    let svc = CheckService::new(ServiceConfig {
        jobs: 4,
        ..Default::default()
    });
    let wire: Vec<UnitIn> = units
        .iter()
        .map(|u| UnitIn {
            name: u.name.clone(),
            source: u.source.clone(),
        })
        .collect();
    for round in 0..2 {
        let (reports, _) = svc.check_project(wire.clone());
        for (r, w) in reports.iter().zip(&want) {
            assert_eq!(*r.summary, *w, "round {round}, unit {}", w.name);
        }
        // Second round answers entirely from the project cache.
        if round == 1 {
            assert!(reports.iter().all(|r| r.cached));
        }
    }
}

#[test]
fn incremental_service_matches_monolithic_checker() {
    // The function-granular service path must reassemble summaries that
    // are structurally identical (diagnostics, verdicts, rendered text)
    // to the plain sequential checker.
    let units = workload();
    let svc = CheckService::new(ServiceConfig {
        jobs: 2,
        cache_capacity: units.len() * 2,
        ..Default::default()
    });
    let (reports, _) = svc.check_units(units.clone());
    for (r, u) in reports.iter().zip(&units) {
        let want = check_summary(&u.name, &u.source);
        assert_eq!(*r.summary, want, "unit {} diverged", u.name);
        assert_eq!(
            r.summary.render_diagnostics(),
            want.render_diagnostics(),
            "unit {} rendered output diverged",
            u.name
        );
    }
}
