//! Determinism of project mode (ISSUE 5 acceptance criterion): checking
//! a multi-unit project through the parallel DAG scheduler at `--jobs 4`
//! must be byte-identical to `--jobs 1` — and to the sequential
//! reference in `vault-project` — for every manifest ordering. Fifty
//! seeded shuffles of the manifest exercise reassembly under every
//! interleaving the small project admits.

use vault_core::Limits;
use vault_corpus::synth::{generate, Shape, SynthConfig};
use vault_project::{check_project, ProjectUnit};
use vault_server::{CheckService, Json, ServiceConfig, UnitIn};

/// The split floppy project plus standalone synthetic units, so shuffles
/// interleave imported units with import-free ones.
fn project_units() -> Vec<UnitIn> {
    let mut units: Vec<UnitIn> = vault_corpus::floppy::project_units()
        .into_iter()
        .map(|(name, source)| UnitIn {
            name: name.to_string(),
            source,
        })
        .collect();
    for i in 0..4u64 {
        let program = generate(&SynthConfig {
            functions: 3,
            stmts_per_fn: 8,
            seed: 0x9E37 + i,
            bug_rate: if i % 2 == 0 { 0.4 } else { 0.0 },
            shape: Shape::Mixed,
        });
        units.push(UnitIn {
            name: format!("standalone_{i}"),
            source: program.source,
        });
    }
    units
}

/// Minimal deterministic PRNG (xorshift64*) for seeded shuffles; the
/// workspace deliberately has no external dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut Rng) {
    for i in (1..items.len()).rev() {
        let j = (rng.next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Replace wall-time fields (nondeterministic by nature) with zero.
fn strip_timings(v: Json) -> Json {
    match v {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k == "wall_micros" || k == "check_micros" {
                        (k, Json::num(0))
                    } else {
                        (k, strip_timings(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_timings).collect()),
        other => other,
    }
}

#[test]
fn parallel_project_checks_are_byte_identical_across_job_counts() {
    let base = project_units();
    let mut rng = Rng(0x5EED_CAFE);
    for round in 0..50 {
        let mut units = base.clone();
        shuffle(&mut units, &mut rng);

        // Sequential reference on the shuffled manifest order.
        let reference_units: Vec<ProjectUnit> = units
            .iter()
            .map(|u| ProjectUnit::new(&u.name, &u.source))
            .collect();
        let reference = check_project(&reference_units, &Limits::default());

        let mut lines = Vec::new();
        for jobs in [1usize, 4] {
            let svc = CheckService::new(ServiceConfig {
                jobs,
                cache_capacity: units.len() * 2,
                ..Default::default()
            });
            let (reports, _) = svc.check_project(units.clone());
            assert_eq!(reports.len(), reference.len());
            for (report, expect) in reports.iter().zip(&reference) {
                assert_eq!(
                    *report.summary, *expect,
                    "round {round} jobs={jobs} unit={} diverged from the \
                     sequential project reference",
                    expect.name
                );
            }
            let encoded = vault_server::proto::encode_check_project(Some(1), &reports, 0);
            lines.push(strip_timings(encoded).to_line());
        }
        assert_eq!(lines[0], lines[1], "round {round}: wire output diverged");
    }
}
