//! Torture test: the daemon must answer correctly under sustained fault
//! injection — panicking check jobs, delayed jobs, and short writes on
//! the response stream.
//!
//! Compiled only with `--features chaos`. The invariants proven here:
//!
//! 1. The daemon survives ≥1000 chaos-exposed requests on one socket
//!    without hanging, dropping a connection, or exiting.
//! 2. Every response is well-formed JSON with one line per request.
//! 3. A chaos-hit unit reports a structured `internal-error` verdict
//!    whose diagnostic carries the injected panic payload.
//! 4. Every unit chaos did **not** hit reports a verdict and rendered
//!    diagnostics byte-identical to a chaos-free sequential check.
//! 5. The fault counters in `status` account for what was injected.

#![cfg(feature = "chaos")]

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vault_server::chaos::{self, ChaosConfig};
use vault_server::{
    CheckService, Client, Json, MuxConfig, MuxServer, RetryPolicy, ServiceConfig, ServiceLimits,
    UnitIn, UnixServer,
};

const REQUESTS: usize = 1000;

/// Chaos faults are armed process-wide, so every test in this binary
/// serializes on this lock; an armed schedule must never bleed into a
/// neighbouring test's server.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    match EXCLUSIVE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A small mixed workload: verdicts and diagnostics differ per unit.
fn workload() -> Vec<(UnitIn, String, String)> {
    let sources: &[(&str, &str)] = &[
        (
            "ok.vlt",
            "type FILE;\ntracked(F) FILE fopen(string p) [new F];\nvoid fclose(tracked(F) FILE f) [-F];\nvoid f() { tracked(F) FILE x = fopen(\"a\"); fclose(x); }",
        ),
        (
            "leak.vlt",
            "type FILE;\ntracked(F) FILE fopen(string p) [new F];\nvoid f() { tracked(F) FILE x = fopen(\"a\"); }",
        ),
        ("tiny.vlt", "void f() { }"),
        ("parse_err.vlt", "void f( {"),
        (
            "states.vlt",
            "stateset S = [ a < b ];\nkey G @ S;\nvoid h() [G@a] { }",
        ),
    ];
    sources
        .iter()
        .map(|(name, source)| {
            let summary = vault_core::check_summary(name, source);
            let rendered: String = summary
                .diagnostics
                .iter()
                .map(|d| d.rendered.as_str())
                .collect();
            (
                UnitIn {
                    name: name.to_string(),
                    source: source.to_string(),
                },
                summary.verdict.as_str().to_string(),
                rendered,
            )
        })
        .collect()
}

#[test]
fn daemon_survives_a_thousand_chaos_requests_and_stays_correct() {
    let _guard = exclusive();
    // Arm everything at once: job panics, job delays, short writes.
    chaos::arm(ChaosConfig {
        seed: 0xDEAD_BEEF,
        panic_prob: 0.05,
        delay_prob: 0.05,
        delay: Duration::from_millis(1),
        short_write_chunk: Some(5),
        ..Default::default()
    });

    let svc = Arc::new(CheckService::new(ServiceConfig {
        jobs: 4,
        // Tiny cache so plenty of checks actually run under chaos
        // instead of everything being a warm hit after round one.
        cache_capacity: 2,
        limits: ServiceLimits::default(),
        ..Default::default()
    }));
    let path = std::env::temp_dir().join(format!("vaultd_chaos_{}.sock", std::process::id()));
    let server = UnixServer::bind(Arc::clone(&svc), &path).expect("bind socket");
    let server_thread = std::thread::spawn(move || server.run().expect("serve"));

    let mut client = Client::with_policy(
        &path,
        RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        },
    );
    let expected = workload();
    let start = Instant::now();
    let mut chaos_hits = 0u64;
    for i in 0..REQUESTS {
        // Rotate through 1..=3-unit batches so batch fan-out, ordering,
        // and the cache all stay exercised.
        let take = 1 + (i % 3);
        let batch: Vec<UnitIn> = (0..take)
            .map(|j| expected[(i + j) % expected.len()].0.clone())
            .collect();
        let response = client.check(&batch).expect("daemon must keep answering");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {i} failed"
        );
        let units = response.get("units").and_then(Json::as_arr).unwrap();
        assert_eq!(units.len(), batch.len(), "request {i} lost units");
        for (j, u) in units.iter().enumerate() {
            let (_, want_verdict, want_rendered) = &expected[(i + j) % expected.len()];
            let got = u.get("verdict").and_then(Json::as_str).unwrap();
            if got == "internal-error" {
                // Chaos hit this unit: the panic payload must be in the
                // diagnostic so operators can tell it from a real bug.
                chaos_hits += 1;
                let diags = u.get("diagnostics").and_then(Json::as_arr).unwrap();
                assert!(
                    diags.iter().any(|d| d
                        .get("message")
                        .and_then(Json::as_str)
                        .is_some_and(|m| m.contains(chaos::PANIC_PAYLOAD))),
                    "request {i} unit {j}: internal-error without the chaos payload"
                );
                continue;
            }
            // Untouched units must be byte-identical to sequential.
            assert_eq!(got, want_verdict, "request {i} unit {j}");
            let rendered: String = u
                .get("diagnostics")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|d| d.get("rendered").and_then(Json::as_str).unwrap())
                .collect();
            assert_eq!(&rendered, want_rendered, "request {i} unit {j}");
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "chaos run took {:?}; the daemon is likely wedging",
        start.elapsed()
    );
    assert!(chaos_hits > 0, "chaos never fired; the harness is inert");

    // The daemon itself accounts for the injected faults.
    let status = client.status().expect("status");
    assert!(status.get("panics_caught").and_then(Json::as_u64).unwrap() > 0);

    // Graceful exit: shutdown drains and the server thread returns.
    chaos::disarm();
    let _ = client.shutdown();
    server_thread.join().expect("server thread exits cleanly");
}

#[test]
fn multiplexer_survives_connection_level_chaos_and_stays_correct() {
    let _guard = exclusive();
    // Everything at once, now including the connection-level faults the
    // multiplexer owns: dropped accepts, mid-response disconnects, and
    // stalled executors, on top of job panics, delays, and short writes.
    chaos::arm(ChaosConfig {
        seed: 0x0C0F_FEE5,
        panic_prob: 0.05,
        delay_prob: 0.05,
        delay: Duration::from_millis(1),
        short_write_chunk: Some(5),
        accept_fail_prob: 0.05,
        disconnect_prob: 0.02,
        stall_prob: 0.05,
        stall: Duration::from_millis(2),
        ..Default::default()
    });

    let svc = Arc::new(CheckService::new(ServiceConfig {
        jobs: 4,
        cache_capacity: 2,
        limits: ServiceLimits::default(),
        ..Default::default()
    }));
    let path = std::env::temp_dir().join(format!("vaultd_chaos_mux_{}.sock", std::process::id()));
    let mut mux = MuxServer::new(Arc::clone(&svc), MuxConfig::default());
    mux.bind_unix(&path).expect("bind socket");
    let server_thread = std::thread::spawn(move || mux.run().expect("serve"));

    let mut client = Client::with_policy(
        &path,
        RetryPolicy {
            attempts: 10,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        },
    );
    let expected = workload();
    let start = Instant::now();
    let mut chaos_hits = 0u64;
    for i in 0..400 {
        let take = 1 + (i % 3);
        let batch: Vec<UnitIn> = (0..take)
            .map(|j| expected[(i + j) % expected.len()].0.clone())
            .collect();
        let response = client.check(&batch).expect("daemon must keep answering");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {i} failed"
        );
        let units = response.get("units").and_then(Json::as_arr).unwrap();
        assert_eq!(units.len(), batch.len(), "request {i} lost units");
        for (j, u) in units.iter().enumerate() {
            let (_, want_verdict, want_rendered) = &expected[(i + j) % expected.len()];
            let got = u.get("verdict").and_then(Json::as_str).unwrap();
            if got == "internal-error" {
                chaos_hits += 1;
                continue;
            }
            assert_eq!(got, want_verdict, "request {i} unit {j}");
            let rendered: String = u
                .get("diagnostics")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .map(|d| d.get("rendered").and_then(Json::as_str).unwrap())
                .collect();
            assert_eq!(&rendered, want_rendered, "request {i} unit {j}");
        }
    }
    assert!(
        start.elapsed() < Duration::from_secs(120),
        "chaos run took {:?}; the multiplexer is likely wedging",
        start.elapsed()
    );
    assert!(
        chaos_hits > 0,
        "chaos never hit a job; the harness is inert"
    );

    chaos::disarm();
    let _ = client.shutdown();
    server_thread.join().expect("server thread exits cleanly");
}

#[test]
fn accept_faults_are_counted_and_outlasted_by_a_retrying_client() {
    let _guard = exclusive();
    // Every accept is dropped on the floor until a helper disarms chaos
    // ~100ms in: the retrying client must outlast the outage, and the
    // daemon must have accounted for every dropped connection.
    chaos::arm(ChaosConfig {
        seed: 0xACC_E97,
        panic_prob: 0.0,
        delay_prob: 0.0,
        short_write_chunk: None,
        accept_fail_prob: 1.0,
        ..Default::default()
    });

    let svc = Arc::new(CheckService::new(ServiceConfig {
        jobs: 2,
        cache_capacity: 16,
        ..Default::default()
    }));
    let path =
        std::env::temp_dir().join(format!("vaultd_chaos_accept_{}.sock", std::process::id()));
    let mut mux = MuxServer::new(Arc::clone(&svc), MuxConfig::default());
    mux.bind_unix(&path).expect("bind socket");
    let server_thread = std::thread::spawn(move || mux.run().expect("serve"));

    let healer = std::thread::spawn(|| {
        std::thread::sleep(Duration::from_millis(100));
        chaos::disarm();
    });

    let mut client = Client::with_policy(
        &path,
        RetryPolicy {
            attempts: 20,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
        },
    );
    let response = client
        .check(&[UnitIn {
            name: "t.vlt".to_string(),
            source: "void f() { }".to_string(),
        }])
        .expect("client must outlast the accept outage");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    healer.join().unwrap();

    let status = client.status().expect("status");
    let dropped = status.get("accept_errors").and_then(Json::as_u64).unwrap();
    assert!(dropped > 0, "no accept fault was counted");

    let _ = client.shutdown();
    server_thread.join().expect("server thread exits cleanly");
}
