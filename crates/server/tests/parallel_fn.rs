//! Counter aggregation under per-function parallel checking (ISSUE 8).
//!
//! The per-function fan-out must not change any semantic counter:
//! `CheckStats` (`snapshots`, `frames_copied`, `joins`,
//! `loop_iterations`) is summed from per-function deltas at assembly,
//! and the fn-cache hit/miss metrics are counted in function order, so
//! a service at `--jobs 4` must report exactly what `--jobs 1` does on
//! identical traffic.

use vault_server::{CheckService, ServiceConfig, UnitIn};

fn floppy_units() -> Vec<UnitIn> {
    vault_corpus::floppy::programs()
        .into_iter()
        .map(|p| UnitIn {
            name: p.id.to_string(),
            source: p.source,
        })
        .collect()
}

fn floppy_project() -> Vec<UnitIn> {
    vault_corpus::floppy::project_units()
        .into_iter()
        .map(|(name, source)| UnitIn {
            name: name.to_string(),
            source,
        })
        .collect()
}

/// Per-unit semantic counters plus the service-wide fn-cache metrics.
#[derive(Debug, PartialEq)]
struct CounterSheet {
    per_unit: Vec<(String, usize, usize, usize, usize)>,
    fn_cache_hits: u64,
    fn_cache_misses: u64,
}

fn run(jobs: usize, units: Vec<UnitIn>, project: bool) -> CounterSheet {
    let svc = CheckService::new(ServiceConfig {
        jobs,
        cache_capacity: units.len() * 2 + 8,
        ..Default::default()
    });
    let (reports, _) = if project {
        svc.check_project(units)
    } else {
        svc.check_units(units)
    };
    let snap = svc.status();
    CounterSheet {
        per_unit: reports
            .iter()
            .map(|r| {
                let s = &r.summary.stats;
                (
                    r.summary.name.clone(),
                    s.snapshots,
                    s.frames_copied,
                    s.joins,
                    s.loop_iterations,
                )
            })
            .collect(),
        fn_cache_hits: snap.fn_cache_hits,
        fn_cache_misses: snap.fn_cache_misses,
    }
}

#[test]
fn stats_counters_aggregate_identically_across_job_counts() {
    let units = floppy_units();
    assert!(units.len() >= 2, "floppy corpus unexpectedly small");
    let one = run(1, units.clone(), false);
    let four = run(4, units, false);
    assert!(four.fn_cache_misses > 0, "fan-out never checked a body");
    assert_eq!(one, four);
}

#[test]
fn project_stats_counters_aggregate_identically_across_job_counts() {
    let units = floppy_project();
    let one = run(1, units.clone(), true);
    let four = run(4, units, true);
    assert!(four.fn_cache_misses > 0, "fan-out never checked a body");
    assert_eq!(one, four);
}

#[test]
fn warm_fn_cache_hits_aggregate_identically_across_job_counts() {
    // A same-length body edit leaves every other function a fn-cache
    // hit; the parallel assembly must count those hits exactly as the
    // sequential loop does.
    let units = floppy_units();
    let edited: Vec<UnitIn> = units
        .iter()
        .map(|u| UnitIn {
            name: u.name.clone(),
            source: u.source.replacen("status", "statsu", 1),
        })
        .collect();
    let mut sheets = Vec::new();
    for jobs in [1usize, 4] {
        let svc = CheckService::new(ServiceConfig {
            jobs,
            cache_capacity: units.len() * 2 + 8,
            ..Default::default()
        });
        svc.check_units(units.clone());
        let (reports, _) = svc.check_units(edited.clone());
        let snap = svc.status();
        sheets.push((
            reports
                .iter()
                .map(|r| ((*r.summary).clone(), r.cached))
                .collect::<Vec<_>>(),
            snap.fn_cache_hits,
            snap.fn_cache_misses,
        ));
    }
    assert_eq!(sheets[0], sheets[1]);
}
