//! Crash-fuzz smoke test: the checker must be total over byte-mutated
//! near-miss programs — structured verdicts in bounded time, no panics.
//!
//! Not a real fuzzer (no coverage feedback, fixed seed); this is the
//! cheap regression net that keeps `check_summary` panic-free on the
//! kind of garbage a misbehaving client can send the daemon. The seed
//! is fixed so a failure reproduces exactly.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

const SEED: u64 = 0x5EED_F00D;
const MUTANTS_PER_PROGRAM: usize = 24;
const MUTATIONS_PER_MUTANT: usize = 8;

/// Bytes a mutation may splice in: protocol-relevant punctuation plus
/// raw bytes, so both parser and lexer edge cases get poked.
const SPLICE: &[u8] = b"{}()[]<>;:@,'\"\\|!=+-*/ \n\t\0\xff";

fn mutate(source: &str, rng: &mut StdRng) -> String {
    let mut bytes = source.as_bytes().to_vec();
    for _ in 0..MUTATIONS_PER_MUTANT {
        if bytes.is_empty() {
            break;
        }
        let at = rng.gen_range(0..bytes.len());
        match rng.gen_range(0..4u8) {
            0 => {
                // Flip: overwrite one byte.
                let b = SPLICE[rng.gen_range(0..SPLICE.len())];
                bytes[at] = b;
            }
            1 => {
                // Insert.
                let b = SPLICE[rng.gen_range(0..SPLICE.len())];
                bytes.insert(at, b);
            }
            2 => {
                // Delete.
                bytes.remove(at);
            }
            _ => {
                // Truncate the tail — models a cut-off upload.
                bytes.truncate(at);
            }
        }
    }
    // The checker takes &str; lossy conversion models what the JSON
    // layer would hand it anyway.
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn checker_is_total_over_byte_mutated_corpus() {
    let programs = vault_corpus::all_programs();
    assert!(!programs.is_empty());
    let mut rng = StdRng::seed_from_u64(SEED);
    let start = Instant::now();
    let mut checked = 0usize;
    for p in &programs {
        for round in 0..MUTANTS_PER_PROGRAM {
            let mutant = mutate(&p.source, &mut rng);
            let name = format!("{}+m{round}", p.id);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                vault_core::check_summary(&name, &mutant)
            }));
            let summary = outcome.unwrap_or_else(|_| {
                panic!(
                    "checker panicked on mutant (seed {SEED:#x}, program {}, round {round}):\n{mutant}",
                    p.id
                )
            });
            // Whatever the verdict, it must be structured: a rejection
            // carries at least one error diagnostic.
            if summary.verdict == vault_core::Verdict::Rejected {
                assert!(
                    !summary.error_codes().is_empty(),
                    "rejected without diagnostics: {}",
                    name
                );
            }
            checked += 1;
        }
    }
    // Bounded time: mutants must not send the checker into pathological
    // blowup. Generous ceiling for slow CI machines.
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "{checked} mutants took {:?}",
        start.elapsed()
    );
}
