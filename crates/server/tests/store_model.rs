//! Model test for the segmented verdict store: randomized writes,
//! compactions, restarts, and injected crashes over seeded schedules.
//!
//! The store's contract is *speed, not answers*: every record's content
//! is a pure function of its fingerprint (exactly as the real cache's
//! content is a pure function of the source it fingerprints), so after
//! ANY sequence of crashes, torn writes, bit flips, truncations, index
//! corruption, and evictions, a recovered store may know fewer keys —
//! but every key it does know must carry exactly the right value.
//!
//! Three layers prove it:
//!
//! 1. `store_bound_torture_*` (always compiled, tier-1): hammer a
//!    store with a tight `--cache-max-bytes` bound and assert the bound
//!    holds after every maintenance pass and across restarts.
//! 2. `mutilated_cache_never_changes_a_service_answer` (always
//!    compiled): a full `CheckService` restarted over a cache directory
//!    that gets mutilated between runs must keep answering exactly what
//!    `vault_core::check_summary` computes from source.
//! 3. `seeded_crash_schedules_recover_faithfully` (`--features chaos`):
//!    ≥200 seeded schedules interleaving appends, supersedes, wipes,
//!    maintenance, chaos persistence faults (short writes, fsync
//!    failures, crash points inside compaction), direct file
//!    mutilation, and reopens — after every recovery, `open` must
//!    succeed and replay only faithful records.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use vault_core::check::CheckStats;
use vault_core::{CheckSummary, Verdict};
use vault_server::persist::{Loaded, Record, StoreConfig, VerdictStore, INDEX_FILE_NAME};
use vault_syntax::{DiagView, LabelView};

/// Chaos faults are armed process-wide, so every test in this binary
/// serializes on this lock; an armed schedule must never bleed into a
/// neighbouring test's store.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    match EXCLUSIVE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vault-store-model-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny deterministic generator (xorshift64) so schedules need no
/// external crate and replay exactly from their seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The one true unit verdict for fingerprint `fp`. Every append for
/// `fp` writes exactly this, mirroring how the real cache's value is
/// determined by the fingerprinted source.
fn summary_for(fp: u64) -> CheckSummary {
    CheckSummary {
        name: format!("unit-{fp:04}.vlt"),
        verdict: if fp % 2 == 0 {
            Verdict::Accepted
        } else {
            Verdict::Rejected
        },
        diagnostics: if fp % 2 == 0 {
            Vec::new()
        } else {
            vec![diag_for(fp)]
        },
        stats: CheckStats {
            statements: (fp % 97) as usize,
            calls: (fp % 13) as usize,
            ..Default::default()
        },
    }
}

fn diag_for(fp: u64) -> DiagView {
    DiagView {
        code: "V301".to_string(),
        severity: "error".to_string(),
        message: format!("value of key F leaks (unit {fp})"),
        start: 10,
        end: 20,
        line: 2,
        col: 5,
        labels: vec![LabelView {
            message: format!("opened here (unit {fp})"),
            line: 1,
            col: 1,
        }],
        rendered: format!("error[V301]: value of key F leaks (unit {fp})"),
    }
}

/// The one true per-function record for fingerprint `fp`.
fn fn_views_for(fp: u64) -> Vec<DiagView> {
    if fp % 3 == 0 {
        Vec::new()
    } else {
        vec![diag_for(fp)]
    }
}

fn fn_stats_for(fp: u64) -> CheckStats {
    CheckStats {
        statements: (fp % 31) as usize,
        joins: (fp % 5) as usize,
        ..Default::default()
    }
}

fn unit_record(fp: u64) -> Record {
    Record::Unit {
        fp,
        summary: summary_for(fp),
    }
}

fn fn_record(fp: u64) -> Record {
    Record::Fn {
        fp,
        views: fn_views_for(fp),
        stats: fn_stats_for(fp),
    }
}

/// The model invariant: recovery may have *dropped* records (that only
/// costs warmth), but every record it replays must be byte-faithful.
fn assert_faithful(loaded: &Loaded, context: &str) {
    for (fp, summary) in &loaded.units {
        assert_eq!(
            summary,
            &summary_for(*fp),
            "{context}: unit {fp:#x} replayed a corrupted verdict"
        );
    }
    for (fp, views, stats) in &loaded.fns {
        assert_eq!(
            views,
            &fn_views_for(*fp),
            "{context}: fn {fp:#x} replayed corrupted diagnostics"
        );
        assert_eq!(
            stats,
            &fn_stats_for(*fp),
            "{context}: fn {fp:#x} replayed corrupted stats"
        );
    }
}

/// Damage the cache directory the way disks and crashes do: truncate,
/// flip bits, corrupt or delete the index, drop whole segments, leave
/// stray temp files.
fn mutilate(dir: &Path, rng: &mut Rng) {
    let segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "vseg"))
                .collect()
        })
        .unwrap_or_default();
    match rng.below(6) {
        0 => {
            // Truncate a segment mid-frame.
            if let Some(path) = pick(&segs, rng) {
                if let Ok(meta) = std::fs::metadata(path) {
                    let len = meta.len();
                    if len > 0 {
                        let keep = rng.below(len + 1);
                        let _ = std::fs::OpenOptions::new()
                            .write(true)
                            .open(path)
                            .and_then(|f| f.set_len(keep));
                    }
                }
            }
        }
        1 => {
            // Flip one bit somewhere in a segment.
            if let Some(path) = pick(&segs, rng) {
                if let Ok(mut bytes) = std::fs::read(path) {
                    if !bytes.is_empty() {
                        let at = rng.below(bytes.len() as u64) as usize;
                        bytes[at] ^= 1 << rng.below(8);
                        let _ = std::fs::write(path, bytes);
                    }
                }
            }
        }
        2 => {
            // Corrupt the index in place.
            let index = dir.join(INDEX_FILE_NAME);
            if let Ok(mut bytes) = std::fs::read(&index) {
                if !bytes.is_empty() {
                    let at = rng.below(bytes.len() as u64) as usize;
                    bytes[at] = bytes[at].wrapping_add(1);
                    let _ = std::fs::write(&index, bytes);
                }
            }
        }
        3 => {
            // Delete the index outright.
            let _ = std::fs::remove_file(dir.join(INDEX_FILE_NAME));
        }
        4 => {
            // Delete a whole segment.
            if let Some(path) = pick(&segs, rng) {
                let _ = std::fs::remove_file(path);
            }
        }
        _ => {
            // A crash mid-compaction leaves stray temp files; boot
            // must sweep them, never adopt them.
            let _ = std::fs::write(dir.join("seg-999999.vseg.tmp"), b"half-written garbage");
        }
    }
}

fn pick<'a>(paths: &'a [PathBuf], rng: &mut Rng) -> Option<&'a PathBuf> {
    if paths.is_empty() {
        None
    } else {
        Some(&paths[rng.below(paths.len() as u64) as usize])
    }
}

/// Tier-1 torture: a tight disk bound must hold after every maintenance
/// pass, across seals, compactions, evictions, and a restart — and the
/// surviving records must stay faithful throughout.
#[test]
fn store_bound_torture_holds_the_disk_bound() {
    let _guard = exclusive();
    let dir = tmp_dir("bound");
    let bound: u64 = 32 * 1024;
    let cfg = StoreConfig {
        segment_max_bytes: 4 * 1024,
        max_bytes: Some(bound),
    };
    let (store, loaded) = VerdictStore::open(&dir, cfg).unwrap();
    assert_faithful(&loaded, "bound torture boot");
    let mut rng = Rng::new(0xB0B);
    for round in 0..64u32 {
        let records: Vec<Record> = (0..32)
            .map(|_| {
                // Half the stream supersedes earlier fingerprints so
                // compaction has dead bytes to reclaim; half is fresh
                // so eviction has to fire too.
                let fp = rng.below(512);
                if rng.below(4) == 0 {
                    fn_record(fp)
                } else {
                    unit_record(fp)
                }
            })
            .collect();
        store.append(&records).unwrap();
        store.maintain().unwrap();
        let health = store.health();
        assert!(
            health.disk_bytes <= bound,
            "round {round}: store holds {} bytes, bound is {bound}",
            health.disk_bytes
        );
    }
    let health = store.health();
    assert!(health.segments_sealed > 0, "the bound never forced a seal");
    assert!(
        health.bytes_reclaimed > 0,
        "64 supersede-heavy rounds reclaimed nothing"
    );
    drop(store);

    let (store, loaded) = VerdictStore::open(&dir, cfg).unwrap();
    assert_faithful(&loaded, "bound torture restart");
    assert!(
        !loaded.units.is_empty(),
        "an evicted-down store should still replay its newest segments"
    );
    assert!(store.health().disk_bytes <= bound);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A real service over a repeatedly mutilated cache directory: restart
/// after restart, every answer must equal the from-source check. The
/// damaged store may only cost warmth.
#[test]
fn mutilated_cache_never_changes_a_service_answer() {
    use vault_server::{CheckService, ServiceConfig, UnitIn};

    let _guard = exclusive();
    let sources: &[(&str, &str)] = &[
        (
            "ok.vlt",
            "type FILE;\ntracked(F) FILE fopen(string p) [new F];\nvoid fclose(tracked(F) FILE f) [-F];\nvoid f() { tracked(F) FILE x = fopen(\"a\"); fclose(x); }",
        ),
        (
            "leak.vlt",
            "type FILE;\ntracked(F) FILE fopen(string p) [new F];\nvoid f() { tracked(F) FILE x = fopen(\"a\"); }",
        ),
        ("tiny.vlt", "void f() { }"),
        ("parse_err.vlt", "void f( {"),
    ];
    let dir = tmp_dir("svc");
    let mut rng = Rng::new(0x5EED_CAFE);
    for generation in 0..6u32 {
        let svc = CheckService::new(ServiceConfig {
            jobs: 2,
            cache_dir: Some(dir.clone()),
            cache_max_bytes: Some(64 * 1024),
            ..Default::default()
        });
        for (name, source) in sources {
            let report = svc.check_unit(UnitIn {
                name: name.to_string(),
                source: source.to_string(),
            });
            let want = vault_core::check_summary(name, source);
            assert_eq!(
                *report.summary, want,
                "generation {generation}: `{name}` diverged from the from-source check"
            );
        }
        assert!(svc.maintain_store(), "the service should have a store");
        drop(svc);
        mutilate(&dir, &mut rng);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The seeded crash/compaction model: ≥200 schedules (override with
/// `STORE_MODEL_SCHEDULES`) of appends, supersedes, wipes, maintenance,
/// injected persistence faults, direct mutilation, and reopens.
#[cfg(feature = "chaos")]
mod chaos_schedules {
    use super::*;
    use vault_server::chaos::{self, ChaosConfig};

    const SEGMENT_MAX: u64 = 1024;
    const BOUND: u64 = 8 * 1024;

    fn arm(seed: u64, prob: f64) {
        chaos::arm(ChaosConfig {
            seed,
            panic_prob: 0.0,
            delay_prob: 0.0,
            short_write_chunk: None,
            persist_fault_prob: prob,
            ..Default::default()
        });
    }

    fn reopen(dir: &Path, cfg: StoreConfig, context: &str) -> VerdictStore {
        let (store, loaded) =
            VerdictStore::open(dir, cfg).unwrap_or_else(|e| panic!("{context}: open failed: {e}"));
        assert_faithful(&loaded, context);
        store
    }

    fn run_schedule(seed: u64) {
        let dir = tmp_dir(&format!("chaos-{seed}"));
        let mut rng = Rng::new(seed);
        let cfg = StoreConfig {
            segment_max_bytes: SEGMENT_MAX,
            max_bytes: Some(BOUND),
        };
        // Low-probability schedules exercise long fault-free stretches
        // with occasional crashes; high-probability ones crash nearly
        // every operation.
        let fault_prob = [0.05, 0.15, 0.35][(seed % 3) as usize];
        arm(seed ^ 0xFA_u64, fault_prob);
        let mut store = reopen(&dir, cfg, &format!("seed {seed}: first boot"));

        let ops = 30 + rng.below(30);
        for op in 0..ops {
            let context = format!("seed {seed}, op {op}");
            match rng.below(100) {
                // Append a small batch; fingerprints collide on purpose
                // so supersedes accumulate dead bytes. Failures are the
                // point — the store may refuse, never lie.
                0..=54 => {
                    let records: Vec<Record> = (0..1 + rng.below(4))
                        .map(|_| {
                            let fp = rng.below(24);
                            if rng.below(4) == 0 {
                                fn_record(fp)
                            } else {
                                unit_record(fp)
                            }
                        })
                        .collect();
                    let _ = store.append(&records);
                }
                // Maintenance under fire: compaction crash points
                // (`compact.write`, `compact.sync`, `compact.rename`,
                // `index.write`) all fire in here.
                55..=69 => {
                    let _ = store.maintain();
                }
                // clear-cache mid-schedule.
                70..=74 => {
                    let _ = store.wipe();
                }
                // Crash, damage the disk, recover.
                75..=84 => {
                    chaos::disarm();
                    drop(store);
                    mutilate(&dir, &mut rng);
                    store = reopen(&dir, cfg, &format!("{context}: after mutilation"));
                    arm(rng.next(), fault_prob);
                }
                // Plain crash + recover, faults still armed through
                // boot (boot's index rewrite is best-effort and must
                // shrug an injected failure off).
                _ => {
                    drop(store);
                    store = reopen(&dir, cfg, &format!("{context}: after crash"));
                }
            }
        }

        // Quiesce: no faults, one full maintenance pass, and the
        // survivors must fit the bound and still be faithful.
        chaos::disarm();
        drop(store);
        let store = reopen(&dir, cfg, &format!("seed {seed}: quiesce boot"));
        store
            .maintain()
            .unwrap_or_else(|e| panic!("seed {seed}: fault-free maintenance failed: {e}"));
        let health = store.health();
        assert!(
            health.disk_bytes <= BOUND,
            "seed {seed}: {} bytes on disk after maintenance, bound is {BOUND}",
            health.disk_bytes
        );
        drop(store);
        let _ = reopen(&dir, cfg, &format!("seed {seed}: final boot"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_crash_schedules_recover_faithfully() {
        let _guard = exclusive();
        let schedules: u64 = std::env::var("STORE_MODEL_SCHEDULES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200);
        for seed in 0..schedules {
            run_schedule(seed);
        }
        chaos::disarm();
    }
}
