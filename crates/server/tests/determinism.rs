//! Determinism of the parallel, incremental service: checking the full
//! built-in corpus through the worker pool (jobs = 1 and 4) must yield
//! byte-identical verdicts and diagnostic sets to sequential
//! `check_source`, and cache-hit re-checks must return identical
//! diagnostics. (ISSUE 1 acceptance criterion.)

use vault_core::{check_summary, CheckSummary};
use vault_server::{CheckService, Json, ServiceConfig, UnitIn};

fn corpus_units() -> Vec<UnitIn> {
    vault_corpus::all_programs()
        .into_iter()
        .map(|p| UnitIn {
            name: p.id.to_string(),
            source: p.source,
        })
        .collect()
}

fn sequential_baseline(units: &[UnitIn]) -> Vec<CheckSummary> {
    units
        .iter()
        .map(|u| check_summary(&u.name, &u.source))
        .collect()
}

#[test]
fn pool_matches_sequential_at_one_and_four_jobs() {
    let units = corpus_units();
    assert!(units.len() > 20, "corpus unexpectedly small");
    let baseline = sequential_baseline(&units);
    for jobs in [1usize, 4] {
        let svc = CheckService::new(ServiceConfig {
            jobs,
            cache_capacity: units.len() * 2,
            ..Default::default()
        });
        let (reports, _) = svc.check_units(units.clone());
        assert_eq!(reports.len(), baseline.len());
        for (report, expect) in reports.iter().zip(&baseline) {
            // Full structural equality: verdict, every diagnostic field,
            // stats — not just the verdict.
            assert_eq!(
                *report.summary, *expect,
                "jobs={jobs} unit={} diverged from sequential check_source",
                expect.name
            );
            assert!(!report.cached);
        }
        // Byte-identical rendered diagnostics, the strongest form.
        let rendered_pool: Vec<String> = reports
            .iter()
            .map(|r| r.summary.render_diagnostics())
            .collect();
        let rendered_seq: Vec<String> = baseline.iter().map(|s| s.render_diagnostics()).collect();
        assert_eq!(rendered_pool, rendered_seq, "jobs={jobs}");
    }
}

#[test]
fn cache_hits_return_identical_diagnostics() {
    let units = corpus_units();
    let svc = CheckService::new(ServiceConfig {
        jobs: 4,
        cache_capacity: units.len() * 2,
        ..Default::default()
    });
    let (cold, _) = svc.check_units(units.clone());
    let (warm, _) = svc.check_units(units.clone());
    assert_eq!(cold.len(), warm.len());
    for (c, w) in cold.iter().zip(&warm) {
        assert!(!c.cached, "{}", c.summary.name);
        assert!(w.cached, "{}", w.summary.name);
        assert_eq!(
            *c.summary, *w.summary,
            "{} diverged on re-check",
            c.summary.name
        );
    }
    let snap = svc.status();
    assert_eq!(snap.cache_misses, units.len() as u64);
    assert_eq!(snap.cache_hits, units.len() as u64);
}

#[test]
fn wire_responses_are_byte_identical_across_job_counts() {
    // Protocol-level determinism: the encoded JSON line for a check of
    // the whole corpus is identical at jobs=1 and jobs=4 (modulo the
    // timing fields, which we strip).
    let units = corpus_units();
    let mut lines = Vec::new();
    for jobs in [1usize, 4] {
        let svc = CheckService::new(ServiceConfig {
            jobs,
            cache_capacity: units.len() * 2,
            ..Default::default()
        });
        let (reports, _) = svc.check_units(units.clone());
        let encoded = vault_server::proto::encode_check(Some(1), &reports, 0);
        lines.push(strip_timings(encoded).to_line());
    }
    assert_eq!(lines[0], lines[1]);
}

/// Replace wall-time fields (nondeterministic by nature) with zero.
fn strip_timings(v: Json) -> Json {
    match v {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k == "wall_micros" || k == "check_micros" {
                        (k, Json::num(0))
                    } else {
                        (k, strip_timings(v))
                    }
                })
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(strip_timings).collect()),
        other => other,
    }
}
