//! Detection-rate and determinism guarantees for the socket-server
//! workload family (ISSUE 10).
//!
//! Three properties, each through the real `CheckService` project path:
//! the clean three-unit project produces zero diagnostics; every seeded
//! mutant — protocol (V3xx) and capability (V7xx) alike — is caught with
//! its recorded code *in the unit that was mutated*; and the full
//! diagnostic output (codes, messages, renderings, order) is
//! byte-identical at `--jobs 1` and `--jobs 4`.

use vault_core::Verdict;
use vault_server::{CheckService, ServiceConfig, UnitIn};

fn to_units(v: Vec<(&'static str, String)>) -> Vec<UnitIn> {
    v.into_iter()
        .map(|(name, source)| UnitIn {
            name: name.to_string(),
            source,
        })
        .collect()
}

/// Every observable per-unit output: verdict plus the full diagnostic
/// renderings in order. Two runs are "the same" iff these are equal.
#[derive(Debug, PartialEq)]
struct OutputSheet {
    per_unit: Vec<(String, Verdict, Vec<String>)>,
}

fn check_project(jobs: usize, units: Vec<UnitIn>) -> OutputSheet {
    let svc = CheckService::new(ServiceConfig {
        jobs,
        cache_capacity: units.len() * 2 + 8,
        ..Default::default()
    });
    let (reports, _) = svc.check_project(units);
    OutputSheet {
        per_unit: reports
            .iter()
            .map(|r| {
                (
                    r.summary.name.clone(),
                    r.summary.verdict,
                    r.summary
                        .diagnostics
                        .iter()
                        .map(|d| d.rendered.clone())
                        .collect(),
                )
            })
            .collect(),
    }
}

#[test]
fn clean_socket_project_has_zero_diagnostics() {
    let sheet = check_project(1, to_units(vault_corpus::sockets::project_units()));
    assert_eq!(sheet.per_unit.len(), 3);
    for (name, verdict, diags) in &sheet.per_unit {
        assert_eq!(*verdict, Verdict::Accepted, "{name}");
        assert!(diags.is_empty(), "{name} has diagnostics: {diags:?}");
    }
}

#[test]
fn every_socket_mutant_is_caught_in_its_unit() {
    let mutants = vault_corpus::sockets::project_mutants();
    assert!(mutants.len() >= 7, "mutant family shrank");
    for (id, units, code) in mutants {
        let unit_idx = vault_corpus::sockets::mutant_unit(id).unwrap();
        let expected_unit = units[unit_idx].0.to_string();
        let sheet = check_project(2, to_units(units));
        let (name, verdict, diags) = &sheet.per_unit[unit_idx];
        assert_eq!(*name, expected_unit, "{id}");
        assert_eq!(*verdict, Verdict::Rejected, "{id}: mutant not rejected");
        assert!(
            diags.iter().any(|d| d.contains(&code.to_string())),
            "{id}: {code} not reported in unit `{name}`: {diags:?}"
        );
        // The bug is localized: units the mutant did not touch stay
        // clean unless they depend on the mutated unit's interface.
        for (i, (other, v, _)) in sheet.per_unit.iter().enumerate() {
            if i < unit_idx {
                assert_eq!(
                    *v,
                    Verdict::Accepted,
                    "{id}: upstream unit `{other}` dirtied"
                );
            }
        }
    }
}

#[test]
fn unused_capability_warning_survives_the_project_path() {
    // The V704 mutant stays `Accepted` (warning severity) but the
    // warning itself must flow through the service unchanged.
    let units = vec![UnitIn {
        name: "flat".to_string(),
        source: vault_corpus::sockets::unused_cap_source(),
    }];
    let svc = CheckService::new(ServiceConfig::default());
    let (reports, _) = svc.check_units(units);
    let s = &reports[0].summary;
    assert_eq!(s.verdict, Verdict::Accepted);
    assert!(
        s.diagnostics
            .iter()
            .any(|d| d.code == "V704" && d.severity == "warning"),
        "V704 warning missing: {:?}",
        s.diagnostics
    );
}

#[test]
fn socket_diagnostics_are_byte_identical_across_job_counts() {
    // Clean project, every mutant project, and the warning-only source:
    // each must render identically at --jobs 1 and --jobs 4.
    let mut workloads: Vec<Vec<UnitIn>> = vec![to_units(vault_corpus::sockets::project_units())];
    for (_, units, _) in vault_corpus::sockets::project_mutants() {
        workloads.push(to_units(units));
    }
    for units in workloads {
        let one = check_project(1, units.clone());
        let four = check_project(4, units);
        assert_eq!(one, four);
    }
}

#[test]
fn synthetic_socket_projects_detect_seeded_units_through_the_service() {
    let p = vault_corpus::synth::generate_project(&vault_corpus::synth::ProjectConfig {
        units: 40,
        fns_per_unit: 3,
        stmts_per_fn: 10,
        seed: 17,
        bug_rate: 0.3,
    });
    assert!(!p.seeded.is_empty(), "seed 17 produced no buggy units");
    let units: Vec<UnitIn> = p
        .units
        .iter()
        .map(|(name, source)| UnitIn {
            name: name.clone(),
            source: source.clone(),
        })
        .collect();
    let one = check_project(1, units.clone());
    let four = check_project(4, units);
    assert_eq!(one, four, "job count changed synth project output");
    for (i, (name, verdict, diags)) in one.per_unit.iter().enumerate() {
        match p.seeded.iter().find(|(u, _)| *u == i) {
            None => assert_eq!(
                *verdict,
                Verdict::Accepted,
                "clean unit `{name}` rejected: {diags:?}"
            ),
            Some((_, bug)) => {
                assert_eq!(*verdict, Verdict::Rejected, "`{name}` seeded {bug:?}");
                let code = bug.expected_code().to_string();
                assert!(
                    diags.iter().any(|d| d.contains(&code)),
                    "`{name}`: {code} not reported: {diags:?}"
                );
            }
        }
    }
}
