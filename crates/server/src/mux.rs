//! The event-driven front end: one readiness loop, thousands of clients.
//!
//! The original socket server ([`crate::server::UnixServer`]) spawns a
//! detached thread per connection — fine for a handful of IDEs, fatal
//! for a build farm. [`MuxServer`] multiplexes instead: a single event
//! loop `poll(2)`s a Unix listener, an optional TCP listener
//! (`--listen addr:port`), and every live connection, frames request
//! lines incrementally, and dispatches them to a small, fixed
//! *executor* pool that runs the usual request handler (which in turn
//! fans check work across the service's worker pool). Completed
//! responses come back over a queue and a [waker][crate::poll::Waker],
//! get buffered per connection, and are flushed as sockets accept them.
//!
//! ```text
//!            poll(2) readiness loop (one thread)
//!   ┌────────────────────────────────────────────────────┐
//!   │ waker ── completions queue ◄──┐                    │
//!   │ unix listener ─┐              │                    │
//!   │ tcp  listener ─┼─ accept      │   executor pool    │
//!   │ conn 1 ────────┤              │  ┌──────────────┐  │
//!   │ conn 2 ────────┼─ read ─ frame ─►│ handle_request│──┘
//!   │ conn N ────────┘  lines (bounded)└──────┬───────┘
//!   │        ◄── write-buffer flush ◄─────────┘
//!   └────────────────────────────────────────────────────┘
//! ```
//!
//! Three properties the loop maintains:
//!
//! * **Per-connection order.** Each connection runs at most one request
//!   at a time; parsed-but-undispatched lines wait in that connection's
//!   bounded `pending` queue. Responses therefore come back in request
//!   order with no reorder buffer, exactly like the thread-per-
//!   connection server — concurrency changes speed, never answers.
//! * **Backpressure.** A connection stops being *read* (its `POLLIN`
//!   interest is dropped, bytes stay in the kernel buffer) once its
//!   pending queue or its un-drained write buffer hits the configured
//!   cap, and stops being *dispatched* while responses back up. A
//!   stalled reader wedges only itself; memory per connection stays
//!   bounded.
//! * **Fairness.** Ready connections are serviced in round-robin
//!   rotation and each holds at most one executor slot, so a firehose
//!   client cannot starve an IDE's single request.
//!
//! Shutdown uses the waker, not the old "poke via self-connect" hack: a
//! `shutdown` request marks the server stopping, the ack is flushed to
//! its requester, the loop exits, and in-flight work drains within
//! [`crate::server::SHUTDOWN_GRACE`].

use crate::json::Json;
use crate::poll::{self, PollFd, Waker, POLLIN, POLLOUT};
use crate::pool::ThreadPool;
use crate::proto;
use crate::server::{respond_to_line, SHUTDOWN_GRACE};
use crate::service::CheckService;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables for a [`MuxServer`].
#[derive(Clone, Copy, Debug)]
pub struct MuxConfig {
    /// Threads in the executor pool (each runs one in-flight request).
    /// `0` derives a default from the service's worker count.
    pub executors: usize,
    /// Most parsed-but-unanswered requests buffered per connection
    /// before the loop stops reading it (read-ahead cap).
    pub max_pending_per_conn: usize,
    /// Most un-drained response bytes buffered per connection before
    /// the loop stops reading *and* dispatching it. The stalled-reader
    /// bound: kernel buffer + this is all a dead client can hold.
    pub max_write_buffer: usize,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            executors: 0,
            max_pending_per_conn: 32,
            max_write_buffer: 256 * 1024,
        }
    }
}

/// One framed item out of a connection's byte stream.
enum Framed {
    /// A complete line within the bound (may still be blank/invalid).
    Request(String),
    /// An over-long line, already skipped; carries its running length.
    TooLong(usize),
}

/// Incremental, bounded JSON-lines framing: the nonblocking counterpart
/// of `read_bounded_line`, byte-for-byte the same semantics — a line
/// over `max` bytes is *skipped* (consumed to its newline, never
/// buffered) and surfaces as [`Framed::TooLong`], so one hostile
/// request can neither balloon memory nor desynchronize the stream.
struct LineAssembler {
    max: usize,
    buf: Vec<u8>,
    overflowed: usize,
}

impl LineAssembler {
    fn new(max: usize) -> Self {
        LineAssembler {
            max,
            buf: Vec::new(),
            overflowed: 0,
        }
    }

    /// Feed one chunk read off the socket; push every completed frame.
    fn feed(&mut self, chunk: &[u8], out: &mut VecDeque<Framed>) {
        let mut rest = chunk;
        while !rest.is_empty() {
            let newline = rest.iter().position(|&b| b == b'\n');
            let take = newline.map(|i| i + 1).unwrap_or(rest.len());
            if self.overflowed == 0 {
                if self.buf.len() + take <= self.max + 1 {
                    self.buf.extend_from_slice(&rest[..take]);
                } else {
                    self.overflowed = self.buf.len() + take;
                    self.buf.clear();
                }
            } else {
                self.overflowed += take;
            }
            if newline.is_some() {
                if self.overflowed > 0 {
                    out.push_back(Framed::TooLong(self.overflowed));
                    self.overflowed = 0;
                } else {
                    while self.buf.last().is_some_and(|&b| b == b'\n' || b == b'\r') {
                        self.buf.pop();
                    }
                    out.push_back(Framed::Request(
                        String::from_utf8_lossy(&self.buf).into_owned(),
                    ));
                    self.buf.clear();
                }
            }
            rest = &rest[take..];
        }
    }

    /// The partial tail at EOF, if any (an unterminated final line is
    /// still served, matching the blocking reader).
    fn finish(&mut self) -> Option<Framed> {
        if self.overflowed > 0 {
            let n = self.overflowed;
            self.overflowed = 0;
            Some(Framed::TooLong(n))
        } else if !self.buf.is_empty() {
            let line = String::from_utf8_lossy(&self.buf).into_owned();
            self.buf.clear();
            Some(Framed::Request(line))
        } else {
            None
        }
    }
}

/// A connection's transport, Unix or TCP; both end up as raw fds in the
/// same poll set.
enum ConnStream {
    /// A Unix-domain-socket client.
    Unix(UnixStream),
    /// A TCP client.
    Tcp(TcpStream),
}

impl ConnStream {
    fn fd(&self) -> RawFd {
        match self {
            ConnStream::Unix(s) => s.as_raw_fd(),
            ConnStream::Tcp(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.read(buf),
            ConnStream::Tcp(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.write(buf),
            ConnStream::Tcp(s) => s.write(buf),
        }
    }
}

/// Per-connection state in the loop.
struct Conn {
    stream: ConnStream,
    lines: LineAssembler,
    /// Framed requests waiting their turn (bounded read-ahead).
    pending: VecDeque<Framed>,
    /// Is a request from this connection on the executor pool?
    executing: bool,
    /// Buffered response bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    eof: bool,
    dead: bool,
    /// Shutdown was acked on this connection: flush, then close.
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: ConnStream, max_line: usize) -> Self {
        Conn {
            stream,
            lines: LineAssembler::new(max_line),
            pending: VecDeque::new(),
            executing: false,
            out: Vec::new(),
            out_pos: 0,
            eof: false,
            dead: false,
            close_after_flush: false,
        }
    }

    fn backlog(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Should the loop keep reading this connection? The backpressure
    /// gate: a full pending queue or an un-drained write buffer drops
    /// its `POLLIN` interest until the client catches up.
    fn wants_read(&self, cfg: &MuxConfig) -> bool {
        !self.eof
            && !self.dead
            && !self.close_after_flush
            && self.pending.len() < cfg.max_pending_per_conn
            && self.backlog() < cfg.max_write_buffer
    }

    fn wants_write(&self) -> bool {
        !self.dead && self.backlog() > 0
    }

    fn push_response(&mut self, line: &str) {
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
    }

    /// Read until the socket would block or backpressure says stop.
    fn fill(&mut self, cfg: &MuxConfig) {
        let mut chunk = [0u8; 16 * 1024];
        while self.wants_read(cfg) {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    if let Some(tail) = self.lines.finish() {
                        self.pending.push_back(tail);
                    }
                }
                Ok(n) => self.lines.feed(&chunk[..n], &mut self.pending),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    /// Write buffered responses until drained or the socket would block.
    fn flush(&mut self) {
        #[cfg(feature = "chaos")]
        if self.backlog() > 0 && crate::chaos::disconnect_fault() {
            // A mid-response hangup: deliver a torn prefix, then die.
            // The retrying client must recover on a fresh connection.
            let cut = (self.out_pos + 3).min(self.out.len());
            let _ = self.stream.write(&self.out[self.out_pos..cut]);
            self.dead = true;
            return;
        }
        while self.backlog() > 0 {
            #[cfg(feature = "chaos")]
            let chunk = match crate::chaos::short_write_chunk() {
                Some(cap) if cap > 0 && self.backlog() > cap => {
                    &self.out[self.out_pos..self.out_pos + cap]
                }
                _ => &self.out[self.out_pos..],
            };
            #[cfg(not(feature = "chaos"))]
            let chunk = &self.out[self.out_pos..];
            match self.stream.write(chunk) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos == self.out.len() {
            self.out.clear();
            self.out_pos = 0;
        } else if self.out_pos > 64 * 1024 {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
    }

    /// Everything answered and the peer gone: safe to drop.
    fn finished(&self) -> bool {
        self.dead
            || (self.close_after_flush && !self.executing && self.backlog() == 0)
            || (self.eof && self.pending.is_empty() && !self.executing && self.backlog() == 0)
    }
}

/// A bound listener plus its accept-failure bookkeeping.
struct Listener {
    kind: ListenerKind,
    consecutive_errors: u32,
    backoff_until: Option<Instant>,
}

enum ListenerKind {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn fd(&self) -> RawFd {
        match &self.kind {
            ListenerKind::Unix(l) => l.as_raw_fd(),
            ListenerKind::Tcp(l) => l.as_raw_fd(),
        }
    }

    /// Accept one connection, nonblocking. The accepted stream is set
    /// nonblocking too (TCP additionally `nodelay`: responses are whole
    /// small lines, and a delayed ack stalls an IDE for nothing).
    fn accept(&self) -> io::Result<ConnStream> {
        let stream = match &self.kind {
            ListenerKind::Unix(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                ConnStream::Unix(s)
            }
            ListenerKind::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(true)?;
                let _ = s.set_nodelay(true);
                ConnStream::Tcp(s)
            }
        };
        #[cfg(feature = "chaos")]
        if crate::chaos::accept_fault() {
            // Simulate the kernel refusing the accept: the would-be
            // client sees an immediate hangup and must retry.
            drop(stream);
            return Err(io::Error::other("chaos: injected accept failure"));
        }
        Ok(stream)
    }

    /// Record one accept failure; after a few in a row, back off
    /// exponentially (1ms doubling to 64ms) instead of spinning on a
    /// hot error like EMFILE.
    fn note_error(&mut self) {
        self.consecutive_errors += 1;
        if self.consecutive_errors >= 3 {
            let shift = (self.consecutive_errors - 3).min(6);
            self.backoff_until = Some(Instant::now() + Duration::from_millis(1 << shift));
        }
    }
}

/// A response ready to be written back to its connection.
struct Completion {
    conn: u64,
    line: String,
    shutdown: bool,
}

/// What a poll-set slot refers to.
enum Tag {
    Waker,
    Listener(usize),
    Conn(u64),
}

/// The event-driven multiplexing server. Bind at least one transport,
/// then [`MuxServer::run`] the loop until a client sends `shutdown`.
pub struct MuxServer {
    svc: Arc<CheckService>,
    config: MuxConfig,
    listeners: Vec<Listener>,
    unix_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl MuxServer {
    /// A server over `svc` with `config` tunables; bind transports next.
    pub fn new(svc: Arc<CheckService>, config: MuxConfig) -> Self {
        MuxServer {
            svc,
            config,
            listeners: Vec::new(),
            unix_path: None,
            tcp_addr: None,
        }
    }

    /// Bind a Unix socket at `path`, replacing any stale socket file.
    pub fn bind_unix(&mut self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            std::fs::remove_file(&path)?;
        }
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        self.listeners.push(Listener {
            kind: ListenerKind::Unix(listener),
            consecutive_errors: 0,
            backoff_until: None,
        });
        self.unix_path = Some(path);
        Ok(())
    }

    /// Bind a TCP listener at `addr` (e.g. `127.0.0.1:7878`; port `0`
    /// picks a free port). Returns the resolved local address.
    pub fn bind_tcp(&mut self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        self.listeners.push(Listener {
            kind: ListenerKind::Tcp(listener),
            consecutive_errors: 0,
            backoff_until: None,
        });
        self.tcp_addr = Some(local);
        Ok(local)
    }

    /// The bound Unix socket path, if one was bound.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// The bound TCP address, if one was bound.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Run the readiness loop until a client sends `shutdown` (ack
    /// flushed first), then drain in-flight work within
    /// [`SHUTDOWN_GRACE`] and unlink the Unix socket.
    pub fn run(self) -> io::Result<()> {
        if self.listeners.is_empty() {
            return Err(io::Error::other("mux server has no bound listeners"));
        }
        let svc = self.svc;
        let config = self.config;
        let executors = if config.executors == 0 {
            (svc.workers() * 4).clamp(4, 64)
        } else {
            config.executors
        };
        // The executor pool gets private metrics: its queue holds whole
        // requests, and mixing those into the service's check-job
        // queue_depth would corrupt that counter's meaning.
        let exec_metrics = Arc::new(crate::metrics::Metrics::default());
        let executors = ThreadPool::new(executors, exec_metrics);
        let waker = Arc::new(Waker::new()?);
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let mut listeners = self.listeners;
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_conn: u64 = 1;
        let mut rotation: usize = 0;
        let mut stopping = false;
        let mut shutdown_conn: Option<u64> = None;
        let max_line = svc.limits().max_request_bytes;

        loop {
            // Build this round's poll set: the waker always; listeners
            // unless stopping or backing off; connections per their
            // read/write appetite.
            let mut fds = vec![PollFd::new(waker.fd(), POLLIN)];
            let mut tags = vec![Tag::Waker];
            let mut timeout = -1i32;
            if !stopping {
                let now = Instant::now();
                for (li, l) in listeners.iter_mut().enumerate() {
                    if let Some(until) = l.backoff_until {
                        if now < until {
                            let rem = (until - now).as_millis().max(1) as i32;
                            timeout = if timeout < 0 { rem } else { timeout.min(rem) };
                            continue; // sit out this round
                        }
                        l.backoff_until = None;
                    }
                    fds.push(PollFd::new(l.fd(), POLLIN));
                    tags.push(Tag::Listener(li));
                }
            }
            for (&id, conn) in conns.iter() {
                let mut events = 0i16;
                if !stopping && conn.wants_read(&config) {
                    events |= POLLIN;
                }
                if conn.wants_write() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd::new(conn.stream.fd(), events));
                    tags.push(Tag::Conn(id));
                }
            }
            poll::wait(&mut fds, timeout)?;
            waker.drain();

            // Deliver completed responses into their write buffers.
            {
                let mut done = match completions.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                for c in done.drain(..) {
                    let Some(conn) = conns.get_mut(&c.conn) else {
                        continue; // connection died while its request ran
                    };
                    conn.executing = false;
                    conn.push_response(&c.line);
                    if c.shutdown {
                        conn.close_after_flush = true;
                        stopping = true;
                        shutdown_conn = Some(c.conn);
                    }
                }
            }

            // Accepts and per-connection IO, as readiness reported.
            for (fd, tag) in fds.iter().zip(&tags) {
                match tag {
                    Tag::Waker => {}
                    Tag::Listener(li) => {
                        if !fd.ready(POLLIN) || stopping {
                            continue;
                        }
                        loop {
                            match listeners[*li].accept() {
                                Ok(stream) => {
                                    listeners[*li].consecutive_errors = 0;
                                    conns.insert(next_conn, Conn::new(stream, max_line));
                                    next_conn += 1;
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                Err(_) => {
                                    svc.metrics().accept_error();
                                    listeners[*li].note_error();
                                    break;
                                }
                            }
                        }
                    }
                    Tag::Conn(id) => {
                        let Some(conn) = conns.get_mut(id) else {
                            continue;
                        };
                        if fd.ready(POLLOUT) {
                            conn.flush();
                        }
                        if fd.ready(POLLIN) && !stopping {
                            conn.fill(&config);
                        }
                    }
                }
            }

            // Dispatch: rotate over connections so no client gets
            // systematic priority, each holding at most one executor
            // slot and none while its responses are backed up.
            let mut ids: Vec<u64> = conns.keys().copied().collect();
            ids.sort_unstable();
            if !ids.is_empty() {
                let offset = rotation % ids.len();
                ids.rotate_left(offset);
                rotation = rotation.wrapping_add(1);
            }
            for id in ids {
                let conn = conns.get_mut(&id).expect("listed above");
                // Alternate dispatch and flush to a fixpoint: a flush
                // can drop the backlog below the dispatch gate, so a
                // single pass could end the round with queued requests,
                // no executor slot taken, and no event to wake on —
                // a self-deadlock. The opportunistic flush also saves a
                // poll round of latency on every fresh response.
                loop {
                    let before = (conn.pending.len(), conn.backlog());
                    if !stopping {
                        dispatch(id, conn, &config, &svc, &executors, &completions, &waker);
                    }
                    if conn.wants_write() {
                        conn.flush();
                    }
                    if (conn.pending.len(), conn.backlog()) == before {
                        break;
                    }
                }
            }

            conns.retain(|_, c| !c.finished());

            if stopping {
                let ack_delivered = shutdown_conn
                    .map(|id| !conns.contains_key(&id))
                    .unwrap_or(true);
                if ack_delivered {
                    break;
                }
            }
        }

        // Drain order matters: check jobs first (executor jobs may be
        // blocked on their results), then the executors themselves.
        // Both are bounded, so a wedged unit cannot hold the exit.
        svc.drain(SHUTDOWN_GRACE);
        executors.shutdown(SHUTDOWN_GRACE);
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Pop this connection's next requests: over-long lines answer inline
/// (order is safe — nothing pops while a request executes), blank lines
/// vanish, and the first real request takes the connection's executor
/// slot.
fn dispatch(
    id: u64,
    conn: &mut Conn,
    config: &MuxConfig,
    svc: &Arc<CheckService>,
    executors: &ThreadPool,
    completions: &Arc<Mutex<Vec<Completion>>>,
    waker: &Arc<Waker>,
) {
    while !conn.executing
        && !conn.dead
        && !conn.close_after_flush
        && conn.backlog() < config.max_write_buffer
    {
        let Some(framed) = conn.pending.pop_front() else {
            break;
        };
        match framed {
            Framed::TooLong(n) => {
                svc.metrics().request_failed();
                let max = svc.limits().max_request_bytes;
                let response = proto::encode_error(
                    None,
                    &format!(
                        "request line of {n}+ bytes exceeds the {max}-byte limit; line skipped"
                    ),
                );
                conn.push_response(&response.to_line());
            }
            Framed::Request(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let job_svc = Arc::clone(svc);
                let job_completions = Arc::clone(completions);
                let job_waker = Arc::clone(waker);
                let submitted = executors.submit(move || {
                    let (response, shutdown) = respond_to_line(&job_svc, &line);
                    #[cfg(feature = "chaos")]
                    crate::chaos::stall();
                    match job_completions.lock() {
                        Ok(mut g) => g.push(Completion {
                            conn: id,
                            line: response.to_line(),
                            shutdown,
                        }),
                        Err(poisoned) => poisoned.into_inner().push(Completion {
                            conn: id,
                            line: response.to_line(),
                            shutdown,
                        }),
                    }
                    job_waker.wake();
                });
                match submitted {
                    Ok(()) => conn.executing = true,
                    Err(e) => {
                        // Executors draining (only during teardown):
                        // answer inline rather than drop the request.
                        svc.metrics().request_failed();
                        let response: Json =
                            proto::encode_error(None, &format!("server shutting down: {e}"));
                        conn.push_response(&response.to_line());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn drainq(a: &mut LineAssembler, bytes: &[u8]) -> Vec<String> {
        let mut out = VecDeque::new();
        a.feed(bytes, &mut out);
        out.iter()
            .map(|f| match f {
                Framed::Request(s) => format!("ok:{s}"),
                Framed::TooLong(n) => format!("long:{n}"),
            })
            .collect()
    }

    #[test]
    fn assembler_frames_split_lines_and_trims_crlf() {
        let mut a = LineAssembler::new(64);
        assert!(drainq(&mut a, b"{\"op\":").is_empty());
        assert_eq!(
            drainq(&mut a, b"\"status\"}\r\nnext"),
            vec!["ok:{\"op\":\"status\"}"]
        );
        assert_eq!(drainq(&mut a, b"\n"), vec!["ok:next"]);
        assert!(a.finish().is_none());
    }

    #[test]
    fn assembler_bound_matches_the_blocking_reader() {
        // Content of exactly `max` bytes is fine; one more is skipped.
        let mut a = LineAssembler::new(8);
        assert_eq!(drainq(&mut a, b"12345678\n"), vec!["ok:12345678"]);
        assert_eq!(drainq(&mut a, b"123456789\n"), vec!["long:10"]);
        // The over-long line is *skipped*: framing stays intact.
        assert_eq!(
            drainq(&mut a, b"xxxxxxxxxxxxxxxxxx\nok\n"),
            vec!["long:19", "ok:ok"]
        );
    }

    #[test]
    fn assembler_overflow_spanning_chunks_counts_all_bytes() {
        let mut a = LineAssembler::new(4);
        assert!(drainq(&mut a, b"aaaaaa").is_empty());
        assert!(drainq(&mut a, b"bbbbbb").is_empty());
        assert_eq!(drainq(&mut a, b"\n"), vec!["long:13"]);
        // And a partial overflow at EOF still reports.
        let mut b = LineAssembler::new(4);
        assert!(drainq(&mut b, b"cccccccc").is_empty());
        assert!(matches!(b.finish(), Some(Framed::TooLong(8))));
    }

    #[test]
    fn assembler_serves_an_unterminated_tail_at_eof() {
        let mut a = LineAssembler::new(64);
        assert!(drainq(&mut a, b"{\"op\":\"status\"}").is_empty());
        match a.finish() {
            Some(Framed::Request(s)) => assert_eq!(s, "{\"op\":\"status\"}"),
            other => panic!(
                "expected the tail line, got {:?}",
                other.map(|f| matches!(f, Framed::TooLong(_)))
            ),
        }
    }

    #[test]
    fn mux_round_trips_and_shuts_down_over_unix() {
        use std::io::{BufRead, BufReader};
        let svc = Arc::new(CheckService::new(ServiceConfig {
            jobs: 2,
            cache_capacity: 16,
            ..Default::default()
        }));
        let path = std::env::temp_dir().join(format!("vault-mux-unit-{}.sock", std::process::id()));
        let mut mux = MuxServer::new(svc, MuxConfig::default());
        mux.bind_unix(&path).unwrap();
        let server = std::thread::spawn(move || mux.run());
        let stream = UnixStream::connect(&path).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut w = &stream;
        w.write_all(b"{\"op\":\"status\",\"id\":1}\n{\"op\":\"shutdown\",\"id\":2}\n")
            .unwrap();
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let v = crate::json::parse(status.trim_end()).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(1));
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        let v = crate::json::parse(ack.trim_end()).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("shutdown"));
        server.join().unwrap().unwrap();
        assert!(!path.exists(), "socket must be unlinked after shutdown");
    }

    #[test]
    fn mux_requires_a_listener() {
        let svc = Arc::new(CheckService::new(ServiceConfig {
            jobs: 1,
            cache_capacity: 4,
            ..Default::default()
        }));
        let mux = MuxServer::new(svc, MuxConfig::default());
        assert!(mux.run().is_err());
    }
}
