//! A std-only worker thread pool.
//!
//! `std::thread` workers pull boxed jobs off one shared `mpsc` channel
//! (receiver behind a mutex — the standard single-consumer workaround).
//! The pool is deliberately generic over `FnOnce` jobs rather than
//! hard-wired to checking: the service submits check closures, the
//! throughput bench submits its own workload, and the CLI's batch mode
//! reuses it unchanged.
//!
//! Determinism note: jobs complete in whatever order the scheduler
//! picks, so anything order-sensitive must carry its index and let the
//! caller reassemble (see [`CheckPool::check_batch`]).

use crate::metrics::Metrics;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use vault_core::{check_summary, CheckSummary};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<Metrics>,
}

impl ThreadPool {
    /// Spawn `jobs` workers (min 1) reporting queue depth into `metrics`.
    pub fn new(jobs: usize, metrics: Arc<Metrics>) -> Self {
        let jobs = jobs.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..jobs)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let metrics = Arc::clone(&metrics);
                std::thread::Builder::new()
                    .name(format!("vaultd-worker-{i}"))
                    .spawn(move || worker_loop(rx, metrics))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
            metrics,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queue one job. Panics if the pool is shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.metrics.job_enqueued();
        self.tx
            .as_ref()
            .expect("pool is live")
            .send(Box::new(job))
            .expect("workers alive");
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>, metrics: Arc<Metrics>) {
    loop {
        // Hold the lock only while pulling the next job.
        let job = match rx.lock().expect("queue lock").recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: pool dropped
        };
        job();
        metrics.job_done();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One compilation unit submitted for checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitIn {
    /// Name diagnostics are rendered under (usually a path).
    pub name: String,
    /// Vault source text.
    pub source: String,
}

/// A checking-specialized facade over [`ThreadPool`].
pub struct CheckPool {
    pool: ThreadPool,
}

impl CheckPool {
    /// A pool of `jobs` checker workers.
    pub fn new(jobs: usize, metrics: Arc<Metrics>) -> Self {
        CheckPool {
            pool: ThreadPool::new(jobs, metrics),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Queue one raw job on the underlying pool.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.pool.submit(job)
    }

    /// Check every unit on the pool, returning summaries in **input
    /// order** regardless of completion order, with the per-unit checker
    /// wall time in microseconds.
    pub fn check_batch(&self, units: Vec<UnitIn>) -> Vec<(CheckSummary, u64)> {
        let n = units.len();
        let (tx, rx) = channel::<(usize, CheckSummary, u64)>();
        for (index, unit) in units.into_iter().enumerate() {
            let tx = tx.clone();
            self.pool.submit(move || {
                let start = std::time::Instant::now();
                let summary = check_summary(&unit.name, &unit.source);
                let micros = start.elapsed().as_micros() as u64;
                // Receiver hanging up just means the caller gave up.
                let _ = tx.send((index, summary, micros));
            });
        }
        drop(tx);
        let mut out: Vec<Option<(CheckSummary, u64)>> = (0..n).map(|_| None).collect();
        for (index, summary, micros) in rx {
            out[index] = Some((summary, micros));
        }
        out.into_iter()
            .map(|slot| slot.expect("every unit reports"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs() {
        let metrics = Arc::new(Metrics::default());
        let pool = ThreadPool::new(4, Arc::clone(&metrics));
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 100);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        drop(pool);
        assert_eq!(metrics.snapshot().queue_depth, 0);
        assert!(metrics.snapshot().queue_peak >= 1);
    }

    #[test]
    fn check_batch_preserves_input_order() {
        let metrics = Arc::new(Metrics::default());
        let pool = CheckPool::new(4, metrics);
        let units: Vec<UnitIn> = (0..16)
            .map(|i| UnitIn {
                name: format!("u{i}.vlt"),
                source: "void f() { }".to_string(),
            })
            .collect();
        let results = pool.check_batch(units);
        assert_eq!(results.len(), 16);
        for (i, (summary, _)) in results.iter().enumerate() {
            assert_eq!(summary.name, format!("u{i}.vlt"));
        }
    }

    #[test]
    fn zero_jobs_clamps_to_one_worker() {
        let pool = ThreadPool::new(0, Arc::new(Metrics::default()));
        assert_eq!(pool.workers(), 1);
    }
}
