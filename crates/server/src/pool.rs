//! A std-only worker thread pool, hardened against worker failure.
//!
//! `std::thread` workers pull boxed jobs off one shared `mpsc` channel
//! (receiver behind a mutex — the standard single-consumer workaround).
//! The pool is deliberately generic over `FnOnce` jobs rather than
//! hard-wired to checking: the service submits check closures, the
//! throughput bench submits its own workload, and the CLI's batch mode
//! reuses it unchanged.
//!
//! Fault containment (ISSUE 2): a panicking job must never cost a
//! worker. Each job runs under `catch_unwind`, so the worker survives
//! and keeps pulling; should the loop itself ever unwind (e.g. a panic
//! in shared infrastructure), a drop guard respawns a replacement
//! thread, so capacity self-heals instead of silently decaying. The
//! queue mutex recovers from poisoning — a receiver guard holds no
//! invariant worth dying for. [`ThreadPool::submit`] returns a
//! `Result` instead of panicking when the pool is shutting down.
//!
//! Determinism note: jobs complete in whatever order the scheduler
//! picks, so anything order-sensitive must carry its index and let the
//! caller reassemble (see [`CheckPool::check_batch`]).

use crate::metrics::Metrics;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vault_core::{check_summary, CheckSummary};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job could not be queued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The pool is shutting down (its queue is closed); the job was
    /// dropped without running.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => f.write_str("pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Extract the human-readable payload of a caught panic.
pub fn panic_payload(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lock `m`, recovering the guard if a previous holder panicked.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A fixed-size pool of worker threads executing boxed jobs.
pub struct ThreadPool {
    /// `None` once shutdown has begun. Behind a mutex so `shutdown` can
    /// take it through `&self`; submitters clone the sender under a
    /// short lock.
    tx: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<Metrics>,
}

impl ThreadPool {
    /// Spawn `jobs` workers (min 1) reporting queue depth into `metrics`.
    pub fn new(jobs: usize, metrics: Arc<Metrics>) -> Self {
        let jobs = jobs.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..jobs)
            .map(|i| spawn_worker(i, Arc::clone(&rx), Arc::clone(&metrics)))
            .collect();
        ThreadPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            metrics,
        }
    }

    /// Number of worker threads the pool was built with.
    pub fn workers(&self) -> usize {
        lock_unpoisoned(&self.workers).len()
    }

    /// Queue one job; `Err(ShuttingDown)` if the pool is draining.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        let tx = match lock_unpoisoned(&self.tx).as_ref() {
            Some(tx) => tx.clone(),
            None => return Err(SubmitError::ShuttingDown),
        };
        self.metrics.job_enqueued();
        match tx.send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(_) => {
                // Every worker is gone (all receivers dropped) — treat it
                // as shutdown rather than dying with the workers.
                self.metrics.job_done();
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Stop accepting jobs and wait up to `grace` for queued work to
    /// drain. Returns `true` if the queue drained; `false` means jobs
    /// were still in flight when the grace period expired — their
    /// threads are detached rather than joined, so shutdown stays
    /// bounded even against a wedged job.
    pub fn shutdown(&self, grace: Duration) -> bool {
        drop(lock_unpoisoned(&self.tx).take()); // close the channel
        let deadline = Instant::now() + grace;
        while self.metrics.snapshot().queue_depth > 0 {
            if Instant::now() >= deadline {
                // Leave the handles: joining could block forever on a
                // wedged job. Workers exit on their own once it finishes.
                lock_unpoisoned(&self.workers).clear();
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        for w in lock_unpoisoned(&self.workers).drain(..) {
            let _ = w.join();
        }
        true
    }
}

/// Spawn one worker thread whose loop self-heals: if the loop unwinds,
/// a drop guard spawns a replacement (detached — the original handle
/// already belongs to the pool) so pool capacity is not silently lost.
fn spawn_worker(
    index: usize,
    rx: Arc<Mutex<Receiver<Job>>>,
    metrics: Arc<Metrics>,
) -> JoinHandle<()> {
    struct Respawn {
        index: usize,
        rx: Arc<Mutex<Receiver<Job>>>,
        metrics: Arc<Metrics>,
    }
    impl Drop for Respawn {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.metrics.worker_respawned();
                let _ = spawn_worker(self.index, Arc::clone(&self.rx), Arc::clone(&self.metrics));
            }
        }
    }
    let name = format!("vaultd-worker-{index}");
    std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let guard = Respawn {
                index,
                rx: Arc::clone(&rx),
                metrics: Arc::clone(&metrics),
            };
            worker_loop(rx, metrics);
            std::mem::forget(guard); // clean exit: channel closed
        })
        .expect("spawn worker thread")
}

fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>, metrics: Arc<Metrics>) {
    loop {
        // Hold the lock only while pulling the next job; recover from
        // poisoning — a panic mid-`recv` leaves no broken invariant.
        let job = match lock_unpoisoned(&rx).recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: pool shutting down
        };
        // First line of containment: a panicking job costs its own
        // result, never the worker. (The service additionally wraps
        // check jobs to turn panics into `internal-error` verdicts.)
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            metrics.panic_caught();
        }
        metrics.job_done();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Unbounded drain: jobs already queued run to completion, same
        // as the original pool. Bounded shutdown is available via
        // `shutdown`.
        drop(lock_unpoisoned(&self.tx).take());
        for w in lock_unpoisoned(&self.workers).drain(..) {
            let _ = w.join();
        }
    }
}

/// One compilation unit submitted for checking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitIn {
    /// Name diagnostics are rendered under (usually a path).
    pub name: String,
    /// Vault source text.
    pub source: String,
}

/// A checking-specialized facade over [`ThreadPool`].
pub struct CheckPool {
    pool: ThreadPool,
}

impl CheckPool {
    /// A pool of `jobs` checker workers.
    pub fn new(jobs: usize, metrics: Arc<Metrics>) -> Self {
        CheckPool {
            pool: ThreadPool::new(jobs, metrics),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Queue one raw job on the underlying pool.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), SubmitError> {
        self.pool.submit(job)
    }

    /// Stop accepting jobs; wait up to `grace` for in-flight work.
    pub fn shutdown(&self, grace: Duration) -> bool {
        self.pool.shutdown(grace)
    }

    /// Check every unit on the pool, returning summaries in **input
    /// order** regardless of completion order, with the per-unit checker
    /// wall time in microseconds. A unit whose check panics — or that
    /// could not run because the pool is shutting down — reports an
    /// `internal-error` summary instead of wedging the batch.
    pub fn check_batch(&self, units: Vec<UnitIn>) -> Vec<(CheckSummary, u64)> {
        let n = units.len();
        let (tx, rx) = channel::<(usize, CheckSummary, u64)>();
        for (index, unit) in units.into_iter().enumerate() {
            let job_tx = tx.clone();
            let name = unit.name.clone();
            let submitted = self.pool.submit(move || {
                let start = std::time::Instant::now();
                let summary = match catch_unwind(AssertUnwindSafe(|| {
                    check_summary(&unit.name, &unit.source)
                })) {
                    Ok(summary) => summary,
                    Err(e) => CheckSummary::internal_error(&unit.name, &panic_payload(&*e)),
                };
                let micros = start.elapsed().as_micros() as u64;
                // Receiver hanging up just means the caller gave up.
                let _ = job_tx.send((index, summary, micros));
            });
            if let Err(e) = submitted {
                let _ = tx.send((
                    index,
                    CheckSummary::internal_error(&name, &e.to_string()),
                    0,
                ));
            }
        }
        drop(tx);
        let mut out: Vec<Option<(CheckSummary, u64)>> = (0..n).map(|_| None).collect();
        for (index, summary, micros) in rx {
            out[index] = Some((summary, micros));
        }
        out.into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    // A worker died so hard it never reported (should be
                    // unreachable with catch_unwind): answer rather than
                    // panic in the caller.
                    (
                        CheckSummary::internal_error(
                            &format!("unit-{i}"),
                            "worker never reported a result",
                        ),
                        0,
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs() {
        let metrics = Arc::new(Metrics::default());
        let pool = ThreadPool::new(4, Arc::clone(&metrics));
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            })
            .unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 100);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        drop(pool);
        assert_eq!(metrics.snapshot().queue_depth, 0);
        assert!(metrics.snapshot().queue_peak >= 1);
    }

    #[test]
    fn check_batch_preserves_input_order() {
        let metrics = Arc::new(Metrics::default());
        let pool = CheckPool::new(4, metrics);
        let units: Vec<UnitIn> = (0..16)
            .map(|i| UnitIn {
                name: format!("u{i}.vlt"),
                source: "void f() { }".to_string(),
            })
            .collect();
        let results = pool.check_batch(units);
        assert_eq!(results.len(), 16);
        for (i, (summary, _)) in results.iter().enumerate() {
            assert_eq!(summary.name, format!("u{i}.vlt"));
        }
    }

    #[test]
    fn zero_jobs_clamps_to_one_worker() {
        let pool = ThreadPool::new(0, Arc::new(Metrics::default()));
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let metrics = Arc::new(Metrics::default());
        let pool = ThreadPool::new(1, Arc::clone(&metrics));
        // One worker: if the panic killed it, the follow-up job would
        // never run and recv would hang (the test harness would time out
        // at the channel read below only after the pool drops the tx).
        pool.submit(|| panic!("boom")).unwrap();
        let (tx, rx) = channel();
        pool.submit(move || tx.send(42).unwrap()).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
        assert_eq!(metrics.snapshot().panics_caught, 1);
        drop(pool);
        assert_eq!(metrics.snapshot().queue_depth, 0);
    }

    #[test]
    fn submit_after_shutdown_returns_err_not_panic() {
        let pool = ThreadPool::new(2, Arc::new(Metrics::default()));
        assert!(pool.shutdown(Duration::from_secs(5)));
        assert_eq!(pool.submit(|| {}), Err(SubmitError::ShuttingDown));
    }

    #[test]
    fn shutdown_drains_in_flight_jobs() {
        let metrics = Arc::new(Metrics::default());
        let pool = ThreadPool::new(2, Arc::clone(&metrics));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(Duration::from_millis(5));
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        assert!(pool.shutdown(Duration::from_secs(10)), "drain timed out");
        assert_eq!(done.load(Ordering::SeqCst), 8);
        assert_eq!(metrics.snapshot().queue_depth, 0);
    }

    #[test]
    fn shutdown_grace_bounds_a_wedged_job() {
        let metrics = Arc::new(Metrics::default());
        let pool = ThreadPool::new(1, Arc::clone(&metrics));
        let (hold_tx, hold_rx) = channel::<()>();
        pool.submit(move || {
            // Wedge until the test releases us.
            let _ = hold_rx.recv();
        })
        .unwrap();
        let start = Instant::now();
        assert!(!pool.shutdown(Duration::from_millis(50)));
        assert!(start.elapsed() < Duration::from_secs(5));
        drop(hold_tx); // release the wedged worker so the process exits
    }

    #[test]
    fn check_batch_maps_panics_to_internal_error() {
        // A source that reaches the checker normally cannot panic it;
        // simulate via a raw job that panics plus healthy units, then
        // assert the healthy units are unaffected.
        let metrics = Arc::new(Metrics::default());
        let pool = CheckPool::new(2, Arc::clone(&metrics));
        pool.submit(|| panic!("chaos")).unwrap();
        let units: Vec<UnitIn> = (0..4)
            .map(|i| UnitIn {
                name: format!("u{i}.vlt"),
                source: "void f() { }".to_string(),
            })
            .collect();
        for (summary, _) in pool.check_batch(units) {
            assert_eq!(summary.verdict, vault_core::Verdict::Accepted);
        }
        // The panicking job may still be unwinding on its worker when
        // the batch (served by the other worker) completes; wait for
        // the counter rather than racing it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().panics_caught == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(metrics.snapshot().panics_caught, 1);
    }
}
