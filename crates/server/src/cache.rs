//! Content-hash memoization of check verdicts.
//!
//! Checking is a pure function of `(unit name, source text)`, so the
//! service can memoize [`CheckSummary`] values under a 64-bit FNV-1a
//! fingerprint of both. The cache is a classic LRU: a hash map into a
//! slab of entries threaded on an intrusive doubly-linked recency list,
//! giving O(1) lookup, insert, touch, and eviction with no non-std
//! dependencies.

use std::collections::HashMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Absorb a byte stream into a running FNV-1a state.
pub fn fnv1a_absorb(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// 64-bit FNV-1a over an arbitrary byte stream.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    fnv1a_absorb(FNV_OFFSET, bytes)
}

/// Fingerprint of one compilation unit.
///
/// The unit name participates because rendered diagnostics embed it
/// (`--> name:line:col`): two units with identical sources but different
/// names must not share a cache entry. An explicit `0x00` separator byte
/// between the fields keeps `("ab", "c")` and `("a", "bc")` distinct
/// (unit names cannot contain NUL, so the framing is unambiguous).
pub fn unit_fingerprint(name: &str, source: &str) -> u64 {
    let h = fnv1a_absorb(FNV_OFFSET, name.as_bytes());
    let h = fnv1a_absorb(h, &[0x00]);
    fnv1a_absorb(h, source.as_bytes())
}

const NONE: usize = usize::MAX;

struct Entry<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map from 64-bit fingerprints to
/// cached values (whole-unit summaries, per-function verdicts, or
/// elaboration environments — anything cheap to clone, typically an
/// `Arc`).
pub struct LruCache<V> {
    map: HashMap<u64, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<V: Clone> LruCache<V> {
    /// An empty cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unlink slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Link slot `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.slab[i].prev = NONE;
        self.slab[i].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NONE {
            self.tail = i;
        }
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: u64) -> Option<V> {
        let &i = self.map.get(&key)?;
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
        Some(self.slab[i].value.clone())
    }

    /// Insert (or refresh) `key`, evicting the least recently used
    /// entry if the cache is full.
    pub fn put(&mut self, key: u64, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return;
        }
        if self.map.len() == self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NONE);
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = Entry {
                    key,
                    value,
                    prev: NONE,
                    next: NONE,
                };
                slot
            }
            None => {
                self.slab.push(Entry {
                    key,
                    value,
                    prev: NONE,
                    next: NONE,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
    }

    /// Drop every entry (counters elsewhere are unaffected).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vault_core::{CheckSummary, Verdict};

    fn summary(tag: &str) -> Arc<CheckSummary> {
        Arc::new(CheckSummary {
            name: tag.to_string(),
            verdict: Verdict::Accepted,
            diagnostics: Vec::new(),
            stats: Default::default(),
        })
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_separates_name_and_source() {
        assert_ne!(unit_fingerprint("ab", "c"), unit_fingerprint("a", "bc"));
        assert_ne!(unit_fingerprint("x", "s"), unit_fingerprint("y", "s"));
        assert_eq!(unit_fingerprint("x", "s"), unit_fingerprint("x", "s"));
        // The separator is a real 0x00 round, not just field order:
        // hashing name ++ source with no separator must differ.
        assert_ne!(unit_fingerprint("ab", "c"), fnv1a_64(b"abc"));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put(1, summary("one"));
        c.put(2, summary("two"));
        assert!(c.get(1).is_some()); // 1 is now MRU
        c.put(3, summary("three")); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_existing_key() {
        let mut c = LruCache::new(2);
        c.put(1, summary("one"));
        c.put(2, summary("two"));
        c.put(1, summary("one'")); // refresh, 2 becomes LRU
        c.put(3, summary("three")); // evicts 2
        assert_eq!(c.get(1).unwrap().name, "one'");
        assert!(c.get(2).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_empties_and_slots_recycle() {
        let mut c = LruCache::new(3);
        for k in 0..10 {
            c.put(k, summary("s"));
        }
        assert_eq!(c.len(), 3);
        // Only the three most recent survive.
        assert!(c.get(7).is_some());
        assert!(c.get(8).is_some());
        assert!(c.get(9).is_some());
        assert!(c.get(6).is_none());
        c.clear();
        assert!(c.is_empty());
        c.put(42, summary("s"));
        assert!(c.get(42).is_some());
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruCache::new(1);
        c.put(1, summary("a"));
        c.put(2, summary("b"));
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
    }
}
