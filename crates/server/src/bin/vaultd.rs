//! `vaultd` — the Vault protocol-checking daemon.
//!
//! ```text
//! vaultd [--socket PATH] [--listen ADDR:PORT] [--jobs N] [--cache N]
//!        [--cache-dir PATH] [--cache-max-bytes N] [--executors N]
//!        [--max-request-bytes N] [--timeout-ms N] [--fuel N]
//! ```
//!
//! With `--socket` and/or `--listen`, serves the JSON-lines protocol on
//! a Unix domain socket and/or a TCP listener until a client sends
//! `{"op":"shutdown"}`. Serving is event-driven: one readiness loop
//! multiplexes every connection onto a bounded executor pool
//! (`--executors`, default derived from `--jobs`), with per-connection
//! backpressure so a stalled reader wedges only itself. Without either
//! flag, serves a single session over stdin/stdout (exiting at EOF) —
//! handy behind an inetd-style supervisor or for piping.
//!
//! `--cache-dir` names a directory for the persistent warm-start cache:
//! verdicts journaled there by a previous run are replayed at boot, so
//! a restarted daemon answers its first requests at warm-cache speed
//! (a corrupt or version-mismatched segment falls back to a cold start
//! for the affected frames and shows up as `cache_load_errors` /
//! `segments_quarantined` in `status`). `--cache-max-bytes` bounds that
//! directory's size: the store compacts superseded frames first and then
//! evicts whole oldest segments until it fits — evictions only cost
//! warmth, never answers.
//!
//! `--max-request-bytes` caps how large one request line may grow,
//! `--timeout-ms` gives every compilation unit a checking deadline, and
//! `--fuel` caps loop-invariant fixpoint iterations; exceeding a
//! per-unit bound yields a `resource-limit` verdict, exceeding a
//! per-request bound a structured error reply. Shutdown drains
//! in-flight work within a bounded grace period.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use vault_server::{CheckService, MuxConfig, MuxServer, ServiceConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: vaultd [--socket PATH] [--listen ADDR:PORT] [--jobs N] [--cache N]\n              \
         [--cache-dir PATH] [--cache-max-bytes N] [--executors N]\n              \
         [--max-request-bytes N] [--timeout-ms N] [--fuel N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut config = ServiceConfig::default();
    let mut mux_config = MuxConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(path) => socket = Some(path.clone()),
                None => return usage(),
            },
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => return usage(),
            },
            "--executors" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => mux_config.executors = n,
                _ => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.jobs = n,
                _ => return usage(),
            },
            "--cache" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.cache_capacity = n,
                _ => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => config.cache_dir = Some(dir.into()),
                None => return usage(),
            },
            "--cache-max-bytes" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.cache_max_bytes = Some(n),
                _ => return usage(),
            },
            "--max-request-bytes" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.limits.max_request_bytes = n,
                _ => return usage(),
            },
            "--timeout-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.limits.timeout = Some(Duration::from_millis(n)),
                _ => return usage(),
            },
            "--fuel" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.limits.fixpoint_iters = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let svc = Arc::new(CheckService::new(config));
    if socket.is_none() && listen.is_none() {
        return match vault_server::serve_stdio(&svc) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("vaultd: stdio error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut mux = MuxServer::new(Arc::clone(&svc), mux_config);
    if let Some(path) = &socket {
        if let Err(e) = mux.bind_unix(path) {
            eprintln!("vaultd: cannot bind `{path}`: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "vaultd: listening on {path} ({} worker(s), cache {})",
            svc.workers(),
            svc.cache_capacity()
        );
    }
    if let Some(addr) = &listen {
        match mux.bind_tcp(addr) {
            Ok(local) => eprintln!(
                "vaultd: listening on tcp {local} ({} worker(s), cache {})",
                svc.workers(),
                svc.cache_capacity()
            ),
            Err(e) => {
                eprintln!("vaultd: cannot listen on `{addr}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = mux.run() {
        eprintln!("vaultd: serve error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
