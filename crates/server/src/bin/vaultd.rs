//! `vaultd` — the Vault protocol-checking daemon.
//!
//! ```text
//! vaultd [--socket PATH] [--jobs N] [--cache N] [--cache-dir PATH]
//!        [--cache-max-bytes N] [--max-request-bytes N] [--timeout-ms N]
//!        [--fuel N]
//! ```
//!
//! With `--socket`, serves the JSON-lines protocol on a Unix domain
//! socket until a client sends `{"op":"shutdown"}`. Without it, serves
//! a single session over stdin/stdout (exiting at EOF) — handy behind
//! an inetd-style supervisor or for piping.
//!
//! `--cache-dir` names a directory for the persistent warm-start cache:
//! verdicts journaled there by a previous run are replayed at boot, so
//! a restarted daemon answers its first requests at warm-cache speed
//! (a corrupt or version-mismatched segment falls back to a cold start
//! for the affected frames and shows up as `cache_load_errors` /
//! `segments_quarantined` in `status`). `--cache-max-bytes` bounds that
//! directory's size: the store compacts superseded frames first and then
//! evicts whole oldest segments until it fits — evictions only cost
//! warmth, never answers.
//!
//! `--max-request-bytes` caps how large one request line may grow,
//! `--timeout-ms` gives every compilation unit a checking deadline, and
//! `--fuel` caps loop-invariant fixpoint iterations; exceeding a
//! per-unit bound yields a `resource-limit` verdict, exceeding a
//! per-request bound a structured error reply. Shutdown drains
//! in-flight work within a bounded grace period.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use vault_server::{CheckService, ServiceConfig, UnixServer};

fn usage() -> ExitCode {
    eprintln!(
        "usage: vaultd [--socket PATH] [--jobs N] [--cache N] [--cache-dir PATH]\n              \
         [--cache-max-bytes N] [--max-request-bytes N] [--timeout-ms N] [--fuel N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut socket: Option<String> = None;
    let mut config = ServiceConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(path) => socket = Some(path.clone()),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.jobs = n,
                _ => return usage(),
            },
            "--cache" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.cache_capacity = n,
                _ => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => config.cache_dir = Some(dir.into()),
                None => return usage(),
            },
            "--cache-max-bytes" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.cache_max_bytes = Some(n),
                _ => return usage(),
            },
            "--max-request-bytes" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.limits.max_request_bytes = n,
                _ => return usage(),
            },
            "--timeout-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => config.limits.timeout = Some(Duration::from_millis(n)),
                _ => return usage(),
            },
            "--fuel" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.limits.fixpoint_iters = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let svc = Arc::new(CheckService::new(config));
    match socket {
        Some(path) => {
            let server = match UnixServer::bind(Arc::clone(&svc), &path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("vaultd: cannot bind `{path}`: {e}");
                    return ExitCode::from(2);
                }
            };
            eprintln!(
                "vaultd: listening on {path} ({} worker(s), cache {})",
                svc.workers(),
                svc.cache_capacity()
            );
            if let Err(e) = server.run() {
                eprintln!("vaultd: serve error: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        None => match vault_server::serve_stdio(&svc) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("vaultd: stdio error: {e}");
                ExitCode::FAILURE
            }
        },
    }
}
