//! A minimal JSON value type, parser, and serializer.
//!
//! The wire protocol is JSON lines, but the build environment has no
//! crates.io access, so `serde` is out of reach; this module hand-rolls
//! the small subset the daemon needs. Objects preserve insertion order
//! (a `Vec` of pairs, not a map) so responses serialize byte-identically
//! for identical inputs — the determinism tests rely on that.
//!
//! Supported: the full JSON grammar except that numbers are held as
//! `f64` (every counter the protocol ships fits losslessly below 2^53).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order, duplicate keys keep the
    /// first occurrence on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number value from any unsigned counter.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize to the compact single-line form.
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document, requiring the whole input to be consumed
/// (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// A JSON syntax error with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next structural byte.
                    // Validating from here to end-of-input per character
                    // made large strings O(n^2); one validation per run
                    // keeps parsing linear. `"` and `\` are ASCII, so a
                    // run always ends on a character boundary.
                    let rest = &self.bytes[self.pos..];
                    let run = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let s =
                        std::str::from_utf8(&rest[..run]).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos += run;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "0", "-42", "3.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_line(), src, "{src}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            parse(r#" {"op":"check","units":[{"name":"a","source":"int x;"}],"id":7} "#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("check"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        let units = v.get("units").and_then(Json::as_arr).unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(units[0].get("name").and_then(Json::as_str), Some("a"));
    }

    #[test]
    fn escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ unicode: ünïcodé \u{1}";
        let line = Json::str(original).to_line();
        assert_eq!(parse(&line).unwrap().as_str(), Some(original));
        // \u escapes and surrogate pairs decode.
        assert_eq!(parse(r#""A😀""#).unwrap().as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "01a",
            "[1 2]",
            "{\"a\":1,}",
            r#""\ud800""#,
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.to_line(), r#"{"z":1,"a":2,"m":3}"#);
    }
}
